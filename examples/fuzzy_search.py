#!/usr/bin/env python3
"""Fuzzy search: hunting when the OSCTI text deviates from the ground truth.

The tc_fivedirections_3 benchmark case models the situation the paper's
fuzzy mode exists for: the report describes the browser-extension dropper
with artifact names the attacker has since re-purposed, so the exact search
retrieves nothing.  The fuzzy mode (Poirot-style inexact graph alignment,
extended to exhaustive search) still aligns the query graph with the
provenance graph and recovers the real entities.

Run with:  python examples/fuzzy_search.py
"""

from repro.benchmark import get_case
from repro.benchmark.case import CaseBuilder
from repro.hunting import ThreatRaptor


def main() -> None:
    case = get_case("tc_fivedirections_3")
    built = CaseBuilder().build(case, benign_sessions=40)
    raptor = ThreatRaptor()
    raptor.ingest_events(built.events)

    print("OSCTI report:")
    print("  " + case.description)
    print("\nGround-truth malicious events on the host:")
    for signature in sorted(built.attack_signatures):
        print(f"  {signature[0]} --{signature[1]}--> {signature[2]}")

    # Exact search first (the recommended default), falling back to fuzzy.
    report = raptor.hunt(case.description, fallback_to_fuzzy=True)

    print("\n=== Synthesized TBQL query ===")
    print(report.synthesized.text)

    print(f"\nExact search matched {len(report.result.matched_events)} "
          "event(s) (the report's IOCs deviate from the host artifacts).")

    fuzzy = report.fuzzy_result
    if fuzzy is None:
        print("Exact search succeeded; fuzzy mode was not needed.")
    else:
        print(f"\n=== Fuzzy search mode ===")
        print(f"loading {fuzzy.loading_seconds:.3f}s, preprocessing "
              f"{fuzzy.preprocessing_seconds:.3f}s, searching "
              f"{fuzzy.searching_seconds:.3f}s")
        print(f"{len(fuzzy.alignments)} acceptable alignment(s); "
              "best alignment:")
        best = fuzzy.best
        if best is None:
            print("  (none above the score threshold)")
        else:
            for entity_id, name in sorted(best.node_names.items()):
                print(f"  {entity_id} -> {name}")
            print(f"  alignment score: {best.score:.2f}")
            print("\nThe analyst can now revise the query with the aligned "
                  "entities and switch back to the exact mode to expand the "
                  "search (Section V of the paper).")

    raptor.store.close()


if __name__ == "__main__":
    main()
