#!/usr/bin/env python3
"""Proactive threat hunting with hand-written TBQL queries.

When no OSCTI report is available, ThreatRaptor is used as a proactive
hunting tool: the analyst writes TBQL directly (Section II).  This example
loads a mixed benign + malicious audit log and walks through a typical
iterative hunting session:

* a broad query over sensitive files,
* narrowing down with operation filters and temporal constraints,
* a variable-length event path pattern to find indirect exfiltration flows,
* comparing the TBQL text against the equivalent SQL the analyst would
  otherwise have to write.

Run with:  python examples/proactive_hunting.py
"""

from repro.benchmark import get_case
from repro.benchmark.case import CaseBuilder
from repro.hunting import ThreatRaptor
from repro.tbql import compile_giant_sql, measure_conciseness, parse_tbql, \
    resolve_query


def run_query(raptor: ThreatRaptor, title: str, query: str) -> None:
    print(f"\n=== {title} ===")
    print(query.strip())
    result = raptor.execute_tbql(query)
    print(f"--> {len(result.rows)} result row(s), "
          f"{len(result.matched_events)} matched event(s), "
          f"plan {result.plan}")
    for row in result.rows[:5]:
        print("   ", row)


def main() -> None:
    # The password-cracking case: Shellshock penetration, C2 download, and
    # shadow-file access, hidden in benign developer activity.
    case = get_case("password_crack")
    built = CaseBuilder().build(case, benign_sessions=80)
    raptor = ThreatRaptor()
    raptor.ingest_events(built.events)
    print(f"Hunting over {raptor.store.statistics()['relational_events']} "
          "stored events")

    # Step 1: who touched the shadow file?
    run_query(raptor, "Step 1: any access to /etc/shadow",
              'proc p read || write file f["%/etc/shadow%"] '
              'return distinct p, f')

    # Step 2: suspicious downloads followed by execution within 10 minutes.
    run_query(raptor, "Step 2: download-then-execute chains",
              'proc d receive ip i as dl\n'
              'proc b execute file x["%/tmp/%"] as ex\n'
              'with dl before[0-10 min] ex\n'
              'return distinct d, i, b, x')

    # Step 3: variable-length path — does anything flow from the CGI
    # endpoint to the C2 address, possibly through intermediate steps?
    run_query(raptor, "Step 3: flows from the CGI handler (path pattern)",
              'proc p["%default.cgi%"] ~>(1~4) ip i return distinct p, '
              'i.dstip')

    # Step 4: conciseness — what would Step 2 look like in SQL?
    tbql_text = ('proc d receive ip i as dl '
                 'proc b execute file x["%/tmp/%"] as ex '
                 'with dl before[0-10 min] ex '
                 'return distinct d, i, b, x')
    sql = compile_giant_sql(resolve_query(parse_tbql(tbql_text)))
    tbql_metrics = measure_conciseness(tbql_text)
    sql_metrics = measure_conciseness(sql.sql)
    print("\n=== Conciseness (RQ5 in miniature) ===")
    print(f"TBQL : {tbql_metrics.characters} chars / "
          f"{tbql_metrics.words} words")
    print(f"SQL  : {sql_metrics.characters} chars / {sql_metrics.words} "
          f"words  ({tbql_metrics.ratio_to(sql_metrics):.1f}x less concise)")

    raptor.store.close()


if __name__ == "__main__":
    main()
