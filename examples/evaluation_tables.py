#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables from the command line.

Runs the same experiment drivers the benchmark harness uses and prints the
rows of Tables V, VI, VII, and X (the fast experiments) for all 18 cases.
Useful for a quick look without going through pytest-benchmark.

Run with:  python examples/evaluation_tables.py [--noise N]
"""

import argparse

from repro.benchmark import (ALL_CASES, format_table, run_conciseness,
                             run_extraction_accuracy, run_extraction_timing,
                             run_hunting_accuracy)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--noise", type=int, default=10,
                        help="benign sessions per case for Table VI "
                             "(default: 10)")
    args = parser.parse_args()

    print("=" * 70)
    print("Table V — accuracy of threat behavior extraction (RQ1)")
    print("=" * 70)
    rows = run_extraction_accuracy(ALL_CASES)
    print(format_table(rows, ["approach", "entity_precision",
                              "entity_recall", "entity_f1",
                              "relation_precision", "relation_recall",
                              "relation_f1"]))

    print()
    print("=" * 70)
    print("Table VI — accuracy of threat hunting (RQ2)")
    print("=" * 70)
    rows = run_hunting_accuracy(ALL_CASES, benign_sessions=args.noise)
    print(format_table(rows, ["case", "tp", "fp", "fn", "precision",
                              "recall"]))

    print()
    print("=" * 70)
    print("Table VII — efficiency of threat behavior extraction (RQ3)")
    print("=" * 70)
    rows = run_extraction_timing(ALL_CASES)
    print(format_table(rows, ["case", "text_to_entities_relations",
                              "entities_relations_to_graph", "graph_to_tbql",
                              "stanford_openie", "openie5"],
                       floatfmt="{:.4f}"))

    print()
    print("=" * 70)
    print("Table X — conciseness of TBQL vs SQL vs Cypher (RQ5)")
    print("=" * 70)
    rows = run_conciseness(ALL_CASES)
    print(format_table(rows, ["case", "patterns", "tbql_chars", "tbql_words",
                              "sql_chars", "sql_words", "cypher_chars",
                              "cypher_words"], floatfmt="{:.0f}"))


if __name__ == "__main__":
    main()
