#!/usr/bin/env python3
"""Quickstart: OSCTI-driven threat hunting in a dozen lines.

Reproduces Figure 2 of the paper end to end:

1. collect system audit logs (here: a synthetic replay of the data-leakage
   attack mixed with benign background activity),
2. ingest them into the dual storage backends (with data reduction),
3. feed the OSCTI report describing the attack to ThreatRaptor,
4. inspect the extracted threat behavior graph, the synthesized TBQL query,
   and the matched malicious system events.

Run with:  python examples/quickstart.py
"""

from repro.benchmark import get_case
from repro.benchmark.case import CaseBuilder
from repro.hunting import ThreatRaptor


def main() -> None:
    # --- 1. obtain audit logs ------------------------------------------------
    # The benchmark ships a scripted version of the paper's data-leakage
    # attack; in a real deployment these events come from the kernel
    # auditing agent (see repro.audit.AuditLogParser for the log format).
    case = get_case("data_leak")
    built = CaseBuilder().build(case, benign_sessions=60)
    print(f"Collected {len(built.events)} audit events "
          f"({built.malicious_event_count} malicious, "
          f"{built.benign_event_count} benign)")

    # --- 2. ingest them ------------------------------------------------------
    raptor = ThreatRaptor()
    stored = raptor.ingest_events(built.events)
    print(f"Stored {stored} events after data reduction "
          f"({raptor.store.statistics()['reduction_ratio']:.2f}x reduction)")

    # --- 3. hunt using the OSCTI report --------------------------------------
    report = raptor.hunt(case.description)

    # --- 4. inspect the results ----------------------------------------------
    print("\n=== Threat behavior graph ===")
    print(report.extraction.graph.summary())

    print("\n=== Synthesized TBQL query ===")
    print(report.synthesized.text)

    print("\n=== Matched malicious system events ===")
    for event in sorted(report.result.matched_events,
                        key=lambda event: event["start_time"]):
        print(f"  [{event['pattern_id']}] {event['subject']} "
              f"--{event['operation']}--> {event['object']}")

    print("\n=== Returned attribute rows ===")
    for row in report.result.rows:
        print(" ", row)

    print(f"\nExtraction + graph + synthesis took "
          f"{report.total_pipeline_seconds:.3f}s; query execution took "
          f"{report.result.elapsed_seconds:.3f}s "
          f"(plan: {' -> '.join(report.result.plan)})")

    raptor.store.close()


if __name__ == "__main__":
    main()
