"""End-to-end pipeline benchmark (Figures 1 and 2).

Benchmarks the whole ThreatRaptor flow on the paper's running example: audit
log ingestion (with data reduction), threat behavior extraction, TBQL
synthesis, and exact query execution.
"""

from repro.benchmark import format_table, get_case
from repro.benchmark.case import CaseBuilder
from repro.hunting import ThreatRaptor
from repro.storage import DualStore

from .conftest import write_result_table


def _events():
    return CaseBuilder().build(get_case("data_leak"),
                               benign_sessions=60).events


def test_pipeline_ingestion(benchmark):
    """Benchmark dual-store ingestion (reduction + both backends)."""
    events = _events()

    def ingest():
        store = DualStore()
        count = store.load_events(events)
        store.close()
        return count

    stored = benchmark(ingest)
    assert 0 < stored <= len(events)


def test_pipeline_end_to_end_hunt(benchmark):
    """Benchmark the full hunt and persist the Figure-2 style walk-through."""
    case = get_case("data_leak")
    built = CaseBuilder().build(case, benign_sessions=60)
    raptor = ThreatRaptor()
    raptor.ingest_events(built.events)

    report = benchmark(lambda: raptor.hunt(case.description))

    edges = [{"sequence": edge.sequence, "source": edge.source,
              "relation": edge.relation, "target": edge.target}
             for edge in report.extraction.graph.ordered_edges()]
    summary = "\n".join([
        "== Threat behavior graph ==",
        format_table(edges),
        "",
        "== Synthesized TBQL query ==",
        report.synthesized.text,
        "",
        "== Matched system events ==",
        format_table(sorted(report.result.matched_events,
                            key=lambda event: event["start_time"]),
                     ["pattern_id", "subject", "operation", "object"]),
    ])
    write_result_table("figure2_pipeline", summary)
    assert report.synthesized.pattern_count == 8
    assert len(report.result.matched_events) >= 8
    raptor.store.close()
