"""Shared fixtures and helpers for the benchmark harness.

Every bench module regenerates one table (or figure-style ablation) of the
paper.  Besides the pytest-benchmark timings, each module writes the
regenerated table to ``benchmarks/results/<name>.txt`` so the rows the paper
reports can be inspected after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.benchmark import build_case_store, get_case
from repro.benchmark.queries import build_case_queries

RESULTS_DIR = Path(__file__).parent / "results"

#: Benign noise level used when materializing case stores for benches.  Large
#: enough that attack events are needles in a haystack, small enough that the
#: whole harness finishes in minutes.
BENCH_NOISE_SESSIONS = 60

#: Representative cases used by the per-case benches (small / medium / the
#: paper's running example).
BENCH_CASE_IDS = ["tc_clearscope_3", "tc_theia_1", "data_leak"]


def write_result_table(name: str, text: str) -> Path:
    """Persist a regenerated table under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def bench_case_stores():
    """Materialized stores + ground truth for the representative cases."""
    stores = {}
    for case_id in BENCH_CASE_IDS:
        case = get_case(case_id)
        store, ground_truth = build_case_store(
            case, benign_sessions=BENCH_NOISE_SESSIONS)
        stores[case_id] = (case, store, ground_truth)
    yield stores
    for _case, store, _truth in stores.values():
        store.close()


@pytest.fixture(scope="session")
def bench_case_queries():
    """The four equivalent query variants for the representative cases."""
    return {case_id: build_case_queries(get_case(case_id))
            for case_id in BENCH_CASE_IDS}
