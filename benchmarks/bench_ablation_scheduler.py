"""Ablation — data query scheduler (Section III-F).

Compares the pruning-score scheduler against naive declaration-order
execution of the same TBQL query, on a store where the first declared
pattern is deliberately unselective (it matches a large slice of the benign
background), which is exactly the situation the scheduler is designed for.
"""

from repro.benchmark import format_table, get_case
from repro.benchmark.evaluation import build_case_store
from repro.tbql.executor import TBQLExecutor

from .conftest import write_result_table

#: A query whose first pattern is unselective (any process reading any file)
#: and whose second pattern is highly selective; the scheduler should run the
#: selective pattern first and use its bindings to constrain the other.
_ABLATION_QUERY = """
proc p read file f as evt1
proc p["%/bin/tar%"] read file g["%/etc/passwd%"] as evt2
return distinct p, f, g
"""


def _store():
    store, _ = build_case_store(get_case("data_leak"), benign_sessions=120)
    return store


def test_ablation_scheduled_execution(benchmark):
    """Pruning-score scheduling (selective pattern first)."""
    store = _store()
    executor = TBQLExecutor(store, use_scheduler=True)
    result = benchmark(lambda: executor.execute(_ABLATION_QUERY))
    assert result.plan[0] == "evt2"
    store.close()


def test_ablation_naive_execution(benchmark):
    """Declaration-order execution (unselective pattern first)."""
    store = _store()
    executor = TBQLExecutor(store, use_scheduler=False)
    result = benchmark(lambda: executor.execute(_ABLATION_QUERY))
    assert result.plan[0] == "evt1"
    store.close()


def test_ablation_scheduler_reduces_intermediate_matches(benchmark):
    """The scheduler's constraint propagation shrinks intermediate results."""
    store = _store()
    scheduled = TBQLExecutor(store, use_scheduler=True)
    naive = TBQLExecutor(store, use_scheduler=False)

    scheduled_result = benchmark.pedantic(
        lambda: scheduled.execute(_ABLATION_QUERY), iterations=1, rounds=3)
    naive_result = naive.execute(_ABLATION_QUERY)

    def plan_stats(result, pattern_id):
        step = next(step for step in result.plan
                    if step.pattern_id == pattern_id)
        return step.rows_in, step.pushed_subject or step.pushed_object

    rows = [
        {"plan": "scheduled",
         "evt1_matches": scheduled_result.per_pattern_matches["evt1"],
         "evt1_rows_in": plan_stats(scheduled_result, "evt1")[0],
         "evt2_matches": scheduled_result.per_pattern_matches["evt2"],
         "seconds": scheduled_result.elapsed_seconds},
        {"plan": "naive",
         "evt1_matches": naive_result.per_pattern_matches["evt1"],
         "evt1_rows_in": plan_stats(naive_result, "evt1")[0],
         "evt2_matches": naive_result.per_pattern_matches["evt2"],
         "seconds": naive_result.elapsed_seconds},
    ]
    write_result_table("ablation_scheduler",
                       format_table(rows, floatfmt="{:.4f}"))
    # Same answers either way ...
    assert {tuple(sorted(r.items())) for r in scheduled_result.rows} == \
        {tuple(sorted(r.items())) for r in naive_result.rows}
    # ... but the scheduled plan touches far fewer intermediate matches for
    # the unselective pattern because the selective one ran first.
    assert rows[0]["evt1_matches"] < rows[1]["evt1_matches"]
    # The pruning now happens inside the data query (candidate pushdown),
    # not as a post-hoc filter: the backend itself returns fewer rows.
    assert plan_stats(scheduled_result, "evt1")[1]
    assert rows[0]["evt1_rows_in"] < rows[1]["evt1_rows_in"]
    store.close()
