"""Scan-optimizer benchmark: stats pruning + partial-aggregate pushdown.

Two measurements on the benign workload (``BENCH_SCAN_OPT_SESSIONS``
sessions; 3400 ≈ 100k raw events) sealed into
``BENCH_SCAN_OPT_SEGMENTS`` segments, plus one rare-operation attack
tail sealed into its own segment:

* *stats pruning* — a selective hunt for the rare operation (with a
  prefix-``LIKE`` artifact filter the dictionary path binary-searches)
  with the optimizer on vs the same hunt with
  ``REPRO_TBQL_STATS_PRUNING=0`` and ``REPRO_COLSCAN_DICT=0``.  The
  rare operation occurs in exactly one segment, so seal-time distinct
  sets prove every benign segment empty and the scan touches one
  segment instead of all of them.  The acceptance bar is a **>= 2x**
  speedup at full workload scale (asserted there, recorded
  everywhere); rows must be identical (asserted always).
* *aggregate pushdown* — a group-by hunt over the dominant operation
  with partial-aggregate pushdown on vs ``REPRO_TBQL_AGG_PUSHDOWN=0``.
  Workers return per-segment ``(group key, count)`` partials plus
  compact packed match records instead of full row payloads; the
  pickled worker-result bytes must be **measurably smaller** (asserted
  always) and the acceptance bar is a **>= 1.5x** end-to-end speedup
  at full workload scale (asserted there, recorded everywhere); rows
  and matched events must be identical (asserted always).

Tables land in ``benchmarks/results/scan_optimizer_pruning.txt`` and
``scan_optimizer_pushdown.txt``.
"""

from __future__ import annotations

import os
import pickle
import time
from contextlib import contextmanager
from operator import attrgetter

import pytest

from repro.audit import AuditCollector, CollectorConfig
from repro.audit.entities import Operation
from repro.audit.workload import generate_benign_noise
from repro.benchmark.evaluation import format_table
from repro.storage import DualStore
from repro.tbql.executor import TBQLExecutor

from .conftest import write_result_table

#: Sessions in the synthetic workload; 3400 sessions ≈ 100k events.
BENCH_SCAN_OPT_SESSIONS = int(os.environ.get(
    "BENCH_SCAN_OPT_SESSIONS", "3400"))
#: Sealed segments the benign history is partitioned into (the attack
#: tail adds one more).
BENCH_SCAN_OPT_SEGMENTS = int(os.environ.get(
    "BENCH_SCAN_OPT_SEGMENTS", "16"))
#: Timed rounds (best round reported).
ROUNDS = 5

#: Full-scale acceptance bars (smoke runs only record).
MIN_STATS_PRUNING_SPEEDUP = 2.0
MIN_PUSHDOWN_SPEEDUP = 1.5
FULL_SCALE_SESSIONS = 2000

#: The rare-operation hunt: ``delete`` never occurs in the benign
#: workload, and the prefix filter exercises the binary-searched
#: dictionary range.
SELECTIVE_QUERY = 'proc p delete file f["/home/%"] return p, f'
#: The group-by hunt over the dominant benign operation.
GROUP_QUERY = 'proc p read file f return p, count() group by p top 10'

#: Environment switches that disable the optimizer stack.
OPTIMIZER_SWITCHES = ("REPRO_TBQL_STATS_PRUNING", "REPRO_COLSCAN_DICT",
                      "REPRO_TBQL_AGG_PUSHDOWN")


@contextmanager
def _optimizers_disabled(*names):
    previous = {name: os.environ.get(name) for name in names}
    for name in names:
        os.environ[name] = "0"
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                del os.environ[name]
            else:
                os.environ[name] = value


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _attack_tail(after: float) -> list:
    """A short rare-operation session sealed after the benign history."""
    collector = AuditCollector(CollectorConfig(seed=97,
                                               start_time=after + 10.0))
    wiper = collector.spawn_process("/usr/bin/shred", user="mallory")
    for index in range(8):
        collector.record(wiper, Operation.DELETE,
                         collector.file(f"/home/mallory/doc-{index}.txt"))
    return collector.events()


@pytest.fixture(scope="module")
def stores():
    """Monolithic + segmented stores fed identically (same seals)."""
    events = generate_benign_noise(BENCH_SCAN_OPT_SESSIONS, seed=31)
    events.sort(key=attrgetter("start_time", "event_id"))
    batches = []
    step = len(events) // BENCH_SCAN_OPT_SEGMENTS + 1
    for index in range(0, len(events), step):
        batches.append(events[index:index + step])
    batches.append(_attack_tail(events[-1].start_time))
    mono = DualStore(retain_events=False)
    seg = DualStore(retain_events=False, layout="segmented")
    for batch in batches:
        for store in (mono, seg):
            store.append_events(batch)
            store.flush_appends()
    yield mono, seg
    mono.close()
    seg.close()


def test_stats_pruning_speedup(stores):
    mono, seg = stores
    segments = len(seg.segment_view().sealed)
    mono_exec = TBQLExecutor(mono)
    seg_exec = TBQLExecutor(seg)

    expected = mono_exec.execute(SELECTIVE_QUERY)
    optimized_result = seg_exec.execute(SELECTIVE_QUERY)
    assert optimized_result.rows == expected.rows
    assert optimized_result.matched_events == expected.matched_events
    step = optimized_result.plan[0]
    # The rare operation lives in exactly one segment; the distinct
    # sets prove every other segment empty before any scan task runs.
    assert step.segments_pruned_by_stats >= segments - 2
    assert step.segments_scanned <= 2

    optimized = _best_of(ROUNDS,
                         lambda: seg_exec.execute(SELECTIVE_QUERY))
    with _optimizers_disabled(*OPTIMIZER_SWITCHES):
        unoptimized_result = seg_exec.execute(SELECTIVE_QUERY)
        assert unoptimized_result.rows == expected.rows
        assert unoptimized_result.plan[0].segments_pruned_by_stats == 0
        reference = _best_of(ROUNDS,
                             lambda: seg_exec.execute(SELECTIVE_QUERY))
    seg_exec.close()
    speedup = reference / optimized

    rows = [
        {"optimizer": "off (scan every segment)", "seconds": reference,
         "segments scanned": segments, "speedup": 1.0},
        {"optimizer": f"on ({step.segments_scanned} scanned / "
                      f"{step.segments_pruned_by_stats} stats-pruned)",
         "seconds": optimized,
         "segments scanned": step.segments_scanned, "speedup": speedup},
    ]
    table = format_table(rows, floatfmt="{:.6f}")
    header = (f"Rare-operation hunt via seal-time statistics "
              f"({BENCH_SCAN_OPT_SESSIONS} sessions, {segments} "
              f"segments, best of {ROUNDS}):")
    print("\n" + header + "\n" + table)
    write_result_table("scan_optimizer_pruning", header + "\n" + table)

    if BENCH_SCAN_OPT_SESSIONS >= FULL_SCALE_SESSIONS:
        assert speedup >= MIN_STATS_PRUNING_SPEEDUP, (
            f"stats pruning speedup {speedup:.2f}x below the "
            f"{MIN_STATS_PRUNING_SPEEDUP}x acceptance bar")


def test_aggregate_pushdown_speedup_and_bytes(stores):
    from repro.tbql.colscan import (AggregateTask, ColumnarTask,
                                    build_pattern_spec,
                                    scan_segment_aggregate,
                                    scan_segment_columnar)
    from repro.tbql.parser import parse_tbql
    from repro.tbql.semantics import resolve_query

    mono, seg = stores
    mono_exec = TBQLExecutor(mono)
    seg_exec = TBQLExecutor(seg)

    expected = mono_exec.execute(GROUP_QUERY)
    optimized_result = seg_exec.execute(GROUP_QUERY)
    assert optimized_result.plan[0].aggregate_pushdown
    assert optimized_result.rows == expected.rows
    assert optimized_result.matched_events == expected.matched_events

    optimized = _best_of(ROUNDS, lambda: seg_exec.execute(GROUP_QUERY))
    with _optimizers_disabled("REPRO_TBQL_AGG_PUSHDOWN"):
        unoptimized_result = seg_exec.execute(GROUP_QUERY)
        assert not unoptimized_result.plan[0].aggregate_pushdown
        assert unoptimized_result.rows == expected.rows
        assert unoptimized_result.matched_events == \
            expected.matched_events
        reference = _best_of(ROUNDS,
                             lambda: seg_exec.execute(GROUP_QUERY))
    seg_exec.close()
    speedup = reference / optimized

    # Worker-result payload: the pushdown ships per-segment partials
    # (group counts + packed match records) instead of full row
    # payloads — compare what each task shape would pickle back.
    resolved = resolve_query(parse_tbql(GROUP_QUERY))
    pattern = resolved.patterns[0]
    spec = build_pattern_spec(pattern, resolved)
    sealed = seg.segment_view().sealed
    row_bytes = sum(
        len(pickle.dumps(scan_segment_columnar(
            ColumnarTask(info.columnar_path, spec))))
        for info in sealed)
    agg_bytes = sum(
        len(pickle.dumps(scan_segment_aggregate(
            AggregateTask(info.columnar_path, spec,
                          ((True, "exename"),)))))
        for info in sealed)
    assert agg_bytes < row_bytes, (
        f"pushdown payload ({agg_bytes} B) not smaller than the row "
        f"scatter payload ({row_bytes} B)")

    rows = [
        {"path": "row scatter + post-join aggregate",
         "seconds": reference, "worker payload KiB": row_bytes / 1024.0,
         "speedup": 1.0},
        {"path": "partial-aggregate pushdown", "seconds": optimized,
         "worker payload KiB": agg_bytes / 1024.0, "speedup": speedup},
    ]
    table = format_table(rows, floatfmt="{:.6f}")
    header = (f"Group-by hunt via partial-aggregate pushdown "
              f"({BENCH_SCAN_OPT_SESSIONS} sessions, {len(sealed)} "
              f"segments, best of {ROUNDS}):")
    print("\n" + header + "\n" + table)
    write_result_table("scan_optimizer_pushdown", header + "\n" + table)

    if BENCH_SCAN_OPT_SESSIONS >= FULL_SCALE_SESSIONS:
        assert speedup >= MIN_PUSHDOWN_SPEEDUP, (
            f"aggregate pushdown speedup {speedup:.2f}x below the "
            f"{MIN_PUSHDOWN_SPEEDUP}x acceptance bar")
