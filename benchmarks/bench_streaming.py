"""Streaming benchmark: append throughput + standing-rule eval latency.

Two measurements on the benign workload (``BENCH_STREAMING_SESSIONS``
sessions; 3400 ≈ 100k raw events, overridable for CI smoke runs):

* *append throughput* — loading the full log as ``BENCH_STREAMING_BATCHES``
  incremental ``DualStore.append_events`` batches (plus the final seal) vs
  the one-shot batched cold load.  The streaming path pays per-batch commit
  and incremental index maintenance instead of the one-shot path's
  deferred index rebuild; the acceptance bar is staying within 2x of the
  cold load at full workload scale (asserted there, recorded everywhere).
* *rule-eval latency per flush* — a :class:`DetectionEngine` with a mix of
  standing rules (selective single-pattern, multi-pattern join,
  time-dependent ``last N`` window) ingesting the same stream batch by
  batch; reports mean/max per-flush evaluation latency.

Tables land in ``benchmarks/results/streaming_ingest.txt`` and
``streaming_rules.txt``.
"""

from __future__ import annotations

import os
import time
from operator import attrgetter

import pytest

from repro.audit.workload import generate_benign_noise
from repro.benchmark.evaluation import format_table
from repro.storage import DualStore
from repro.streaming import DetectionEngine, FlushPolicy

from .conftest import write_result_table

#: Sessions in the synthetic workload; 3400 sessions ≈ 100k events.
BENCH_STREAMING_SESSIONS = int(os.environ.get("BENCH_STREAMING_SESSIONS",
                                              "3400"))
#: Incremental batches the stream is delivered in.
BENCH_STREAMING_BATCHES = int(os.environ.get("BENCH_STREAMING_BATCHES",
                                             "20"))
#: Timed rounds (best round reported).
ROUNDS = 3

#: The full-scale bar from the acceptance criteria: streamed append within
#: 2x of the batched cold load.
MAX_APPEND_SLOWDOWN = 2.0

#: Standing rules for the latency measurement: a selective single-pattern
#: detection, a multi-pattern join, and an event-time windowed rule.
STANDING_RULES = [
    ("conn-syslog-writer",
     'proc p["%/usr/sbin/rsyslogd%"] write file f["%/var/log/syslog%"] '
     'as e1 return distinct p'),
    ("fetch-then-cache",
     'proc p["%/usr/bin/firefox%"] receive ip i as e1 '
     'proc p write file f as e2 with e1 before e2 '
     'return distinct p, f'),
    ("recent-daemon-net",
     'last 5 min proc p["%/usr/sbin/cron%"] connect ip i as e1 '
     'return distinct i.dstip'),
]


@pytest.fixture(scope="module")
def workload_events():
    events = generate_benign_noise(BENCH_STREAMING_SESSIONS, seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    return events


def _chunks(items, count):
    size = (len(items) + count - 1) // count
    return [items[index:index + size]
            for index in range(0, len(items), size)]


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_streaming_append_throughput(workload_events):
    batches = _chunks(workload_events, BENCH_STREAMING_BATCHES)

    stored_counts = []

    def one_shot():
        with DualStore() as store:
            stored_counts.append(int(store.load_events(
                list(workload_events))))

    def streamed():
        with DualStore() as store:
            total = 0
            for chunk in batches:
                total += int(store.append_events(chunk))
            total += int(store.flush_appends())
            stored_counts.append(total)

    one_shot_seconds = _best_of(ROUNDS, one_shot)
    streamed_seconds = _best_of(ROUNDS, streamed)
    assert len(set(stored_counts)) == 1     # identical stored event counts

    raw = len(workload_events)
    ratio = streamed_seconds / one_shot_seconds
    rows = [
        {"path": "one-shot (batched cold load)",
         "seconds": one_shot_seconds,
         "events/sec": round(raw / one_shot_seconds),
         "vs one-shot": 1.0},
        {"path": f"streamed ({len(batches)} appends + seal)",
         "seconds": streamed_seconds,
         "events/sec": round(raw / streamed_seconds),
         "vs one-shot": ratio},
    ]
    table = (f"Streaming append throughput ({raw} raw events, "
             f"{BENCH_STREAMING_SESSIONS} sessions)\n" +
             format_table(rows, ["path", "seconds", "events/sec",
                                 "vs one-shot"], floatfmt="{:.4f}"))
    print("\n" + table)
    write_result_table("streaming_ingest", table)

    assert streamed_seconds > 0 and one_shot_seconds > 0
    if BENCH_STREAMING_SESSIONS >= 3400:
        # Full-scale acceptance bar; small smoke workloads are dominated
        # by per-batch constants and only record the ratio.
        assert ratio <= MAX_APPEND_SLOWDOWN, (
            f"streamed append {ratio:.2f}x slower than the batched cold "
            f"load (bar: {MAX_APPEND_SLOWDOWN}x)")


def test_streaming_rule_eval_latency(workload_events):
    batches = _chunks(workload_events, BENCH_STREAMING_BATCHES)
    engine = DetectionEngine(
        DualStore(), policy=FlushPolicy(max_events=1, max_seconds=0))
    for rule_id, text in STANDING_RULES:
        engine.add_rule(text, rule_id=rule_id)

    eval_seconds = []
    append_seconds = []
    for chunk in batches:
        start = time.perf_counter()
        report = engine.process_batch(chunk)
        elapsed = time.perf_counter() - start
        if report.stored:
            eval_seconds.append(report.eval_seconds)
            append_seconds.append(elapsed - report.eval_seconds)
    final = engine.finalize()
    if final.stored:
        eval_seconds.append(final.eval_seconds)

    assert eval_seconds
    mean_eval = sum(eval_seconds) / len(eval_seconds)
    mean_append = sum(append_seconds) / max(1, len(append_seconds))
    rows = [
        {"metric": "flushes", "value": len(eval_seconds), "unit": ""},
        {"metric": "events stored", "value": engine.events_stored,
         "unit": ""},
        {"metric": "rules", "value": len(engine.rules), "unit": ""},
        {"metric": "alerts fired",
         "value": engine.alerts.counters()["fired"], "unit": ""},
        {"metric": "rule-eval mean", "value": mean_eval * 1000.0,
         "unit": "ms/flush"},
        {"metric": "rule-eval max",
         "value": max(eval_seconds) * 1000.0, "unit": "ms/flush"},
        {"metric": "append mean", "value": mean_append * 1000.0,
         "unit": "ms/flush"},
    ]
    table = (f"Standing-rule evaluation latency "
             f"({BENCH_STREAMING_SESSIONS} sessions, "
             f"{len(STANDING_RULES)} rules)\n" +
             format_table(rows, ["metric", "value", "unit"]))
    print("\n" + table)
    write_result_table("streaming_rules", table)
    engine.store.close()
