"""Ingestion benchmark: the batched fast path vs the retained references.

Times ``DualStore.load_events`` on a synthetic ~100k-event benign workload
(`BENCH_INGEST_SESSIONS` sessions, overridable via the environment for CI
smoke runs) for three loaders:

* ``batched``  — the fast path: fused streaming-reduction/build pass,
  multi-row relational inserts under a deferred index rebuild, bulk graph
  insertion;
* ``rowwise``  — the retained in-tree reference (row-at-a-time entity
  inserts, item-wise graph construction) used by the equivalence tests;
* ``seed``     — a frozen copy of the seed revision's loader, including its
  ``dataclasses.replace``-per-merge reduction, kept here so the speedup is
  measured against the implementation this PR replaced.

The regenerated table (``benchmarks/results/ingestion.txt``) reports
wall-clock seconds per loader plus the speedup of the batched path, and the
equivalence of all three loaders' stored data is asserted on every run.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace as dataclass_replace

import pytest

from repro.audit.entities import (EntityType, FileEntity, ProcessEntity,
                                  reset_id_counters)
from repro.audit.reduction import ReductionStats
from repro.audit.workload import generate_benign_noise
from repro.benchmark.evaluation import format_table
from repro.storage import DualStore
from repro.storage.graph.graphdb import PropertyGraph
from repro.storage.relational.schema import ENTITY_COLUMNS, EVENT_COLUMNS

from .conftest import write_result_table

#: Sessions in the synthetic workload; 3400 sessions ≈ 100k events.  CI
#: smoke runs set this low via the environment.
BENCH_INGEST_SESSIONS = int(os.environ.get("BENCH_INGEST_SESSIONS", "3400"))

#: Timed rounds per loader in the comparison table.
ROUNDS = 3


@pytest.fixture(scope="module")
def workload_events():
    return generate_benign_noise(BENCH_INGEST_SESSIONS, seed=29)


# ---------------------------------------------------------------------------
# frozen seed loader (pre-batching revision), the benchmark baseline
# ---------------------------------------------------------------------------


def _seed_unique_key(entity):
    """The seed's per-access entity key: a fresh tuple every call (the
    current entities cache this; the frozen baseline must not)."""
    if isinstance(entity, FileEntity):
        return (EntityType.FILE, entity.path)
    if isinstance(entity, ProcessEntity):
        return (EntityType.PROCESS, entity.exename, entity.pid)
    return (EntityType.NETWORK, entity.srcip, entity.srcport, entity.dstip,
            entity.dstport, entity.protocol)


def _seed_event_attributes(event):
    """The seed's ``SystemEvent.attributes``: a fresh dict per call."""
    return {
        "operation": event.operation.value,
        "start_time": event.start_time,
        "end_time": event.end_time,
        "duration": event.duration,
        "subject_id": event.subject.entity_id,
        "object_id": event.obj.entity_id,
        "data_amount": event.data_amount,
        "failure_code": event.failure_code,
        "host": event.host,
        "category": event.category.value,
    }


def _seed_entity_row(entity_id, entity):
    """The seed's dict-comprehension entity row builder."""
    row = {column: None for column in ENTITY_COLUMNS}
    row["id"] = entity_id
    row["type"] = entity.entity_type.value
    if isinstance(entity, FileEntity):
        row.update(name=entity.name, path=entity.path, user=entity.user,
                   grp=entity.group)
    elif isinstance(entity, ProcessEntity):
        row.update(name=entity.exename, exename=entity.exename,
                   pid=entity.pid, user=entity.user, grp=entity.group,
                   cmdline=entity.cmdline or entity.exename)
    else:
        row.update(name=entity.dstip, srcip=entity.srcip,
                   srcport=entity.srcport, dstip=entity.dstip,
                   dstport=entity.dstport, protocol=entity.protocol)
    return tuple(row[column] for column in ENTITY_COLUMNS)


def _seed_mergeable(earlier, later, threshold):
    """The seed's ``mergeable``: recomputes all four entity keys per check."""
    if _seed_unique_key(earlier.subject) != _seed_unique_key(later.subject):
        return False
    if _seed_unique_key(earlier.obj) != _seed_unique_key(later.obj):
        return False
    if earlier.operation is not later.operation:
        return False
    gap = later.start_time - earlier.end_time
    return 0 <= gap <= threshold


def _seed_reduce_events(events, threshold):
    """The seed's batch reduction, frozen: uncached keys (rebuilt both for
    the run lookup and inside every ``mergeable`` check) and one
    ``dataclasses.replace`` per absorbed event (the current code caches the
    keys and accumulates run state instead)."""
    ordered = sorted(events, key=lambda event: (event.start_time,
                                                event.event_id))
    reduced = []
    open_events: dict[tuple, int] = {}
    merged_count = 0
    for event in ordered:
        key = (_seed_unique_key(event.subject), _seed_unique_key(event.obj),
               event.operation)
        index = open_events.get(key)
        if index is not None and _seed_mergeable(reduced[index], event,
                                                 threshold):
            earlier = reduced[index]
            reduced[index] = dataclass_replace(
                earlier, end_time=event.end_time,
                data_amount=earlier.data_amount + event.data_amount)
            merged_count += 1
            continue
        open_events[key] = len(reduced)
        reduced.append(event)
    stats = ReductionStats(input_events=len(ordered),
                           output_events=len(reduced),
                           merged_events=merged_count)
    return reduced, stats


def seed_load_events(store: DualStore, events) -> int:
    """The seed revision's ``DualStore.load_events``, frozen.

    Batch reduction with per-merge ``replace``, a row-at-a-time relational
    load (one ``INSERT`` statement per new entity, uncached keys and
    attribute dicts), and item-wise graph construction — the loaders this
    PR's batched path replaced.  Reaches into the store's connection the
    way the seed's own store did; benchmark-only code.
    """
    event_list = list(events)
    if store.reduce:
        event_list, stats = _seed_reduce_events(event_list,
                                                store.merge_threshold)
        store.last_reduction = stats

    relational = store.relational
    relational.clear()
    connection = relational._connection
    entity_ids: dict[tuple, int] = {}
    entity_placeholders = ", ".join("?" for _ in ENTITY_COLUMNS)
    event_rows = []
    for event_index, event in enumerate(event_list, start=1):
        endpoint_ids = []
        for entity in (event.subject, event.obj):
            key = _seed_unique_key(entity)
            entity_id = entity_ids.get(key)
            if entity_id is None:
                entity_id = len(entity_ids) + 1
                entity_ids[key] = entity_id
                connection.execute(
                    f"INSERT INTO entities ({', '.join(ENTITY_COLUMNS)}) "
                    f"VALUES ({entity_placeholders})",
                    _seed_entity_row(entity_id, entity))
            endpoint_ids.append(entity_id)
        event_rows.append((event_index, endpoint_ids[0], endpoint_ids[1],
                           event.operation.value, event.category.value,
                           event.start_time, event.end_time, event.duration,
                           event.data_amount, event.failure_code,
                           event.host))
    if event_rows:
        event_placeholders = ", ".join("?" for _ in EVENT_COLUMNS)
        connection.executemany(
            f"INSERT INTO events ({', '.join(EVENT_COLUMNS)}) "
            f"VALUES ({event_placeholders})", event_rows)
    connection.commit()
    relational.adopt_entity_ids(entity_ids, len(event_rows) + 1)

    graph = PropertyGraph()
    node_ids: dict[tuple, int] = {}
    for event in event_list:
        endpoints = []
        for entity in (event.subject, event.obj):
            key = _seed_unique_key(entity)
            node_id = node_ids.get(key)
            if node_id is None:
                node_id = graph.add_node(entity.entity_type.value,
                                         entity.attributes())
                node_ids[key] = node_id
            endpoints.append(node_id)
        graph.add_edge(endpoints[0], endpoints[1], "EVENT",
                       _seed_event_attributes(event))
    store.graph.graph = graph
    store._events = event_list
    return len(event_list)


_LOADERS = {
    "batched": lambda store, events: int(
        store.load_events(events, strategy="batched")),
    "rowwise": lambda store, events: int(
        store.load_events(events, strategy="rowwise")),
    "seed": seed_load_events,
}


# ---------------------------------------------------------------------------
# pytest-benchmark timings per loader
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("loader", ["batched", "rowwise"])
def test_ingestion_load(benchmark, workload_events, loader):
    store = DualStore()
    count = benchmark.pedantic(
        lambda: _LOADERS[loader](store, workload_events),
        iterations=1, rounds=ROUNDS, warmup_rounds=1)
    assert count > 0
    store.close()


def _fresh_workload():
    """A deterministic workload with *fresh* objects and reset id counters.

    Resetting the global id counters before regenerating with a fixed seed
    makes every stream field-for-field identical, so the loaders' stored
    data can be compared across runs — while each loader still measures the
    cold-cache cost of a first-time ingest, the real-world scenario (the
    seed revision recomputed entity keys and attribute dicts on every
    access; the current code computes them once per object).
    """
    reset_id_counters()
    return generate_benign_noise(BENCH_INGEST_SESSIONS, seed=29)


def test_ingestion_speedup_table():
    """Regenerate the loader comparison table and check the speedup.

    Each loader round ingests a freshly generated (cold) copy of the same
    deterministic workload; the best round per loader is reported.
    """
    timings: dict[str, float] = {}
    counts: dict[str, int] = {}
    tables: dict[str, tuple] = {}
    events_in = 0
    for name, loader in _LOADERS.items():
        store = DualStore()
        samples = []
        for _ in range(ROUNDS):
            events = _fresh_workload()
            events_in = len(events)
            start = time.perf_counter()
            counts[name] = loader(store, events)
            samples.append(time.perf_counter() - start)
        timings[name] = min(samples)
        tables[name] = (
            tuple(tuple(row.values()) for row in store.execute_sql(
                "SELECT * FROM entities ORDER BY id")),
            tuple(tuple(row.values()) for row in store.execute_sql(
                "SELECT * FROM events ORDER BY id")),
            store.graph.num_nodes(), store.graph.num_edges())
        store.close()

    # All three loaders store identical data.
    assert counts["batched"] == counts["rowwise"] == counts["seed"]
    assert tables["batched"] == tables["rowwise"] == tables["seed"]

    rows = [{
        "loader": name,
        "events_in": events_in,
        "events_stored": counts[name],
        "seconds": timings[name],
        "speedup_vs_batched": timings[name] / timings["batched"],
    } for name in ("seed", "rowwise", "batched")]
    table = format_table(rows, ["loader", "events_in", "events_stored",
                                "seconds", "speedup_vs_batched"],
                         floatfmt="{:.3f}")
    write_result_table("ingestion", table)

    if BENCH_INGEST_SESSIONS >= 1000:
        # Timing-order assertions only run at scale: on the tiny CI smoke
        # workload the loaders are tens of milliseconds apart and scheduler
        # noise could flip them.
        assert timings["batched"] <= timings["rowwise"]
        assert timings["batched"] <= timings["seed"]
        # At the ~100k-event scale the fast path must beat the frozen seed
        # loader by a wide margin (measured ~2.4x cold end to end on the
        # reference hardware, bounded by the SQLite insert floor; the floor
        # below is a CI-noise-tolerant bound).
        assert timings["seed"] / timings["batched"] >= 1.6


def test_ingestion_stage_breakdown(workload_events):
    """Record the batched path's per-stage statistics."""
    store = DualStore()
    stats = store.load_events(workload_events)
    rows = [{"stage": stage, "seconds": seconds}
            for stage, seconds in stats.seconds.items()]
    rows.append({"stage": "total(sum)", "seconds": stats.total_seconds})
    table = format_table(rows, ["stage", "seconds"], floatfmt="{:.4f}")
    write_result_table("ingestion_stages", table)
    assert stats.relational_batches >= 1
    assert stats.events == store.statistics()["relational_events"]
    store.close()
