"""Ablation — data reduction merge threshold (Section III-B).

The paper experimented with different merge thresholds and chose one second.
This bench sweeps the threshold on a bursty workload and reports the
reduction ratio per threshold, and benchmarks the reduction pass itself.
"""

from repro.audit import (AuditCollector, CollectorConfig,
                         generate_benign_noise, reduce_events,
                         sweep_thresholds)
from repro.benchmark import format_table

from .conftest import write_result_table


def _bursty_events():
    """File-manipulation / transfer style bursts plus background noise."""
    collector = AuditCollector(CollectorConfig(seed=3, burst_gap=0.2))
    worker = collector.spawn_process("/usr/bin/rsync")
    for index in range(30):
        collector.read_file(worker, f"/data/in_{index % 5}.bin", burst=12)
        collector.write_file(worker, f"/backup/out_{index % 5}.bin",
                             burst=12)
    return collector.events() + generate_benign_noise(num_sessions=30,
                                                      seed=4)


def test_ablation_reduction_threshold_sweep(benchmark):
    """Sweep thresholds 0 / 0.1 / 0.5 / 1 / 2 / 5 seconds."""
    events = _bursty_events()
    thresholds = [0.0, 0.1, 0.5, 1.0, 2.0, 5.0]
    results = benchmark(lambda: sweep_thresholds(events, thresholds))
    rows = [{"threshold_s": threshold,
             "input_events": stats.input_events,
             "output_events": stats.output_events,
             "reduction_ratio": stats.reduction_ratio}
            for threshold, stats in sorted(results.items())]
    table = format_table(rows, floatfmt="{:.2f}")
    write_result_table("ablation_reduction", table)
    ratios = [row["reduction_ratio"] for row in rows]
    # Larger thresholds can only merge more; the paper picked 1s because the
    # curve flattens around there for file-transfer style bursts.
    assert ratios == sorted(ratios)
    one_second = next(row for row in rows if row["threshold_s"] == 1.0)
    assert one_second["reduction_ratio"] > 2.0


def test_ablation_reduction_pass_speed(benchmark):
    """Benchmark one reduction pass at the paper's chosen threshold."""
    events = _bursty_events()
    reduced, stats = benchmark(lambda: reduce_events(events, 1.0))
    assert stats.reduction_ratio >= 1.0
    assert len(reduced) <= len(events)
