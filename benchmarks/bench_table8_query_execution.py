"""Table VIII — efficiency of TBQL query execution, exact mode (RQ4).

For each representative case the bench times the four semantically
equivalent queries of the paper's comparison:

(a) scheduled TBQL (event patterns, relational backend),
(b) one giant SQL statement,
(c) scheduled TBQL with length-1 event path patterns (graph backend),
(d) one giant Cypher statement.
"""

import pytest

from repro.benchmark import format_table
from repro.benchmark.evaluation import run_query_execution
from repro.benchmark import get_case
from repro.tbql.executor import TBQLExecutor

from .conftest import BENCH_CASE_IDS, write_result_table

_COLUMNS = ["case", "tbql_mean", "sql_mean", "tbql_path_mean", "cypher_mean"]


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table8_tbql_scheduled(benchmark, bench_case_stores,
                               bench_case_queries, case_id):
    """(a) scheduled TBQL query on the relational backend."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    executor = TBQLExecutor(store)
    result = benchmark(lambda: executor.execute(queries.tbql))
    assert result is not None


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table8_giant_sql(benchmark, bench_case_stores, bench_case_queries,
                          case_id):
    """(b) the single giant SQL statement."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    benchmark(lambda: store.execute_sql(queries.sql))


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table8_tbql_length1_path(benchmark, bench_case_stores,
                                  bench_case_queries, case_id):
    """(c) scheduled TBQL with length-1 path patterns (graph backend)."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    executor = TBQLExecutor(store)
    benchmark(lambda: executor.execute(queries.tbql_path))


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table8_giant_cypher(benchmark, bench_case_stores,
                             bench_case_queries, case_id):
    """(d) the single giant Cypher statement."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    benchmark(lambda: store.execute_cypher(queries.cypher))


def test_table8_regenerate_rows(benchmark):
    """Regenerate the Table VIII rows (mean/std over rounds) for the
    representative cases and persist them."""

    def regenerate():
        return [run_query_execution(get_case(case_id), rounds=3,
                                    benign_sessions=60)
                for case_id in BENCH_CASE_IDS]

    rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    table = format_table(rows, _COLUMNS, floatfmt="{:.4f}")
    write_result_table("table8_query_execution", table)
    # Note on shape vs. the paper: at laptop scale, with synthesized queries
    # whose every pattern carries a highly selective IOC filter, the giant
    # SQL/Cypher statements stay competitive with scheduled execution (the
    # engines prune on the selective filters immediately).  The paper's
    # giant-query penalty appears when patterns are unselective or data is
    # orders of magnitude larger; bench_ablation_scheduler reproduces that
    # mechanism explicitly.  Here we only sanity-check the measurements.
    for row in rows:
        for key in ("tbql_mean", "sql_mean", "tbql_path_mean",
                    "cypher_mean"):
            assert row[key] > 0.0
    # Execution cost grows with the number of patterns in the query.
    ordered = {row["case"]: row["tbql_mean"] for row in rows}
    assert ordered["data_leak"] > ordered["tc_clearscope_3"]
