"""Table VIII — efficiency of TBQL query execution, exact mode (RQ4).

For each representative case the bench times the four semantically
equivalent queries of the paper's comparison:

(a) scheduled TBQL (event patterns, relational backend),
(b) one giant SQL statement,
(c) scheduled TBQL with length-1 event path patterns (graph backend),
(d) one giant Cypher statement.
"""

import pytest

from repro.benchmark import format_table
from repro.benchmark.evaluation import build_case_store, run_query_execution
from repro.benchmark import get_case
from repro.tbql.executor import TBQLExecutor

from .conftest import BENCH_CASE_IDS, write_result_table

_COLUMNS = ["case", "tbql_mean", "sql_mean", "tbql_path_mean", "cypher_mean"]

#: Three event patterns sharing one process entity with no entity filters:
#: each pattern matches a large slice of the benign background, which is
#: exactly where the seed's cross-product backtracking join degenerated.
_JOIN_SCALING_QUERY = """
proc p read file f as e1
proc p write file g as e2
proc p read file h as e3
return distinct p
"""


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table8_tbql_scheduled(benchmark, bench_case_stores,
                               bench_case_queries, case_id):
    """(a) scheduled TBQL query on the relational backend."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    executor = TBQLExecutor(store)
    result = benchmark(lambda: executor.execute(queries.tbql))
    assert result is not None


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table8_giant_sql(benchmark, bench_case_stores, bench_case_queries,
                          case_id):
    """(b) the single giant SQL statement."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    benchmark(lambda: store.execute_sql(queries.sql))


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table8_tbql_length1_path(benchmark, bench_case_stores,
                                  bench_case_queries, case_id):
    """(c) scheduled TBQL with length-1 path patterns (graph backend)."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    executor = TBQLExecutor(store)
    benchmark(lambda: executor.execute(queries.tbql_path))


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table8_giant_cypher(benchmark, bench_case_stores,
                             bench_case_queries, case_id):
    """(d) the single giant Cypher statement."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    benchmark(lambda: store.execute_cypher(queries.cypher))


def test_table8_join_scaling_hash_vs_backtracking(benchmark):
    """The hash join must not blow up on unselective 3-pattern queries.

    Runs the same multi-pattern query through the pipelined hash join and
    the seed's backtracking join (kept as the reference strategy) and writes
    the per-strategy join timings; the structured plan also proves each SQL
    pattern hydrated its entities with at most one batched query (no N+1).
    """
    store, _ = build_case_store(get_case("data_leak"), benign_sessions=300)
    hash_executor = TBQLExecutor(store, join_strategy="hash")
    backtracking_executor = TBQLExecutor(store, join_strategy="backtracking")

    hash_result = benchmark.pedantic(
        lambda: hash_executor.execute(_JOIN_SCALING_QUERY),
        iterations=1, rounds=3)
    backtracking_result = backtracking_executor.execute(_JOIN_SCALING_QUERY)

    rows = [
        {"join": strategy, "join_seconds": result.join_seconds,
         "elapsed_seconds": result.elapsed_seconds,
         "result_rows": len(result.rows)}
        for strategy, result in (("hash", hash_result),
                                 ("backtracking", backtracking_result))
    ]
    write_result_table("table8_join_scaling",
                       format_table(rows, floatfmt="{:.4f}"))
    # Identical answers, measurably faster join on multi-pattern queries.
    assert hash_result.rows == backtracking_result.rows
    assert hash_result.matched_events == backtracking_result.matched_events
    assert hash_result.join_seconds < backtracking_result.join_seconds
    # Batched hydration: the per-pattern statement count is set by the
    # store's chunking of one IN-list batch, never by the row count — the
    # seed issued up to 2 lookups per row.
    for step in hash_result.plan:
        assert step.backend == "sql"
        assert step.hydration_queries < max(2, step.rows_in)
    store.close()


def test_table8_regenerate_rows(benchmark):
    """Regenerate the Table VIII rows (mean/std over rounds) for the
    representative cases and persist them."""

    def regenerate():
        return [run_query_execution(get_case(case_id), rounds=3,
                                    benign_sessions=60)
                for case_id in BENCH_CASE_IDS]

    rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    table = format_table(rows, _COLUMNS, floatfmt="{:.4f}")
    write_result_table("table8_query_execution", table)
    # Note on shape vs. the paper: at laptop scale, with synthesized queries
    # whose every pattern carries a highly selective IOC filter, the giant
    # SQL/Cypher statements stay competitive with scheduled execution (the
    # engines prune on the selective filters immediately).  The paper's
    # giant-query penalty appears when patterns are unselective or data is
    # orders of magnitude larger; bench_ablation_scheduler reproduces that
    # mechanism explicitly.  Here we only sanity-check the measurements.
    for row in rows:
        for key in ("tbql_mean", "sql_mean", "tbql_path_mean",
                    "cypher_mean"):
            assert row[key] > 0.0
    # Execution cost grows with the number of patterns in the query.
    ordered = {row["case"]: row["tbql_mean"] for row in rows}
    assert ordered["data_leak"] > ordered["tc_clearscope_3"]
