"""Benchmark regression gate: small-workload smoke vs committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/regression_gate.py --check
    PYTHONPATH=src python benchmarks/regression_gate.py --write-baseline

Absolute timings do not transfer between machines, so the gate compares
*normalized* metrics: each optimized path is timed against its retained
in-tree reference implementation on the same machine and workload, and the
gate fails when the optimized/reference time ratio regresses by more than
``BENCH_GATE_TOLERANCE`` (default 30%) versus the ratio committed in
``benchmarks/results/baseline_small.json``.  The reference path acts as the
machine-speed normalizer:

* *ingest*    — ``DualStore.load_events(strategy="batched")`` (the PR 2
  fast path) vs ``strategy="rowwise"`` (the retained pre-batching
  reference);
* *fuzzy*     — ``FuzzySearcher(strategy="indexed")`` vs
  ``strategy="bruteforce"`` on the data-leak case store;
* *streaming* — the incremental append path (``DualStore.append_events``
  in batches + seal) vs the one-shot batched cold load of the same
  events (the acceptance bar for live ingestion is 2x of the cold load;
  the gate holds the measured ratio near its committed baseline);
* *partitioned* — a selective time-windowed hunt on a segmented store
  (segment pruning, ``workers=1``) vs the same hunt on an identically
  fed monolithic store (the acceptance bar at full scale is a 2x
  speedup, i.e. a ratio <= 0.5; the gate holds the smoke-scale ratio
  near its committed baseline);
* *columnar* — the per-segment pattern scan over the memory-mapped
  ``events.col`` payload vs the same scan through each segment's
  SQLite file.  The columnar side is pinned to the pure-python
  evaluator (``REPRO_COLUMNAR_NUMPY=0``) so the committed ratio is
  comparable between machines with and without numpy (CI has none);
* *service_load* — the asyncio HTTP front end vs the legacy threaded
  server answering the same 32-client keep-alive query load over the
  same store (the acceptance bar at full fan-in is 2x the threaded
  qps, i.e. a ratio well below 1; the gate holds the smoke-scale
  ratio near its committed baseline);
* *stats_pruning* — a rare-operation hunt (with a prefix-``LIKE``
  artifact filter) on a segmented store with seal-time statistics and
  dictionary predicates enabled vs the identical hunt with
  ``REPRO_TBQL_STATS_PRUNING=0`` and ``REPRO_COLSCAN_DICT=0`` (the
  retained scan-everything reference; the acceptance bar at full scale
  is a 2x speedup, i.e. a ratio <= 0.5; the gate holds the smoke-scale
  ratio near its committed baseline);
* *agg_pushdown* — a single-pattern ``group by`` hunt with
  partial-aggregate pushdown (workers return per-segment group-count
  partials) vs the identical hunt with ``REPRO_TBQL_AGG_PUSHDOWN=0``
  (the retained row-scatter + post-join aggregation reference; the
  acceptance bar at full scale is a 1.5x speedup);
* *obs_overhead* — the same query loop executed under a live trace
  (spans recorded at every pipeline stage) vs with tracing disabled
  (``repro.obs.trace.set_enabled(False)``, the ``REPRO_OBS=0``
  production escape hatch).  Unlike the other metrics this one also
  carries an *absolute* ceiling (``HARD_LIMITS``): the traced/untraced
  ratio may never exceed 1.10 regardless of what the committed
  baseline says, so instrumentation can never silently grow past a
  10% tax.

Absolute seconds are recorded in the baseline for information only.
``--only NAME`` restricts a ``--check`` run to one metric (used by CI
to verify the gate trips without paying for the whole suite).

To verify the gate actually trips, inject an artificial slowdown into the
optimized paths and expect a non-zero exit::

    REPRO_BENCH_INJECT_SLOWDOWN=2.0 PYTHONPATH=src \
        python benchmarks/regression_gate.py --check && echo GATE BROKEN
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.audit.workload import generate_benign_noise    # noqa: E402
from repro.benchmark import get_case                      # noqa: E402
from repro.benchmark.evaluation import build_case_store   # noqa: E402
from repro.benchmark.queries import build_case_queries    # noqa: E402
from repro.storage import DualStore                       # noqa: E402
from repro.tbql.fuzzy import FuzzySearcher                # noqa: E402

BASELINE_PATH = Path(__file__).parent / "results" / "baseline_small.json"

#: Benign sessions in the smoke workload (matches the CI benchmark smoke).
SESSIONS = int(os.environ.get("BENCH_GATE_SESSIONS", "120"))
#: Allowed relative worsening of an optimized/reference ratio.
TOLERANCE = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.30"))
#: Timed rounds per path; the best round is used (noise suppression).
ROUNDS = int(os.environ.get("BENCH_GATE_ROUNDS", "3"))
#: Artificial multiplier on the optimized paths' measured time — used to
#: prove the gate fails when a real slowdown lands.
INJECTED_SLOWDOWN = float(os.environ.get("REPRO_BENCH_INJECT_SLOWDOWN",
                                         "1.0"))


def _best_of(rounds: int, run) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def measure_ingest() -> dict:
    """Batched fast-path load vs the rowwise reference load."""
    events = generate_benign_noise(SESSIONS, seed=29)

    def load(strategy: str) -> float:
        def run() -> None:
            with DualStore() as store:
                store.load_events(events, strategy=strategy)
        return _best_of(ROUNDS, run)

    optimized = load("batched") * INJECTED_SLOWDOWN
    reference = load("rowwise")
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


def measure_fuzzy() -> dict:
    """Indexed fuzzy search vs the brute-force reference search."""
    case = get_case("data_leak")
    store, _truth = build_case_store(case, benign_sessions=SESSIONS)
    queries = build_case_queries(case)
    try:
        def search(strategy: str) -> float:
            return _best_of(ROUNDS, lambda: FuzzySearcher(
                store, strategy=strategy).search(queries.tbql))

        optimized = search("indexed") * INJECTED_SLOWDOWN
        reference = search("bruteforce")
    finally:
        store.close()
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


def measure_streaming() -> dict:
    """K-batch incremental append vs the one-shot batched cold load."""
    from operator import attrgetter
    events = generate_benign_noise(SESSIONS, seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    batch_count = 20
    size = (len(events) + batch_count - 1) // batch_count
    batches = [events[index:index + size]
               for index in range(0, len(events), size)]

    def streamed() -> None:
        with DualStore() as store:
            for chunk in batches:
                store.append_events(chunk)
            store.flush_appends()

    def one_shot() -> None:
        with DualStore() as store:
            store.load_events(events)

    optimized = _best_of(ROUNDS, streamed) * INJECTED_SLOWDOWN
    reference = _best_of(ROUNDS, one_shot)
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


def measure_partitioned() -> dict:
    """Segment-pruned windowed hunt vs the monolithic full filter."""
    from operator import attrgetter

    from repro.tbql.executor import TBQLExecutor

    events = generate_benign_noise(SESSIONS, seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    segments = 8
    step = len(events) // segments + 1
    mono = DualStore(retain_events=False)
    segmented = DualStore(retain_events=False, layout="segmented")
    try:
        for index in range(0, len(events), step):
            for store in (mono, segmented):
                store.append_events(events[index:index + step])
                store.flush_appends()
        cut = segmented.segment_view().sealed[0].max_end_time
        text = (f'before {cut} proc p read file f["%/etc/%"] '
                f'return distinct p, f')
        mono_exec = TBQLExecutor(mono)
        seg_exec = TBQLExecutor(segmented)

        def run_many(executor) -> None:
            # One smoke-scale execution is sub-millisecond; time a batch
            # so the measured interval dwarfs the clock jitter.
            for _ in range(10):
                executor.execute(text)

        optimized = _best_of(
            ROUNDS, lambda: run_many(seg_exec)) * INJECTED_SLOWDOWN
        reference = _best_of(ROUNDS, lambda: run_many(mono_exec))
        seg_exec.close()
    finally:
        mono.close()
        segmented.close()
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


def measure_columnar() -> dict:
    """Columnar segment scan vs the per-segment SQLite reference scan."""
    from operator import attrgetter

    from repro.tbql.colscan import (ColumnarTask, build_pattern_spec,
                                    scan_segment_columnar, unpack_rows)
    from repro.tbql.compiler_sql import compile_pattern_sql
    from repro.tbql.parser import parse_tbql
    from repro.tbql.scatter import scan_segment
    from repro.tbql.semantics import resolve_query

    events = generate_benign_noise(SESSIONS, seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    segments = 8
    step = len(events) // segments + 1
    store = DualStore(retain_events=False, layout="segmented")
    try:
        for index in range(0, len(events), step):
            store.append_events(events[index:index + step])
            store.flush_appends()
        sealed = store.segment_view().sealed
        resolved = resolve_query(parse_tbql(
            'proc p read file f return distinct p'))
        pattern = resolved.patterns[0]
        compiled = compile_pattern_sql(pattern, resolved)
        spec = build_pattern_spec(pattern, resolved)
        sql_tasks = [(info.sqlite_path, compiled.sql,
                      tuple(compiled.params)) for info in sealed]
        col_tasks = [ColumnarTask(info.columnar_path, spec)
                     for info in sealed]

        def run_columnar() -> None:
            # One smoke-scale sweep is ~1ms; time a batch so the
            # measured interval dwarfs the clock jitter.
            for _ in range(10):
                for task in col_tasks:
                    unpack_rows(scan_segment_columnar(task))

        def run_sqlite() -> None:
            for _ in range(10):
                for task in sql_tasks:
                    scan_segment(task)

        # Pin the portable evaluator: the committed ratio must mean the
        # same thing on machines with and without numpy (CI has none).
        previous = os.environ.get("REPRO_COLUMNAR_NUMPY")
        os.environ["REPRO_COLUMNAR_NUMPY"] = "0"
        try:
            optimized = _best_of(ROUNDS, run_columnar) * INJECTED_SLOWDOWN
        finally:
            if previous is None:
                del os.environ["REPRO_COLUMNAR_NUMPY"]
            else:
                os.environ["REPRO_COLUMNAR_NUMPY"] = previous
        reference = _best_of(ROUNDS, run_sqlite)
    finally:
        store.close()
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


def _segmented_with_rare_ops() -> DualStore:
    """Benign noise sealed into 8 segments plus one rare-op tail segment.

    The tail collector starts after the noise ends, so its ``delete``
    events seal into exactly one final segment — the shape the seal-time
    distinct-operation sets prune on.
    """
    from operator import attrgetter

    from repro.audit import AuditCollector, CollectorConfig
    from repro.audit.entities import Operation

    events = generate_benign_noise(SESSIONS, seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    segments = 8
    step = len(events) // segments + 1
    store = DualStore(retain_events=False, layout="segmented")
    for index in range(0, len(events), step):
        store.append_events(events[index:index + step])
        store.flush_appends()
    collector = AuditCollector(CollectorConfig(
        seed=97, start_time=events[-1].start_time + 10.0))
    wiper = collector.spawn_process("/usr/bin/shred", user="mallory")
    for index in range(8):
        collector.record(wiper, Operation.DELETE,
                         collector.file(f"/home/mallory/doc-{index}.txt"))
    store.append_events(collector.events())
    store.flush_appends()
    return store


def _timed_with_disabled(run, switches: tuple[str, ...]) -> float:
    """Best-of-N timing of ``run`` with the given optimizers off."""
    previous = {name: os.environ.get(name) for name in switches}
    for name in switches:
        os.environ[name] = "0"
    try:
        return _best_of(ROUNDS, run)
    finally:
        for name, value in previous.items():
            if value is None:
                del os.environ[name]
            else:
                os.environ[name] = value


def measure_stats_pruning() -> dict:
    """Stats-pruned rare-operation hunt vs the scan-everything reference."""
    from repro.tbql.executor import TBQLExecutor

    store = _segmented_with_rare_ops()
    text = 'proc p delete file f["/home/%"] return p, f'
    try:
        executor = TBQLExecutor(store)

        def run_many() -> None:
            # One smoke-scale execution is sub-millisecond; time a batch
            # so the measured interval dwarfs the clock jitter.
            for _ in range(10):
                executor.execute(text)

        optimized = _best_of(ROUNDS, run_many) * INJECTED_SLOWDOWN
        reference = _timed_with_disabled(
            run_many, ("REPRO_TBQL_STATS_PRUNING", "REPRO_COLSCAN_DICT"))
        executor.close()
    finally:
        store.close()
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


def measure_agg_pushdown() -> dict:
    """Partial-aggregate pushdown vs the row-scatter aggregation path."""
    from repro.tbql.executor import TBQLExecutor

    store = _segmented_with_rare_ops()
    text = 'proc p read file f return p, count() group by p top 10'
    try:
        executor = TBQLExecutor(store)

        def run_many() -> None:
            for _ in range(10):
                executor.execute(text)

        optimized = _best_of(ROUNDS, run_many) * INJECTED_SLOWDOWN
        reference = _timed_with_disabled(
            run_many, ("REPRO_TBQL_AGG_PUSHDOWN",))
        executor.close()
    finally:
        store.close()
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


def measure_service_load() -> dict:
    """Asyncio HTTP front end vs the threaded reference, keep-alive load.

    Both backends serve the same store to the same 32-client keep-alive
    query load (result cache primed, so the serving path dominates); the
    threaded thread-per-connection server is the machine normalizer.
    """
    import threading

    from repro.service import (AsyncThreatHuntingServer, QueryService,
                               ServiceClient, ThreatHuntingServer,
                               run_load)

    events = generate_benign_noise(SESSIONS, seed=29)
    queries = [
        'proc p["%/usr/bin/ssh%"] connect ip i["10.9.%"] as e1 '
        'return distinct p, i.dstip',
        'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
        'return distinct p',
    ]

    def serve_and_load(backend: str) -> float:
        store = DualStore()
        store.load_events(events)
        service = QueryService(store)
        if backend == "asyncio":
            server = AsyncThreatHuntingServer(("127.0.0.1", 0), service)
        else:
            server = ThreatHuntingServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        if backend == "asyncio":
            server.wait_ready(10)
        host, port = server.server_address[:2]
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                for query in queries:
                    client.query(query)   # prime the result cache
            run_load(host, port, queries, clients=8,
                     requests_per_client=2)   # warmup
            best = float("inf")
            for _ in range(ROUNDS):
                result = run_load(host, port, queries, clients=32,
                                  requests_per_client=8)
                if result.errors:
                    raise RuntimeError(
                        f"{backend} load run had {result.errors} "
                        f"error(s): {result.statuses}")
                best = min(best, result.seconds)
            return best
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            store.close()

    optimized = serve_and_load("asyncio") * INJECTED_SLOWDOWN
    reference = serve_and_load("threaded")
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


def measure_obs_overhead() -> dict:
    """Traced query loop vs the identical loop with tracing disabled.

    Here "optimized" is the *instrumented* path: the ratio is the cost
    of observability, expected a hair above 1.  The gate additionally
    holds it under the absolute ``HARD_LIMITS`` ceiling.
    """
    from operator import attrgetter

    from repro.obs import trace
    from repro.tbql.executor import TBQLExecutor

    events = generate_benign_noise(SESSIONS, seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    segments = 6
    step = len(events) // segments + 1
    store = DualStore(retain_events=False, layout="segmented")
    text = 'proc p read file f["%/etc/%"] return distinct p, f'
    try:
        for index in range(0, len(events), step):
            store.append_events(events[index:index + step])
            store.flush_appends()
        executor = TBQLExecutor(store)
        previous = trace.set_enabled(True)
        try:
            def run_traced() -> None:
                # One execution is ~1ms; time a batch so the measured
                # interval dwarfs the clock jitter.
                for _ in range(100):
                    with trace.start_trace("query"):
                        executor.execute(text)

            def run_plain() -> None:
                for _ in range(100):
                    executor.execute(text)

            run_traced()      # warm caches before any timed round
            # Interleave the two sides round by round: the ~2% span
            # cost being measured is far smaller than the clock-speed
            # drift between two sequential best-of-N blocks, so each
            # round times both sides back to back and the drift
            # cancels in the ratio.
            optimized = float("inf")
            reference = float("inf")
            for _ in range(ROUNDS):
                start = time.perf_counter()
                run_traced()
                optimized = min(optimized,
                                time.perf_counter() - start)
                trace.set_enabled(False)
                start = time.perf_counter()
                run_plain()
                reference = min(reference,
                                time.perf_counter() - start)
                trace.set_enabled(True)
            optimized *= INJECTED_SLOWDOWN
        finally:
            trace.set_enabled(previous)
            executor.close()
    finally:
        store.close()
    return {
        "optimized_seconds": optimized,
        "reference_seconds": reference,
        "ratio": optimized / reference,
    }


MEASUREMENTS = {
    "ingest": measure_ingest,
    "fuzzy": measure_fuzzy,
    "streaming": measure_streaming,
    "partitioned": measure_partitioned,
    "columnar": measure_columnar,
    "stats_pruning": measure_stats_pruning,
    "agg_pushdown": measure_agg_pushdown,
    "service_load": measure_service_load,
    "obs_overhead": measure_obs_overhead,
}

#: Absolute ratio ceilings, enforced in --check even when the committed
#: baseline has no entry (or a looser one) for the metric.
HARD_LIMITS = {
    "obs_overhead": 1.10,
}


def collect(only: str | None = None) -> dict:
    selected = MEASUREMENTS if only is None else {only: MEASUREMENTS[only]}
    metrics = {name: measure() for name, measure in selected.items()}
    return {
        "sessions": SESSIONS,
        "rounds": ROUNDS,
        "metrics": metrics,
    }


def write_baseline() -> int:
    current = collect()
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(current, indent=2, sort_keys=True) +
                             "\n", encoding="utf-8")
    print(f"baseline written to {BASELINE_PATH}")
    for name, metric in current["metrics"].items():
        print(f"  {name}: ratio={metric['ratio']:.4f} "
              f"(optimized {metric['optimized_seconds']:.4f}s, "
              f"reference {metric['reference_seconds']:.4f}s)")
    return 0


def check(only: str | None = None) -> int:
    if not BASELINE_PATH.is_file():
        print(f"ERROR: no baseline at {BASELINE_PATH}; run "
              f"--write-baseline first", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    current = collect(only=only)
    failures = []
    print(f"benchmark regression gate (sessions={SESSIONS}, "
          f"tolerance={TOLERANCE:.0%}"
          + (f", injected slowdown x{INJECTED_SLOWDOWN}"
             if INJECTED_SLOWDOWN != 1.0 else "") + ")")
    for name, metric in current["metrics"].items():
        recorded = baseline["metrics"].get(name)
        hard = HARD_LIMITS.get(name)
        if recorded is None and hard is None:
            print(f"  {name}: no baseline entry, skipping")
            continue
        allowed = float("inf") if recorded is None \
            else recorded["ratio"] * (1.0 + TOLERANCE)
        if hard is not None:
            allowed = min(allowed, hard)
        status = "ok" if metric["ratio"] <= allowed else "REGRESSION"
        against = (f"vs baseline {recorded['ratio']:.4f}"
                   if recorded is not None else "no baseline")
        if hard is not None:
            against += f", hard limit {hard:.2f}"
        print(f"  {name}: ratio {metric['ratio']:.4f} {against} "
              f"(allowed <= {allowed:.4f}) "
              f"[{status}] — optimized {metric['optimized_seconds']:.4f}s, "
              f"reference {metric['reference_seconds']:.4f}s")
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"FAIL: regression beyond {TOLERANCE:.0%} tolerance in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("PASS: no benchmark regression beyond tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--check", action="store_true", default=True,
                       help="compare against the committed baseline "
                            "(default)")
    group.add_argument("--write-baseline", action="store_true",
                       help="measure and (re)write the committed baseline")
    parser.add_argument("--only", choices=sorted(MEASUREMENTS),
                        help="measure a single metric (check mode only; "
                             "other baseline entries are left unchecked)")
    args = parser.parse_args(argv)
    if args.write_baseline:
        if args.only:
            parser.error("--only cannot be combined with "
                         "--write-baseline (the baseline is written "
                         "whole)")
        return write_baseline()
    return check(only=args.only)


if __name__ == "__main__":
    sys.exit(main())
