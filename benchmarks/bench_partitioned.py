"""Partitioned-storage benchmark: segment pruning + scatter-gather.

Two measurements on the benign workload (``BENCH_PARTITIONED_SESSIONS``
sessions; 3400 ≈ 100k raw events, overridable for CI smoke runs), with
the history sealed into ``BENCH_PARTITIONED_SEGMENTS`` segments:

* *segment pruning* — a selective time-windowed hunt (``before T``
  plus an artifact filter, the dominant shape of the paper's Table 8
  corpus) on the segmented store vs the identically fed monolithic
  store.  The window covers one segment, so the planner skips the
  other ``N-1`` via manifest time bounds while the monolith filters
  the whole history.  The acceptance bar is a **>= 2x** speedup at
  full workload scale (asserted there, recorded everywhere).
* *scatter-gather* — an unwindowed hunt fanned out across the sealed
  segments at 1/2/4 worker processes.  Wall-clock gains need physical
  cores (recorded always, asserted never — CI machines vary); the
  rows must be identical at every worker count (asserted always).
* *columnar scan* — the raw per-segment scan of the unwindowed hunt's
  pattern via the memory-mapped ``events.col`` payload vs the same
  scan through each segment's SQLite file.  The acceptance bar is a
  **>= 2x** speedup at full workload scale (asserted there, recorded
  everywhere); the gathered rows must be identical (asserted always).

Tables land in ``benchmarks/results/partitioned_pruning.txt``,
``partitioned_scatter.txt``, and ``partitioned_columnar.txt``.
"""

from __future__ import annotations

import os
import time
from operator import attrgetter

import pytest

from repro.audit.workload import generate_benign_noise
from repro.benchmark.evaluation import format_table
from repro.storage import DualStore
from repro.tbql.executor import TBQLExecutor

from .conftest import write_result_table

#: Sessions in the synthetic workload; 3400 sessions ≈ 100k events.
BENCH_PARTITIONED_SESSIONS = int(os.environ.get(
    "BENCH_PARTITIONED_SESSIONS", "3400"))
#: Sealed segments the history is partitioned into.
BENCH_PARTITIONED_SEGMENTS = int(os.environ.get(
    "BENCH_PARTITIONED_SEGMENTS", "16"))
#: Timed rounds (best round reported).
ROUNDS = 5

#: The full-scale acceptance bar: a windowed hunt on the segmented
#: store at least this much faster than on the monolithic store.
MIN_PRUNING_SPEEDUP = 2.0
#: The full-scale acceptance bar for the columnar segment scan vs the
#: per-segment SQLite scan of the same pattern.
MIN_COLUMNAR_SPEEDUP = 2.0
#: Workload size at which the bar is asserted (smoke runs only record).
FULL_SCALE_SESSIONS = 2000

#: The unwindowed hunt used for the scatter-gather measurement.
BROAD_QUERY = 'proc p read file f return distinct p'


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def stores():
    """Monolithic + segmented stores fed identically (same seals)."""
    events = generate_benign_noise(BENCH_PARTITIONED_SESSIONS, seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    mono = DualStore(retain_events=False)
    seg = DualStore(retain_events=False, layout="segmented")
    step = len(events) // BENCH_PARTITIONED_SEGMENTS + 1
    for index in range(0, len(events), step):
        batch = events[index:index + step]
        for store in (mono, seg):
            store.append_events(batch)
            store.flush_appends()
    yield mono, seg
    mono.close()
    seg.close()


def test_partitioned_pruning_speedup(stores):
    mono, seg = stores
    segments = seg.segment_view().sealed
    # Window a selective hunt to the first segment's time span: the
    # window predicate is `end_time <= T` (no index on end_time) and the
    # artifact filter is a LIKE (no index either), so the monolith pays
    # a history-wide scan while the planner prunes to one segment.
    cut = segments[0].max_end_time
    text = (f'before {cut} proc p read file f["%/etc/%"] '
            f'return distinct p, f')

    mono_exec = TBQLExecutor(mono)
    seg_exec = TBQLExecutor(seg)
    expected = mono_exec.execute(text)
    got = seg_exec.execute(text)
    assert got.rows == expected.rows
    assert got.matched_events == expected.matched_events
    scanned = got.plan[0].segments_scanned
    pruned = got.plan[0].segments_pruned
    assert scanned + pruned == len(segments)
    assert pruned >= len(segments) - 2     # the window spans ~1 segment

    mono_seconds = _best_of(ROUNDS, lambda: mono_exec.execute(text))
    seg_seconds = _best_of(ROUNDS, lambda: seg_exec.execute(text))
    seg_exec.close()
    speedup = mono_seconds / seg_seconds

    rows = [
        {"store": "monolithic (full-history filter)",
         "seconds": mono_seconds, "segments scanned": len(segments),
         "speedup": 1.0},
        {"store": f"segmented ({scanned} scanned / {pruned} pruned)",
         "seconds": seg_seconds, "segments scanned": scanned,
         "speedup": speedup},
    ]
    table = format_table(rows, floatfmt="{:.6f}")
    header = (f"Time-windowed hunt via segment pruning "
              f"({BENCH_PARTITIONED_SESSIONS} sessions, "
              f"{len(segments)} segments, best of {ROUNDS}):")
    print("\n" + header + "\n" + table)
    write_result_table("partitioned_pruning", header + "\n" + table)

    if BENCH_PARTITIONED_SESSIONS >= FULL_SCALE_SESSIONS:
        assert speedup >= MIN_PRUNING_SPEEDUP, (
            f"segment pruning speedup {speedup:.2f}x below the "
            f"{MIN_PRUNING_SPEEDUP}x acceptance bar")


def test_partitioned_scatter_gather(stores):
    _mono, seg = stores
    segments = len(seg.segment_view().sealed)
    rows = []
    reference_rows = None
    serial_seconds = None
    for workers in (1, 2, 4):
        executor = TBQLExecutor(seg, workers=workers)
        result = executor.execute(BROAD_QUERY)
        if reference_rows is None:
            reference_rows = result.rows
        else:
            # Identical results at every worker count, by construction.
            assert result.rows == reference_rows
        seconds = _best_of(ROUNDS,
                           lambda: executor.execute(BROAD_QUERY))
        executor.close()
        if serial_seconds is None:
            serial_seconds = seconds
        rows.append({"workers": workers, "seconds": seconds,
                     "vs serial": serial_seconds / seconds,
                     "result rows": len(reference_rows)})
    table = format_table(rows, floatfmt="{:.6f}")
    header = (f"Scatter-gather over {segments} segments "
              f"({BENCH_PARTITIONED_SESSIONS} sessions, "
              f"{os.cpu_count()} cpu(s), best of {ROUNDS}):")
    print("\n" + header + "\n" + table)
    write_result_table("partitioned_scatter", header + "\n" + table)


def test_partitioned_columnar_speedup(stores):
    """Raw segment scan: memory-mapped columnar vs per-segment SQLite."""
    from repro.tbql.colscan import (ColumnarTask, build_pattern_spec,
                                    scan_segment_columnar, unpack_rows)
    from repro.tbql.compiler_sql import compile_pattern_sql
    from repro.tbql.parser import parse_tbql
    from repro.tbql.scatter import scan_segment
    from repro.tbql.semantics import resolve_query

    _mono, seg = stores
    sealed = seg.segment_view().sealed
    resolved = resolve_query(parse_tbql(BROAD_QUERY))
    pattern = resolved.patterns[0]
    compiled = compile_pattern_sql(pattern, resolved)
    spec = build_pattern_spec(pattern, resolved)
    sql_tasks = [(info.sqlite_path, compiled.sql, tuple(compiled.params))
                 for info in sealed]
    col_tasks = [ColumnarTask(info.columnar_path, spec)
                 for info in sealed]

    def sqlite_rows():
        rows = []
        for task in sql_tasks:
            rows.extend(scan_segment(task))
        return rows

    def columnar_rows():
        rows = []
        for task in col_tasks:
            rows.extend(unpack_rows(scan_segment_columnar(task)))
        return rows

    def order(row):
        return (row["start_time"], row["event_id"])

    expected = sorted(sqlite_rows(), key=order)
    assert sorted(columnar_rows(), key=order) == expected

    sqlite_seconds = _best_of(ROUNDS, sqlite_rows)
    columnar_seconds = _best_of(ROUNDS, columnar_rows)
    speedup = sqlite_seconds / columnar_seconds
    rows = [
        {"scan": "sqlite (per-segment SQL)", "seconds": sqlite_seconds,
         "rows": len(expected), "speedup": 1.0},
        {"scan": "columnar (mmap events.col)",
         "seconds": columnar_seconds, "rows": len(expected),
         "speedup": speedup},
    ]
    table = format_table(rows, floatfmt="{:.6f}")
    header = (f"Per-segment pattern scan, columnar vs sqlite "
              f"({BENCH_PARTITIONED_SESSIONS} sessions, "
              f"{len(sealed)} segments, best of {ROUNDS}):")
    print("\n" + header + "\n" + table)
    write_result_table("partitioned_columnar", header + "\n" + table)

    if BENCH_PARTITIONED_SESSIONS >= FULL_SCALE_SESSIONS:
        assert speedup >= MIN_COLUMNAR_SPEEDUP, (
            f"columnar scan speedup {speedup:.2f}x below the "
            f"{MIN_COLUMNAR_SPEEDUP}x acceptance bar")
