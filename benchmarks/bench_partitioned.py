"""Partitioned-storage benchmark: segment pruning + scatter-gather.

Two measurements on the benign workload (``BENCH_PARTITIONED_SESSIONS``
sessions; 3400 ≈ 100k raw events, overridable for CI smoke runs), with
the history sealed into ``BENCH_PARTITIONED_SEGMENTS`` segments:

* *segment pruning* — a selective time-windowed hunt (``before T``
  plus an artifact filter, the dominant shape of the paper's Table 8
  corpus) on the segmented store vs the identically fed monolithic
  store.  The window covers one segment, so the planner skips the
  other ``N-1`` via manifest time bounds while the monolith filters
  the whole history.  The acceptance bar is a **>= 2x** speedup at
  full workload scale (asserted there, recorded everywhere).
* *scatter-gather* — an unwindowed hunt fanned out across the sealed
  segments at 1/2/4 worker processes.  Wall-clock gains need physical
  cores (recorded always, asserted never — CI machines vary); the
  rows must be identical at every worker count (asserted always).

Tables land in ``benchmarks/results/partitioned_pruning.txt`` and
``partitioned_scatter.txt``.
"""

from __future__ import annotations

import os
import time
from operator import attrgetter

import pytest

from repro.audit.workload import generate_benign_noise
from repro.benchmark.evaluation import format_table
from repro.storage import DualStore
from repro.tbql.executor import TBQLExecutor

from .conftest import write_result_table

#: Sessions in the synthetic workload; 3400 sessions ≈ 100k events.
BENCH_PARTITIONED_SESSIONS = int(os.environ.get(
    "BENCH_PARTITIONED_SESSIONS", "3400"))
#: Sealed segments the history is partitioned into.
BENCH_PARTITIONED_SEGMENTS = int(os.environ.get(
    "BENCH_PARTITIONED_SEGMENTS", "16"))
#: Timed rounds (best round reported).
ROUNDS = 5

#: The full-scale acceptance bar: a windowed hunt on the segmented
#: store at least this much faster than on the monolithic store.
MIN_PRUNING_SPEEDUP = 2.0
#: Workload size at which the bar is asserted (smoke runs only record).
FULL_SCALE_SESSIONS = 2000

#: The unwindowed hunt used for the scatter-gather measurement.
BROAD_QUERY = 'proc p read file f return distinct p'


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def stores():
    """Monolithic + segmented stores fed identically (same seals)."""
    events = generate_benign_noise(BENCH_PARTITIONED_SESSIONS, seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    mono = DualStore(retain_events=False)
    seg = DualStore(retain_events=False, layout="segmented")
    step = len(events) // BENCH_PARTITIONED_SEGMENTS + 1
    for index in range(0, len(events), step):
        batch = events[index:index + step]
        for store in (mono, seg):
            store.append_events(batch)
            store.flush_appends()
    yield mono, seg
    mono.close()
    seg.close()


def test_partitioned_pruning_speedup(stores):
    mono, seg = stores
    segments = seg.segment_view().sealed
    # Window a selective hunt to the first segment's time span: the
    # window predicate is `end_time <= T` (no index on end_time) and the
    # artifact filter is a LIKE (no index either), so the monolith pays
    # a history-wide scan while the planner prunes to one segment.
    cut = segments[0].max_end_time
    text = (f'before {cut} proc p read file f["%/etc/%"] '
            f'return distinct p, f')

    mono_exec = TBQLExecutor(mono)
    seg_exec = TBQLExecutor(seg)
    expected = mono_exec.execute(text)
    got = seg_exec.execute(text)
    assert got.rows == expected.rows
    assert got.matched_events == expected.matched_events
    scanned = got.plan[0].segments_scanned
    pruned = got.plan[0].segments_pruned
    assert scanned + pruned == len(segments)
    assert pruned >= len(segments) - 2     # the window spans ~1 segment

    mono_seconds = _best_of(ROUNDS, lambda: mono_exec.execute(text))
    seg_seconds = _best_of(ROUNDS, lambda: seg_exec.execute(text))
    seg_exec.close()
    speedup = mono_seconds / seg_seconds

    rows = [
        {"store": "monolithic (full-history filter)",
         "seconds": mono_seconds, "segments scanned": len(segments),
         "speedup": 1.0},
        {"store": f"segmented ({scanned} scanned / {pruned} pruned)",
         "seconds": seg_seconds, "segments scanned": scanned,
         "speedup": speedup},
    ]
    table = format_table(rows, floatfmt="{:.6f}")
    header = (f"Time-windowed hunt via segment pruning "
              f"({BENCH_PARTITIONED_SESSIONS} sessions, "
              f"{len(segments)} segments, best of {ROUNDS}):")
    print("\n" + header + "\n" + table)
    write_result_table("partitioned_pruning", header + "\n" + table)

    if BENCH_PARTITIONED_SESSIONS >= FULL_SCALE_SESSIONS:
        assert speedup >= MIN_PRUNING_SPEEDUP, (
            f"segment pruning speedup {speedup:.2f}x below the "
            f"{MIN_PRUNING_SPEEDUP}x acceptance bar")


def test_partitioned_scatter_gather(stores):
    _mono, seg = stores
    segments = len(seg.segment_view().sealed)
    rows = []
    reference_rows = None
    serial_seconds = None
    for workers in (1, 2, 4):
        executor = TBQLExecutor(seg, workers=workers)
        result = executor.execute(BROAD_QUERY)
        if reference_rows is None:
            reference_rows = result.rows
        else:
            # Identical results at every worker count, by construction.
            assert result.rows == reference_rows
        seconds = _best_of(ROUNDS,
                           lambda: executor.execute(BROAD_QUERY))
        executor.close()
        if serial_seconds is None:
            serial_seconds = seconds
        rows.append({"workers": workers, "seconds": seconds,
                     "vs serial": serial_seconds / seconds,
                     "result rows": len(reference_rows)})
    table = format_table(rows, floatfmt="{:.6f}")
    header = (f"Scatter-gather over {segments} segments "
              f"({BENCH_PARTITIONED_SESSIONS} sessions, "
              f"{os.cpu_count()} cpu(s), best of {ROUNDS}):")
    print("\n" + header + "\n" + table)
    write_result_table("partitioned_scatter", header + "\n" + table)
