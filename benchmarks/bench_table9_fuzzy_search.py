"""Table IX — fuzzy search mode vs Poirot (RQ4, inexact matching).

Times the three phases the paper reports (loading, preprocessing, searching)
for ThreatRaptor's exhaustive fuzzy mode and for the Poirot baseline that
stops at the first acceptable alignment.
"""

import pytest

from repro.benchmark import format_table, get_case
from repro.benchmark.evaluation import run_fuzzy_comparison
from repro.tbql.fuzzy import FuzzySearcher
from repro.tbql.poirot import PoirotSearcher

from .conftest import BENCH_CASE_IDS, write_result_table

_COLUMNS = ["case", "fuzzy_loading", "fuzzy_preprocessing",
            "fuzzy_searching", "fuzzy_total", "fuzzy_alignments",
            "poirot_searching", "poirot_total", "poirot_alignments"]


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table9_fuzzy_mode(benchmark, bench_case_stores, bench_case_queries,
                           case_id):
    """ThreatRaptor-Fuzzy: exhaustive alignment search."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    searcher = FuzzySearcher(store)
    result = benchmark(lambda: searcher.search(queries.tbql))
    assert result.total_seconds >= 0


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table9_poirot_baseline(benchmark, bench_case_stores,
                                bench_case_queries, case_id):
    """Poirot: stop at the first acceptable alignment."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    searcher = PoirotSearcher(store)
    benchmark(lambda: searcher.search(queries.tbql))


def test_table9_regenerate_rows(benchmark, bench_case_stores,
                                bench_case_queries):
    """Regenerate Table IX rows and check the exact-vs-fuzzy cost shape."""

    def regenerate():
        return [run_fuzzy_comparison(get_case(case_id), benign_sessions=60,
                                     queries=bench_case_queries[case_id])
                for case_id in BENCH_CASE_IDS]

    rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    table = format_table(rows, _COLUMNS, floatfmt="{:.4f}")
    write_result_table("table9_fuzzy_search", table)
    for row in rows:
        # The exhaustive fuzzy search never does less work than Poirot's
        # first-acceptable-alignment search on the same case.
        assert row["fuzzy_alignments"] >= row["poirot_alignments"]


def test_table9_exact_vs_fuzzy_cost(benchmark, bench_case_stores,
                                    bench_case_queries):
    """The paper's headline: exact search is far cheaper than fuzzy search."""
    from repro.tbql.executor import TBQLExecutor
    _case, store, _truth = bench_case_stores["data_leak"]
    queries = bench_case_queries["data_leak"]
    executor = TBQLExecutor(store)
    exact_result = benchmark(lambda: executor.execute(queries.tbql))
    fuzzy_result = FuzzySearcher(store).search(queries.tbql)
    assert exact_result.elapsed_seconds < fuzzy_result.total_seconds
