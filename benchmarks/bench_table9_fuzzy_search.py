"""Table IX — fuzzy search mode vs Poirot (RQ4, inexact matching).

Times the three phases the paper reports (loading, preprocessing, searching)
for ThreatRaptor's exhaustive fuzzy mode and for the Poirot baseline that
stops at the first acceptable alignment.

The module also regenerates a strategy-comparison table on a large synthetic
store (``BENCH_FUZZY_SESSIONS`` benign sessions, ~100k events by default):
the indexed fast path (bigram-prefiltered candidates, banded Levenshtein,
cached flow closure, branch-and-bound enumeration) against the retained
brute-force reference, asserting identical alignments and a ≥5x speedup at
scale.
"""

import os
import time

import pytest

from repro.benchmark import format_table, get_case
from repro.benchmark.evaluation import build_case_store, run_fuzzy_comparison
from repro.benchmark.queries import build_case_queries
from repro.tbql.fuzzy import FuzzySearcher
from repro.tbql.poirot import PoirotSearcher

from .conftest import BENCH_CASE_IDS, write_result_table

_COLUMNS = ["case", "fuzzy_loading", "fuzzy_preprocessing",
            "fuzzy_searching", "fuzzy_total", "fuzzy_alignments",
            "poirot_searching", "poirot_total", "poirot_alignments"]

#: Benign sessions behind the strategy-comparison store; 3400 ≈ 100k events.
#: CI smoke runs set this low via the environment.
BENCH_FUZZY_SESSIONS = int(os.environ.get("BENCH_FUZZY_SESSIONS", "3400"))


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table9_fuzzy_mode(benchmark, bench_case_stores, bench_case_queries,
                           case_id):
    """ThreatRaptor-Fuzzy: exhaustive alignment search."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    searcher = FuzzySearcher(store)
    result = benchmark(lambda: searcher.search(queries.tbql))
    assert result.total_seconds >= 0


@pytest.mark.parametrize("case_id", BENCH_CASE_IDS)
def test_table9_poirot_baseline(benchmark, bench_case_stores,
                                bench_case_queries, case_id):
    """Poirot: stop at the first acceptable alignment."""
    _case, store, _truth = bench_case_stores[case_id]
    queries = bench_case_queries[case_id]
    searcher = PoirotSearcher(store)
    benchmark(lambda: searcher.search(queries.tbql))


def test_table9_regenerate_rows(benchmark, bench_case_stores,
                                bench_case_queries):
    """Regenerate Table IX rows and check the exact-vs-fuzzy cost shape."""

    def regenerate():
        return [run_fuzzy_comparison(get_case(case_id), benign_sessions=60,
                                     queries=bench_case_queries[case_id])
                for case_id in BENCH_CASE_IDS]

    rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    table = format_table(rows, _COLUMNS, floatfmt="{:.4f}")
    write_result_table("table9_fuzzy_search", table)
    for row in rows:
        # The exhaustive fuzzy search never does less work than Poirot's
        # first-acceptable-alignment search on the same case.
        assert row["fuzzy_alignments"] >= row["poirot_alignments"]


def test_table9_strategy_speedup(benchmark):
    """Indexed fast path vs brute-force reference on the ~100k-event store."""
    case = get_case("data_leak")
    store, _truth = build_case_store(case,
                                     benign_sessions=BENCH_FUZZY_SESSIONS)
    queries = build_case_queries(case)
    searchers = {
        "indexed": FuzzySearcher(store, strategy="indexed"),
        "bruteforce": FuzzySearcher(store, strategy="bruteforce"),
    }

    def run(strategy):
        start = time.perf_counter()
        result = searchers[strategy].search(queries.tbql)
        return result, time.perf_counter() - start

    indexed, indexed_seconds = benchmark.pedantic(
        lambda: run("indexed"), iterations=1, rounds=1)
    bruteforce, bruteforce_seconds = run("bruteforce")

    def alignment_key(alignment):
        return (sorted(alignment.mapping.items()), alignment.score)

    assert sorted(map(alignment_key, indexed.alignments)) == \
        sorted(map(alignment_key, bruteforce.alignments))
    assert indexed.candidate_counts == bruteforce.candidate_counts

    speedup = bruteforce_seconds / max(indexed_seconds, 1e-9)
    rows = [
        {"strategy": name, "loading": r.loading_seconds,
         "preprocessing": r.preprocessing_seconds,
         "searching": r.searching_seconds, "total_wall": seconds,
         "alignments": len(r.alignments),
         "speedup": seconds and bruteforce_seconds / seconds}
        for name, (r, seconds) in (("bruteforce",
                                    (bruteforce, bruteforce_seconds)),
                                   ("indexed", (indexed, indexed_seconds)))
    ]
    table = format_table(rows, ["strategy", "loading", "preprocessing",
                                "searching", "total_wall", "alignments",
                                "speedup"], floatfmt="{:.4f}")
    write_result_table("table9_fuzzy_strategy_speedup", table)
    store.close()
    if BENCH_FUZZY_SESSIONS >= 1000:
        # Acceptance bar: >=5x on the ~100k-event workload (measured ~16x
        # on the reference hardware).
        assert speedup >= 5.0
    else:
        assert speedup > 0.0


def test_table9_exact_vs_fuzzy_cost(benchmark, bench_case_stores,
                                    bench_case_queries):
    """The paper's headline: exact search is far cheaper than fuzzy search."""
    from repro.tbql.executor import TBQLExecutor
    _case, store, _truth = bench_case_stores["data_leak"]
    queries = bench_case_queries["data_leak"]
    executor = TBQLExecutor(store)
    exact_result = benchmark(lambda: executor.execute(queries.tbql))
    fuzzy_result = FuzzySearcher(store).search(queries.tbql)
    assert exact_result.elapsed_seconds < fuzzy_result.total_seconds
