"""Table VII — efficiency of threat behavior extraction (RQ3).

Regenerates the per-case stage timings (text -> entities & relations,
entities & relations -> graph, graph -> TBQL) plus the baseline extraction
times, and benchmarks each stage on the paper's running example.
"""

from repro.benchmark import ALL_CASES, format_table, get_case
from repro.benchmark.evaluation import run_extraction_timing
from repro.extraction import ThreatBehaviorExtractor
from repro.extraction.openie import PatternOpenIE
from repro.tbql.synthesis import TBQLSynthesizer

from .conftest import write_result_table

_COLUMNS = ["case", "text_to_entities_relations",
            "entities_relations_to_graph", "graph_to_tbql",
            "stanford_openie", "openie5"]


def test_table7_stage_timings(benchmark):
    """Regenerate Table VII and benchmark the full timing sweep."""
    rows = benchmark.pedantic(run_extraction_timing,
                              kwargs={"cases": ALL_CASES},
                              iterations=1, rounds=1)
    table = format_table(rows, _COLUMNS, floatfmt="{:.4f}")
    write_result_table("table7_extraction_time", table)
    average_total = sum(row["text_to_entities_relations"] +
                        row["entities_relations_to_graph"] +
                        row["graph_to_tbql"] for row in rows) / len(rows)
    # The paper reports 0.52s on average for the three stages; our substrate
    # should be comfortably within a couple of seconds per report.
    assert average_total < 2.0


def test_table7_extraction_stage(benchmark):
    """Benchmark threat behavior extraction for the data-leak report."""
    case = get_case("data_leak")
    extractor = ThreatBehaviorExtractor()
    benchmark(lambda: extractor.extract(case.description))


def test_table7_synthesis_stage(benchmark):
    """Benchmark TBQL synthesis for the data-leak report."""
    case = get_case("data_leak")
    extraction = ThreatBehaviorExtractor().extract(case.description)
    synthesizer = TBQLSynthesizer()
    benchmark(lambda: synthesizer.synthesize(extraction.graph))


def test_table7_openie_baseline(benchmark):
    """Benchmark the Open IE baseline on the same report (slower in paper)."""
    case = get_case("data_leak")
    baseline = PatternOpenIE(ioc_protection=True)
    benchmark(lambda: baseline.extract(case.description))
