"""Service load benchmark: asyncio vs threaded front end under fan-in.

Drives hundreds of concurrent *keep-alive* HTTP clients (the asyncio
load generator in :mod:`repro.service.loadgen`) against the same
snapshot served by both front ends and records throughput (qps) and
latency quantiles (p50/p99) per backend into
``benchmarks/results/service_load.txt``.

The claim under test: at 64+ keep-alive clients the asyncio backend —
one event loop multiplexing every connection, TBQL running on a small
bounded executor — must sustain **>= 2x** the queries/sec of the legacy
thread-per-connection server, whose one-thread-per-client design pays
GIL convoying and per-request scheduler churn at exactly the fan-in a
long-lived service sees.  Asserted at full workload scale; the CI smoke
run (small ``BENCH_SERVICE_LOAD_SESSIONS``) only checks both backends
answer the full load error-free with identical payloads.

Environment knobs (CI smoke lowers all three):

* ``BENCH_SERVICE_LOAD_SESSIONS`` — workload size (3400 ≈ 100k events);
* ``BENCH_SERVICE_LOAD_CLIENTS``  — concurrent keep-alive clients (64);
* ``BENCH_SERVICE_LOAD_REQUESTS`` — requests each client fires (25).
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.audit.workload import generate_benign_noise
from repro.benchmark.evaluation import format_table
from repro.service import (AsyncThreatHuntingServer, QueryService,
                           ServiceClient, ThreatHuntingServer, run_load)
from repro.storage import DualStore

from .conftest import write_result_table

#: Selective hunting-style patterns: threat behaviors are needles in the
#: benign haystack (the paper's serving regime), so answers are small
#: and the measured cost is the serving path itself — connection
#: handling, parsing, dispatch — not megabyte payload serialization,
#: which is identical GIL-bound work on both backends.
LOAD_QUERIES = [
    'proc p["%/usr/bin/ssh%"] connect ip i["10.9.%"] as e1 '
    'return distinct p, i.dstip',
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
    'return distinct p',
    'proc p["%/usr/bin/vim%"] write file f["%/etc/%"] as e1 '
    'return distinct f',
    'proc p["%/usr/bin/git%"] read file f["%.ssh%"] as e1 '
    'return distinct p, f',
]

BENCH_SERVICE_LOAD_SESSIONS = int(os.environ.get(
    "BENCH_SERVICE_LOAD_SESSIONS", "3400"))
BENCH_SERVICE_LOAD_CLIENTS = int(os.environ.get(
    "BENCH_SERVICE_LOAD_CLIENTS", "64"))
BENCH_SERVICE_LOAD_REQUESTS = int(os.environ.get(
    "BENCH_SERVICE_LOAD_REQUESTS", "25"))

#: The ratio the asyncio front end must clear at full workload scale.
MIN_ASYNCIO_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench_service_load") / "snapshot"
    with DualStore() as store:
        store.load_events(generate_benign_noise(
            BENCH_SERVICE_LOAD_SESSIONS, seed=29))
        store.save(directory)
    return directory


def _start_backend(backend: str, store: DualStore):
    """One served store per backend; returns (server, thread, base_url)."""
    service = QueryService(store)
    if backend == "asyncio":
        server = AsyncThreatHuntingServer(("127.0.0.1", 0), service)
    else:
        server = ThreatHuntingServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    if backend == "asyncio":
        assert server.wait_ready(10)
    host, port = server.server_address[:2]
    return server, thread, host, port


def _measure_backend(backend: str, snapshot_dir) -> tuple[dict, dict]:
    """Load-test one backend; returns (result row, payloads by query)."""
    store = DualStore.open(snapshot_dir)
    server, thread, host, port = _start_backend(backend, store)
    try:
        # Serial reference pass: primes the result cache (the timed load
        # measures the serving path, not repeated TBQL execution) and
        # captures the canonical payload of every query for the
        # byte-identical comparison across backends.
        payloads = {}
        with ServiceClient(f"http://{host}:{port}") as client:
            for query in LOAD_QUERIES:
                payloads[query] = json.dumps(
                    client.query(query)["result"], sort_keys=True)
        # Warmup at small fan-in, then the timed full-fan-in run.
        run_load(host, port, LOAD_QUERIES, clients=8,
                 requests_per_client=2)
        result = run_load(host, port, LOAD_QUERIES,
                          clients=BENCH_SERVICE_LOAD_CLIENTS,
                          requests_per_client=BENCH_SERVICE_LOAD_REQUESTS)
        row = {"backend": backend, **result.as_row()}
        return row, payloads
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        store.close()


def test_asyncio_front_end_outscales_threaded(benchmark, snapshot_dir):
    """qps/p50/p99 at full fan-in, asyncio vs threaded, same snapshot."""
    threaded_row, threaded_payloads = _measure_backend("threaded",
                                                       snapshot_dir)
    asyncio_row, asyncio_payloads = benchmark.pedantic(
        lambda: _measure_backend("asyncio", snapshot_dir),
        iterations=1, rounds=1)

    speedup = asyncio_row["qps"] / max(threaded_row["qps"], 1e-9)
    threaded_row["qps_vs_threaded"] = 1.0
    asyncio_row["qps_vs_threaded"] = speedup
    table = format_table(
        [threaded_row, asyncio_row],
        ["backend", "clients", "requests", "errors", "seconds", "qps",
         "p50_ms", "p99_ms", "qps_vs_threaded"], floatfmt="{:.4f}")
    write_result_table("service_load", table)

    # Both backends answered the whole load, and answered it the same.
    assert threaded_row["errors"] == 0
    assert asyncio_row["errors"] == 0
    assert threaded_payloads == asyncio_payloads
    if BENCH_SERVICE_LOAD_SESSIONS >= 1000:
        # Acceptance bar: the event loop must at least double the
        # thread-per-connection throughput at 64+ keep-alive clients.
        # Small CI smoke workloads run at reduced fan-in where the two
        # designs are indistinguishable, so the bar applies at scale.
        assert speedup >= MIN_ASYNCIO_SPEEDUP, \
            f"asyncio only {speedup:.2f}x threaded qps " \
            f"({asyncio_row['qps']:.0f} vs {threaded_row['qps']:.0f})"
