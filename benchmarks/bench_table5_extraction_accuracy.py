"""Table V — accuracy of threat behavior extraction (RQ1).

Regenerates the entity / relation precision, recall, and F1 of ThreatRaptor,
the no-IOC-protection ablation, and the general Open IE baselines over all 18
cases, and benchmarks the full-corpus extraction pass of each approach.
"""

from repro.benchmark import ALL_CASES, format_table, run_extraction_accuracy
from repro.benchmark.evaluation import default_approaches
from repro.extraction import ThreatBehaviorExtractor

from .conftest import write_result_table

_COLUMNS = ["approach", "entity_precision", "entity_recall", "entity_f1",
            "relation_precision", "relation_recall", "relation_f1"]


def _regenerate_table():
    rows = run_extraction_accuracy(ALL_CASES)
    table = format_table(rows, _COLUMNS)
    write_result_table("table5_extraction_accuracy", table)
    return rows


def test_table5_threatraptor_extraction(benchmark):
    """Benchmark ThreatRaptor's extraction over the whole corpus (Table V)."""
    extractor = ThreatBehaviorExtractor()

    def extract_corpus():
        return [extractor.extract(case.description) for case in ALL_CASES]

    benchmark(extract_corpus)
    rows = _regenerate_table()
    ours = next(row for row in rows if row["approach"] == "ThreatRaptor")
    ablation = next(row for row in rows
                    if row["approach"] == "ThreatRaptor - IOC Protection")
    baselines = [row for row in rows if "Open IE" in row["approach"]]
    # Shape checks mirroring the paper's findings.
    assert ours["entity_f1"] > 0.9 and ours["relation_f1"] > 0.9
    assert ablation["entity_f1"] < ours["entity_f1"] - 0.25
    assert ablation["relation_f1"] < ours["relation_f1"] - 0.4
    assert all(row["relation_f1"] < 0.3 for row in baselines)


def test_table5_openie_baseline_extraction(benchmark):
    """Benchmark the Open IE baseline over the whole corpus."""
    approach = default_approaches()[4]          # Open IE 5 style, unprotected

    def extract_corpus():
        return [approach.extract_relations(case.description)
                for case in ALL_CASES]

    benchmark(extract_corpus)
