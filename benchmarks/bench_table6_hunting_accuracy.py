"""Table VI — accuracy of threat hunting (RQ2).

Regenerates the per-case precision/recall of the malicious system events
found by the synthesized TBQL queries, and benchmarks the end-to-end hunt
(extract -> synthesize -> execute) on the paper's running example.
"""

from repro.benchmark import ALL_CASES, format_table, run_hunting_accuracy
from repro.hunting import ThreatRaptor

from .conftest import write_result_table

_COLUMNS = ["case", "tp", "fp", "fn", "precision", "recall", "f1"]

#: Smaller noise level for the full 18-case accuracy sweep so the bench stays
#: fast; accuracy is insensitive to the noise volume (precision stays 100%).
_SWEEP_NOISE_SESSIONS = 10


def test_table6_hunting_accuracy_sweep(benchmark):
    """Regenerate Table VI over all 18 cases (benchmarks the full sweep)."""
    rows = benchmark.pedantic(
        run_hunting_accuracy,
        kwargs={"cases": ALL_CASES, "benign_sessions": _SWEEP_NOISE_SESSIONS},
        iterations=1, rounds=1)
    table = format_table(rows, _COLUMNS)
    write_result_table("table6_hunting_accuracy", table)
    total = rows[-1]
    assert total["case"] == "Total"
    # The paper reports 100% precision and 96.7% recall; the scripted cases
    # preserve the shape: perfect precision, recall losses only where the
    # case encodes a known synthesis ambiguity or IOC deviation.
    assert total["precision"] == 1.0
    assert total["recall"] > 0.75
    by_case = {row["case"]: row for row in rows}
    assert by_case["tc_fivedirections_3"]["tp"] == 0      # deviated IOCs
    assert by_case["tc_trace_1"]["fn"] >= 1                # "run" ambiguity
    assert by_case["data_leak"]["precision"] == 1.0


def test_table6_single_hunt(benchmark, bench_case_stores):
    """Benchmark one end-to-end OSCTI-driven hunt (the data-leak case)."""
    case, store, ground_truth = bench_case_stores["data_leak"]
    raptor = ThreatRaptor(store=store)

    def hunt():
        return raptor.hunt(case.description)

    report = benchmark(hunt)
    found = report.result.matched_event_signatures
    assert found
    assert found <= ground_truth
