"""Table X — conciseness of TBQL vs SQL, TBQL length-1 path, and Cypher (RQ5).

Counts characters (excluding whitespace/comments) and words of the four
semantically equivalent query variants for every case, and checks the
paper's headline ratios (TBQL ~2-3x more concise).
"""

from repro.benchmark import ALL_CASES, format_table, run_conciseness

from .conftest import write_result_table

_COLUMNS = ["case", "patterns", "tbql_chars", "tbql_words", "sql_chars",
            "sql_words", "path_chars", "path_words", "cypher_chars",
            "cypher_words"]


def test_table10_conciseness(benchmark):
    """Regenerate Table X over all 18 cases."""
    rows = benchmark.pedantic(run_conciseness, kwargs={"cases": ALL_CASES},
                              iterations=1, rounds=1)
    table = format_table(rows, _COLUMNS, floatfmt="{:.0f}")
    write_result_table("table10_conciseness", table)
    total = rows[-1]
    assert total["case"] == "Total"
    char_ratio_sql = total["sql_chars"] / total["tbql_chars"]
    word_ratio_sql = total["sql_words"] / total["tbql_words"]
    char_ratio_cypher = total["cypher_chars"] / total["tbql_chars"]
    word_ratio_cypher = total["cypher_words"] / total["tbql_words"]
    # Paper: TBQL is >2.8x more concise than SQL and >2.2x than Cypher (by
    # characters 3.4x / 2.9x).  Require the same ordering with a margin.
    assert char_ratio_sql > 2.8
    assert word_ratio_sql > 2.0
    assert char_ratio_cypher > 1.5
    assert word_ratio_cypher > 1.0
    # Conciseness savings grow with the number of declared patterns.
    small = next(row for row in rows if row["case"] == "tc_clearscope_3")
    large = next(row for row in rows if row["case"] == "data_leak")
    assert (large["sql_chars"] / large["tbql_chars"]) > \
        (small["sql_chars"] / small["tbql_chars"])
