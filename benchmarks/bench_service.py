"""Serving benchmark: warm snapshot open vs cold ingest, queries/sec.

Measures the two claims of the serving subsystem on the ~100k-event benign
workload (``BENCH_SERVICE_SESSIONS`` sessions, overridable for CI smoke
runs):

* *warm restore*: ``DualStore.open`` of a saved snapshot must beat the
  cold process start — parsing the raw audit log and ingesting it
  (``repro serve --log``, what every run previously did) — by >= 5x
  (asserted at full workload scale; the snapshot skips log parsing,
  reduction, row building, and index construction entirely);
* *concurrent serving*: queries/sec through the HTTP service at 1, 4, and
  8 client threads over one shared read-only store, with the result cache
  disabled so every request executes.

The regenerated tables land in ``benchmarks/results/``
(``service_snapshot_open.txt`` and ``service_throughput.txt``).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.audit.workload import generate_benign_noise
from repro.benchmark.evaluation import format_table
from repro.service import QueryService, ServiceClient, ThreatHuntingServer
from repro.storage import DualStore
from repro.tbql.executor import TBQLExecutor

from .conftest import write_result_table

#: Sessions in the synthetic workload; 3400 sessions ≈ 100k events.  CI
#: smoke runs set this low via the environment.
BENCH_SERVICE_SESSIONS = int(os.environ.get("BENCH_SERVICE_SESSIONS",
                                            "3400"))

#: Timed rounds for the open/ingest comparison (best round reported).
ROUNDS = 3

#: Requests issued per client thread at each concurrency level.
REQUESTS_PER_CLIENT = int(os.environ.get("BENCH_SERVICE_REQUESTS", "30"))

#: Query mix answered by the service: selective and unselective event
#: patterns plus a path pattern, all matching the benign workload.
SERVICE_QUERIES = [
    'proc p["%/usr/bin/firefox%"] connect ip i as e1 '
    'return distinct p, i.dstip',
    'proc p read file f["%/var/log/syslog%"] as e1 return distinct p',
    'proc p["%/usr/bin/vim%"] write file f as e1 return distinct f',
    'proc p["%/usr/bin/git%"] ~>(1~2)[read] file f as e1 '
    'return distinct p',
]


@pytest.fixture(scope="module")
def workload_events():
    return generate_benign_noise(BENCH_SERVICE_SESSIONS, seed=29)


@pytest.fixture(scope="module")
def workload_log_text(workload_events):
    """The raw audit log the cold path re-parses on every process start."""
    from repro.audit.logfmt import format_log
    return format_log(workload_events)


@pytest.fixture(scope="module")
def snapshot_dir(workload_events, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench_service") / "snapshot"
    with DualStore() as store:
        store.load_events(workload_events)
        store.save(directory)
    return directory


def test_warm_open_vs_cold_ingest(benchmark, workload_events,
                                  workload_log_text, snapshot_dir):
    """Warm snapshot open must be >= 5x faster than the cold start.

    Cold start is what ``repro serve --log`` (and every pre-snapshot run of
    the reproduction) does at process start: parse the raw audit log text,
    then ingest into both backends.  Warm start is ``DualStore.open`` on
    the snapshot directory.
    """
    from repro.audit.parser import parse_audit_log

    cold_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        with DualStore() as store:
            count = int(store.load_events(parse_audit_log(
                workload_log_text)))
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
    assert count > 0

    def open_snapshot():
        start = time.perf_counter()
        store = DualStore.open(snapshot_dir)
        elapsed = time.perf_counter() - start
        return store, elapsed

    warm_seconds = float("inf")
    for _ in range(ROUNDS - 1):
        store, elapsed = open_snapshot()
        warm_seconds = min(warm_seconds, elapsed)
        store.close()
    store, elapsed = benchmark.pedantic(open_snapshot, iterations=1,
                                        rounds=1)
    warm_seconds = min(warm_seconds, elapsed)
    try:
        assert store.relational.count_events() == count
        # Spot-check identical answers before trusting the timing.
        query = SERVICE_QUERIES[0]
        with DualStore() as fresh:
            fresh.load_events(workload_events)
            expected = TBQLExecutor(fresh).execute(query).rows
        assert TBQLExecutor(store).execute(query).rows == expected
    finally:
        store.close()

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    rows = [
        {"path": "cold start (parse log + load_events)",
         "seconds": cold_seconds, "speedup": 1.0},
        {"path": "warm start (DualStore.open)", "seconds": warm_seconds,
         "speedup": speedup},
    ]
    table = format_table(rows, ["path", "seconds", "speedup"],
                         floatfmt="{:.4f}")
    write_result_table("service_snapshot_open", table)
    if BENCH_SERVICE_SESSIONS >= 1000:
        # Acceptance bar: >= 5x on the ~100k-event workload.  Small CI
        # smoke workloads are dominated by constant overheads, so the bar
        # only applies at scale.
        assert speedup >= 5.0, \
            f"warm open only {speedup:.1f}x faster than cold ingest"


def test_service_queries_per_second(benchmark, snapshot_dir):
    """Queries/sec through the HTTP API at 1, 4, and 8 client threads."""
    store = DualStore.open(snapshot_dir)
    service = QueryService(store, result_cache_size=0)
    server = ThreatHuntingServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"

    expected = {
        query: ServiceClient(base_url).query(query)["result"]["rows"]
        for query in SERVICE_QUERIES
    }

    def client_run(worker: int) -> None:
        client = ServiceClient(base_url)
        for index in range(REQUESTS_PER_CLIENT):
            query = SERVICE_QUERIES[(worker + index) % len(SERVICE_QUERIES)]
            response = client.query(query)
            assert response["result"]["rows"] == expected[query]

    def measure(clients: int) -> dict:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(client_run, range(clients)))
        elapsed = time.perf_counter() - start
        requests = clients * REQUESTS_PER_CLIENT
        return {"clients": clients, "requests": requests,
                "seconds": elapsed, "queries_per_sec": requests / elapsed}

    rows = [measure(1)]
    rows.extend(measure(clients) for clients in (4, 8))
    benchmark.pedantic(lambda: measure(1), iterations=1, rounds=1)
    table = format_table(rows, ["clients", "requests", "seconds",
                                "queries_per_sec"], floatfmt="{:.4f}")
    write_result_table("service_throughput", table)

    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    store.close()
    for row in rows:
        assert row["queries_per_sec"] > 0
