"""End-to-end observability smoke: serve, scrape, profile, shut down.

Boots a real ``repro serve`` subprocess on an ephemeral port against a
freshly generated audit log, then drives the observability surface the
way an operator would::

    PYTHONPATH=src python benchmarks/smoke_observability.py
    PYTHONPATH=src python benchmarks/smoke_observability.py \
        --server-backend asyncio

Checks: ``GET /healthz`` answers with the pinned payload shape,
``GET /metrics`` serves a valid Prometheus 0.0.4 exposition (validated
line by line with :mod:`tests.promtext`, the scraper-grade parser the
unit tests use) that contains the request metrics for the traffic this
script just sent, and ``POST /query`` with ``"profile": true`` returns
a span tree rooted at ``query``.  Exits non-zero on the first
violation — CI runs this once per backend.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.audit.workload import (BenignWorkloadGenerator,  # noqa: E402
                                  WorkloadConfig)
from tests.promtext import parse_prometheus_text           # noqa: E402

BANNER = re.compile(r"serving on http://([\d.]+):(\d+)")

QUERY = 'proc p read file f as e1 return distinct p'


def _await_banner(process: subprocess.Popen) -> tuple[str, int]:
    """Read the server's stderr until the listening banner appears."""
    deadline = time.monotonic() + 30.0
    lines = []
    assert process.stderr is not None
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            break
        lines.append(line)
        match = BANNER.search(line)
        if match:
            return match.group(1), int(match.group(2))
    raise RuntimeError("server never printed its banner; stderr was:\n"
                       + "".join(lines))


def _get(url: str) -> tuple[bytes, str]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read(), response.headers.get("Content-Type", "")


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def check(base: str, backend: str) -> None:
    health = json.loads(_get(f"{base}/healthz")[0])
    assert health["status"] == "ok", health
    assert health["backend"] == backend, health
    assert set(health) == {"status", "uptime_seconds", "version",
                           "backend"}, health

    profiled = _post(f"{base}/query", {"tbql": QUERY, "profile": True})
    tree = profiled["profile"]
    assert tree["name"] == "query", tree
    assert tree["duration_ms"] > 0, tree
    assert any(child["name"] == "parse"
               for child in tree["children"]), tree

    body, content_type = _get(f"{base}/metrics")
    assert content_type.startswith("text/plain"), content_type
    assert "version=0.0.4" in content_type, content_type
    families = parse_prometheus_text(body.decode("utf-8"))
    hits = [value for _name, labels, value
            in families["repro_http_requests_total"]["samples"]
            if labels["path"] == "/query" and labels["status"] == "200"]
    assert hits == [1.0], families["repro_http_requests_total"]
    assert "repro_http_request_seconds" in families
    assert "repro_build_info" in families
    print(f"  {len(families)} metric families validated, "
          f"profile tree has {len(tree['children'])} stages")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--server-backend", default="threaded",
                        choices=["threaded", "asyncio"])
    args = parser.parse_args(argv)

    log_text = BenignWorkloadGenerator(
        WorkloadConfig(num_sessions=10, seed=7)).generate_log()
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
        log_path = Path(tmp) / "audit.log"
        log_path.write_text(log_text, encoding="utf-8")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--log", str(log_path), "--port", "0",
             "--server-backend", args.server_backend],
            cwd=REPO_ROOT, stderr=subprocess.PIPE, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")})
        try:
            host, port = _await_banner(process)
            print(f"[smoke] {args.server_backend} backend up on "
                  f"{host}:{port}")
            check(f"http://{host}:{port}", args.server_backend)
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
    print(f"[smoke] observability surface OK ({args.server_backend})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
