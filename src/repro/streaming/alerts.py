"""Structured alerts and the bounded alert store.

When a standing rule matches newly stored events, the engine emits one
:class:`Alert` per (rule, flush) carrying the full provenance of the match:
the result rows, every matched event (including historical events a
multi-pattern rule joined against), and the ids of the events that are
*new* in this delta — the ones that caused the rule to fire.

The :class:`AlertStore` is a bounded ring: old alerts are dropped (and
counted) once ``capacity`` is exceeded, so an unattended service cannot
grow without bound.  A bounded signature set deduplicates re-fired alerts
as a backstop behind the per-rule high-water marks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

#: Default alert ring capacity.
DEFAULT_ALERT_CAPACITY = 1000
#: Signatures remembered for deduplication (a backstop; exactly-once is
#: primarily guaranteed by the per-rule high-water marks).
DEDUP_CAPACITY = 65536


@dataclass(frozen=True)
class Alert:
    """One standing-rule detection with full match provenance."""

    alert_id: int
    rule_id: str
    query: str
    #: Flush sequence number and store version when the rule fired.
    batch_seq: int
    data_version: int
    #: Event-time watermark at evaluation time.
    watermark: float
    #: Wall-clock emission time.
    created_at: float
    #: Ids of the newly stored events that triggered the alert.
    new_event_ids: tuple[int, ...]
    #: Every matched event of the rule (new and historical).
    matched_events: tuple[dict, ...] = field(repr=False)
    #: The rule's result rows at fire time.
    rows: tuple[dict, ...] = field(repr=False)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view served by ``GET /alerts``."""
        return {
            "alert_id": self.alert_id,
            "rule_id": self.rule_id,
            "query": self.query,
            "batch_seq": self.batch_seq,
            "data_version": self.data_version,
            "watermark": self.watermark,
            "created_at": self.created_at,
            "new_event_ids": list(self.new_event_ids),
            "matched_events": [dict(event) for event in self.matched_events],
            "rows": [dict(row) for row in self.rows],
        }


class AlertStore:
    """Bounded, thread-safe, deduplicating alert ring."""

    def __init__(self, capacity: int = DEFAULT_ALERT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("alert store capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._alerts: deque[Alert] = deque()
        self._signatures: set[tuple] = set()
        self._signature_queue: deque[tuple] = deque()
        self._next_id = 1
        self.fired = 0
        self.suppressed = 0
        self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._alerts)

    def fire(self, rule_id: str, query: str, batch_seq: int,
             data_version: int, watermark: float,
             new_event_ids: list[int], matched_events: list[dict],
             rows: list[dict]) -> Optional[Alert]:
        """Admit an alert unless its signature already fired.

        The signature is ``(rule id, new event ids)``: the same delta
        re-offered for the same rule (e.g. after a crash-replay) is
        suppressed.  Returns the stored alert, or ``None`` when it was
        deduplicated.
        """
        signature = (rule_id, tuple(new_event_ids))
        with self._lock:
            if signature in self._signatures:
                self.suppressed += 1
                return None
            self._signatures.add(signature)
            self._signature_queue.append(signature)
            while len(self._signature_queue) > DEDUP_CAPACITY:
                self._signatures.discard(self._signature_queue.popleft())
            alert = Alert(
                alert_id=self._next_id, rule_id=rule_id, query=query,
                batch_seq=batch_seq, data_version=data_version,
                watermark=watermark, created_at=time.time(),
                new_event_ids=tuple(new_event_ids),
                matched_events=tuple(matched_events), rows=tuple(rows))
            self._next_id += 1
            self._alerts.append(alert)
            self.fired += 1
            while len(self._alerts) > self.capacity:
                self._alerts.popleft()
                self.dropped += 1
            return alert

    def list(self, since_id: int = 0,
             limit: Optional[int] = None) -> list[Alert]:
        """Alerts with ``alert_id > since_id``, oldest first."""
        with self._lock:
            selected = [alert for alert in self._alerts
                        if alert.alert_id > since_id]
        if limit is not None:
            selected = selected[:max(0, limit)]
        return selected

    def clear(self) -> int:
        """Drop the stored alerts (dedup memory is kept); returns count."""
        with self._lock:
            count = len(self._alerts)
            self._alerts.clear()
        return count

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._alerts),
                "capacity": self.capacity,
                "fired": self.fired,
                "suppressed": self.suppressed,
                "dropped": self.dropped,
            }


__all__ = ["Alert", "AlertStore", "DEFAULT_ALERT_CAPACITY",
           "DEDUP_CAPACITY"]
