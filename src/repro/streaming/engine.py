"""Live detection engine: incremental ingestion + standing-query evaluation.

The :class:`DetectionEngine` turns the one-shot hunting pipeline into a
continuous one.  Events stream in (from a :class:`~repro.streaming.tailer.
LogTailer`, an HTTP ``POST /ingest``, or any producer), get batched under a
time/size :class:`~repro.streaming.batcher.FlushPolicy`, and each flush:

1. **appends** the delta to both dual-store backends without a rebuild
   (:meth:`~repro.storage.dualstore.DualStore.append_events`), under the
   exclusive side of a single-writer/multi-reader lock so concurrent TBQL
   queries never observe a half-applied batch;
2. **advances the event-time watermark** — the max event end time seen —
   which is what ``last N`` windows in standing rules resolve against, so
   window semantics follow the *data's* clock, not the wall clock;
3. **evaluates every standing rule** through the shared executor and emits
   one structured :class:`~repro.streaming.alerts.Alert` per rule that
   matched newly stored events.  Per-rule high-water event ids make firing
   exactly-once per matching delta: a match whose events were all stored at
   or below the mark has either fired before or predates the rule.

Rule evaluation deliberately executes against the *full* store and then
keys firing on the delta: a multi-pattern rule may join a new event against
history (the "tar read passwd weeks ago, curl exfiltrates now" case), which
pure delta-only evaluation would miss.  The re-execution cost is bounded by
the same scheduler/pushdown machinery interactive queries use.

Periodic checkpointing persists the store snapshot plus the stream state
(log offset, watermark, rule high-water marks) so a restarted service
resumes from the last checkpoint without re-alerting on already-processed
events; see :mod:`repro.streaming.checkpoint`.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from ..audit.entities import SystemEvent
from ..audit.parser import AuditLogParser, ParseReport
from ..errors import ReproError, StorageError, StreamingError
from ..obs.metrics import get_registry
from ..storage.dualstore import DualStore
from ..tbql.executor import TBQLExecutor
from .alerts import DEFAULT_ALERT_CAPACITY, Alert, AlertStore
from .batcher import FlushPolicy, StreamBatcher
from .locks import ReadWriteLock
from .rules import RuleRegistry, StandingRule
from .tailer import LogTailer


@dataclass
class FlushReport:
    """What one flush cycle accepted, stored, and detected."""

    #: Raw events consumed by this cycle (before reduction/buffering).
    accepted: int = 0
    #: Events stored into the backends (reduced; excludes open runs).
    stored: int = 0
    #: Flush sequence number after this cycle (0 if nothing stored yet).
    batch_seq: int = 0
    #: Event-time watermark after this cycle (None before any event).
    watermark: Optional[float] = None
    #: Alerts fired by this cycle's rule evaluation.
    alerts: list[Alert] = field(default_factory=list)
    #: Seconds spent evaluating the standing rules this cycle.
    eval_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "accepted": self.accepted,
            "stored": self.stored,
            "batch_seq": self.batch_seq,
            "watermark": self.watermark,
            "eval_seconds": self.eval_seconds,
            "alerts": [alert.as_dict() for alert in self.alerts],
        }


class DetectionEngine:
    """Standing-query detection over a live, incrementally loaded store.

    Args:
        store: a *writable* dual store (fresh, or a snapshot reopened with
            ``DualStore.open(path, read_only=False)``).
        executor: optional shared executor (the HTTP service passes its
            own so rule evaluation warms the same hydration cache).
        policy: time/size flush policy for the internal batcher.
        max_alerts: bounded alert-ring capacity.
        checkpoint_dir: directory for periodic snapshot checkpoints.
        checkpoint_every: checkpoint after this many stored flushes
            (0 disables automatic checkpointing).
        seal_every: on a segmented store: seal the active write segment
            after this many stored flushes (the flush→seal policy; 0
            seals only when a checkpoint snapshot is saved).  Per-request
            ingest seals (``POST /ingest``) flush merge runs but never
            cut segments.  Sealing closes open merge runs, so a sealed
            event can no longer merge with later arrivals — pick a
            cadence coarse enough for your merge threshold.  No effect
            on monolithic stores.
    """

    def __init__(self, store: DualStore,
                 executor: Optional[TBQLExecutor] = None,
                 policy: Optional[FlushPolicy] = None,
                 max_alerts: int = DEFAULT_ALERT_CAPACITY,
                 checkpoint_dir: str | Path | None = None,
                 checkpoint_every: int = 0,
                 seal_every: int = 0) -> None:
        if store.read_only:
            raise StorageError(
                "the detection engine needs a writable store; reopen the "
                "snapshot with DualStore.open(path, read_only=False)")
        self.store = store
        self.executor = executor if executor is not None \
            else TBQLExecutor(store)
        self.rules = RuleRegistry()
        self.alerts = AlertStore(max_alerts)
        self.batcher = StreamBatcher(policy)
        #: Guards the store against concurrent reads during an append.
        self.lock = ReadWriteLock()
        #: Serializes whole flush cycles (multiple producers are allowed).
        self._ingest_lock = threading.RLock()
        self.checkpoint_dir = Path(checkpoint_dir) \
            if checkpoint_dir is not None else None
        self.checkpoint_every = checkpoint_every
        self.seal_every = seal_every
        self._batches_since_checkpoint = 0
        self._flushes_since_seal = 0
        self.seals = 0
        #: Event-time watermark: max end_time accepted so far.
        self.watermark: Optional[float] = None
        #: Max start_time accepted so far — the disorder reference.  (The
        #: watermark cannot be: a long-running event's end_time exceeds
        #: later events' start_times on a perfectly ordered stream.)
        self.max_start_time: Optional[float] = None
        #: Log byte offset covered by the stored data (for checkpoints).
        self.last_offset = 0
        self._pending_offset: Optional[int] = None
        self.batch_seq = 0
        self.events_seen = 0
        self.events_stored = 0
        self.out_of_order = 0
        self.rule_errors = 0
        self.checkpoints = 0
        self.eval_seconds_total = 0.0
        self.last_flush: Optional[FlushReport] = None

    # ------------------------------------------------------------------
    # rule management
    # ------------------------------------------------------------------
    def add_rule(self, text: str, rule_id: Optional[str] = None,
                 high_water_event_id: int = 0) -> StandingRule:
        """Register a standing rule (compiled and validated immediately).

        A new rule's high-water mark defaults to 0, so its first
        evaluation retro-hunts the whole stored history — registering a
        hunt immediately surfaces past matches, then fires incrementally.
        """
        return self.rules.add(text, rule_id=rule_id,
                              high_water_event_id=high_water_event_id)

    def remove_rule(self, rule_id: str) -> StandingRule:
        """Deregister a rule; raises :class:`StreamingError` if unknown."""
        return self.rules.remove(rule_id)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def submit(self, events: Iterable[SystemEvent],
               offset: Optional[int] = None) -> Optional[FlushReport]:
        """Buffer events; flush when the policy's triggers fire.

        Returns the flush report when a flush happened, else ``None``.
        ``offset`` records the log byte offset these events came from, so
        checkpoints resume the tailer correctly.
        """
        with self._ingest_lock:
            self.batcher.add(events)
            if offset is not None:
                self._pending_offset = offset
            if not self.batcher.should_flush:
                return None
            return self.flush()

    def flush(self) -> FlushReport:
        """Force a flush of the buffered events (store + evaluate)."""
        with self._ingest_lock:
            report = self._apply(self.batcher.drain(), seal=False)
            self._maybe_checkpoint()
            return report

    def process_batch(self, events: Iterable[SystemEvent],
                      offset: Optional[int] = None,
                      seal: bool = False) -> FlushReport:
        """Store one explicit batch and evaluate rules (bypasses policy).

        With ``seal=True`` the batch's open merge runs are flushed too, so
        every event of this batch is queryable (and detectable) before the
        report is built — the right semantics for request/response ingest
        (``POST /ingest``), where no later event may ever arrive to close
        a run.  Leave it ``False`` for contiguous stream chunks where
        cross-batch merging should continue.
        """
        with self._ingest_lock:
            batch = self.batcher.drain()
            batch.extend(events)
            if offset is not None:
                self._pending_offset = offset
            report = self._apply(batch, seal=seal)
            self._maybe_checkpoint()
            return report

    def finalize(self) -> FlushReport:
        """End of stream: flush buffers, seal open merge runs, evaluate.

        Also writes a final checkpoint when a checkpoint directory is
        configured.
        """
        with self._ingest_lock:
            report = self._apply(self.batcher.drain(), seal=True)
            if self.checkpoint_dir is not None:
                self.checkpoint()
            return report

    # ------------------------------------------------------------------
    # flush core
    # ------------------------------------------------------------------
    def _apply(self, events: list[SystemEvent], seal: bool) -> FlushReport:
        report = FlushReport(accepted=len(events), batch_seq=self.batch_seq,
                             watermark=self.watermark)
        watermark = self.watermark
        if events:
            self.events_seen += len(events)
            max_start = self.max_start_time
            if max_start is not None:
                self.out_of_order += sum(
                    1 for event in events if event.start_time < max_start)
            batch_max_start = max(event.start_time for event in events)
            self.max_start_time = batch_max_start if max_start is None \
                else max(max_start, batch_max_start)
            batch_max = max(event.end_time for event in events)
            watermark = batch_max if watermark is None \
                else max(watermark, batch_max)
            self.watermark = watermark
            report.watermark = watermark
        stored = 0
        flush_start = time.perf_counter()
        if events or seal:
            with self.lock.write_lock():
                if events:
                    stored += int(self.store.append_events(events))
                    self._flushes_since_seal += 1
                # Flush→seal policy: periodically close the active write
                # segment so segmented stores keep gaining prunable,
                # parallel-scannable history.  A per-request ``seal``
                # (POST /ingest) only flushes the open merge runs — it
                # must NOT cut one tiny segment per HTTP request; actual
                # segment seals happen here and at checkpoint saves.
                seal_segment = self.seal_every > 0 and \
                    self._flushes_since_seal >= self.seal_every
                if seal or seal_segment:
                    stored += int(self.store.flush_appends(
                        seal_segment=seal_segment))
                    if seal_segment:
                        self._flushes_since_seal = 0
                        self.seals += 1
        if self._pending_offset is not None:
            self.last_offset = self._pending_offset
            self._pending_offset = None
        if stored:
            self.batch_seq += 1
            self._batches_since_checkpoint += 1
            self.events_stored += stored
            report.batch_seq = self.batch_seq
            report.stored = stored
            eval_start = time.perf_counter()
            report.alerts = self._evaluate_rules()
            report.eval_seconds = time.perf_counter() - eval_start
            self.eval_seconds_total += report.eval_seconds
            get_registry().histogram(
                "repro_flush_seconds",
                "Flush-cycle duration (store append + rule "
                "evaluation), in seconds.",
            ).observe(time.perf_counter() - flush_start)
        if watermark is not None:
            # Event-time lag of the detection watermark behind the wall
            # clock; synthetic replays can legitimately sit far behind.
            get_registry().gauge(
                "repro_watermark_lag_seconds",
                "Wall-clock seconds the event-time watermark trails "
                "behind now.",
            ).set(max(0.0, time.time() - watermark))
        self.last_flush = report
        return report

    def _evaluate_rules(self) -> list[Alert]:
        """Run every standing rule; returns the alerts this delta fired."""
        rules = self.rules.list()
        if not rules:
            return []
        fired: list[Alert] = []
        watermark = self.watermark
        max_event_id = self.store.max_event_id
        data_version = self.store.data_version
        registry = get_registry()
        eval_counter = registry.counter(
            "repro_rule_evaluations_total",
            "Standing-rule evaluations, per rule.", labels=("rule",))
        error_counter = registry.counter(
            "repro_rule_errors_total",
            "Standing-rule evaluations that raised, per rule.",
            labels=("rule",))
        alert_counter = registry.counter(
            "repro_rule_alerts_total",
            "Alerts fired by standing rules, per rule.",
            labels=("rule",))
        with self.lock.read_lock():
            for rule in rules:
                try:
                    result = self.executor.execute(rule.resolve(watermark))
                except ReproError as exc:
                    rule.last_error = str(exc)
                    self.rule_errors += 1
                    error_counter.labels(rule.rule_id).inc()
                    continue
                rule.last_error = None
                rule.evaluations += 1
                eval_counter.labels(rule.rule_id).inc()
                high_water = rule.high_water_event_id
                # A standing rule fires only on *complete* matches: an
                # event satisfying one pattern of a multi-pattern rule is
                # not a detection until the join closes, so firing keys on
                # the join-participating events, and only when the delta
                # contributed at least one of them.
                new_ids = sorted({
                    event_id for event in result.joined_events
                    for event_id in event["event_ids"]
                    if event_id > high_water})
                rule.high_water_event_id = max_event_id
                if not new_ids:
                    continue
                alert = self.alerts.fire(
                    rule_id=rule.rule_id, query=rule.text,
                    batch_seq=self.batch_seq, data_version=data_version,
                    watermark=watermark if watermark is not None else 0.0,
                    new_event_ids=new_ids,
                    matched_events=result.joined_events,
                    rows=result.rows)
                if alert is not None:
                    rule.alerts_fired += 1
                    alert_counter.labels(rule.rule_id).inc()
                    fired.append(alert)
        return fired

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str | Path | None = None) -> dict:
        """Persist the store + stream state for restart-resume.

        Drains and seals any buffered data first (so the saved snapshot
        and the recorded log offset agree), snapshots the dual store, and
        writes ``stream_state.json`` next to the snapshot manifest.

        The write is *atomic at the directory level*: the new checkpoint
        is built in a ``<dir>.tmp`` sibling and swapped into place via
        renames (previous checkpoint briefly parked at ``<dir>.old``), so
        a crash mid-checkpoint never destroys the last good recovery
        point — :func:`~repro.streaming.checkpoint.resume_engine` knows to
        fall back to ``<dir>.old`` if the swap was interrupted.  Returns
        the stream state written.
        """
        from .checkpoint import write_stream_state
        target = Path(directory) if directory is not None \
            else self.checkpoint_dir
        if target is None:
            raise StreamingError(
                "no checkpoint directory configured for this engine")
        staging = target.with_name(target.name + ".tmp")
        parked = target.with_name(target.name + ".old")
        with self._ingest_lock:
            pending = self.batcher.drain()
            if pending or self.store.pending_appends:
                self._apply(pending, seal=True)
            if staging.exists():
                shutil.rmtree(staging)
            with self.lock.read_lock():
                self.store.save(staging)
            state = write_stream_state(staging, self)
            if parked.exists():
                shutil.rmtree(parked)
            if target.exists():
                os.replace(target, parked)
            os.replace(staging, target)
            shutil.rmtree(parked, ignore_errors=True)
            self._batches_since_checkpoint = 0
            self.checkpoints += 1
            return state

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_dir is None or self.checkpoint_every <= 0:
            return
        if self._batches_since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    # ------------------------------------------------------------------
    # log following
    # ------------------------------------------------------------------
    def follow(self, tailer: LogTailer, poll_interval: float = 0.5,
               once: bool = False,
               stop_event: Optional[threading.Event] = None,
               on_flush: Optional[Callable[[FlushReport], None]] = None
               ) -> int:
        """Follow a growing audit log, flushing per policy; returns stored.

        ``once=True`` drains the file to its current end, finalizes
        (sealing open merge runs and checkpointing), and returns — the
        batch-catchup mode ``repro tail --once`` uses.  Otherwise the loop
        runs until ``stop_event`` is set.
        """
        stored = 0

        def deliver(report: Optional[FlushReport]) -> None:
            nonlocal stored
            if report is None:
                return
            stored += report.stored
            if on_flush is not None and (report.accepted or report.stored
                                         or report.alerts):
                on_flush(report)

        while stop_event is None or not stop_event.is_set():
            events = tailer.poll_events()
            if events:
                deliver(self.submit(events, offset=tailer.offset))
                continue
            if once:
                deliver(self.finalize())
                break
            if self.batcher.should_flush:
                deliver(self.flush())
            time.sleep(poll_interval)
        return stored

    def ingest_log_text(self, log_text: str, seal: bool = True
                        ) -> tuple[FlushReport, "ParseReport"]:
        """Parse audit log text and process it as one (sealed) batch.

        Returns the flush report *and* the parse report, so callers (the
        ``POST /ingest`` endpoint) can surface skipped/malformed record
        counts — tolerant parsing must not mean silent data loss.
        """
        parser = AuditLogParser()
        events = list(parser.iter_events(log_text.splitlines()))
        return self.process_batch(events, seal=seal), parser.last_report

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counters the service exposes under ``GET /stats``."""
        return {
            "rules": len(self.rules),
            "alerts": self.alerts.counters(),
            "seals": self.seals,
            "seal_every": self.seal_every,
            "sealed_segments":
                self.store.segment_stats()["sealed_segments"],
            "batches": self.batch_seq,
            "events_seen": self.events_seen,
            "events_stored": self.events_stored,
            "out_of_order": self.out_of_order,
            "rule_errors": self.rule_errors,
            "checkpoints": self.checkpoints,
            "watermark": self.watermark,
            "max_start_time": self.max_start_time,
            "pending_buffered": len(self.batcher),
            "pending_runs": self.store.pending_appends,
            "last_offset": self.last_offset,
            "eval_seconds_total": self.eval_seconds_total,
        }


__all__ = ["DetectionEngine", "FlushReport"]
