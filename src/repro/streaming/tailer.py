"""Following a growing audit log file (``tail -f`` for record lines).

The :class:`LogTailer` reads whatever complete record lines have been
appended to an audit log since the last poll and parses them into system
events with the tolerant :class:`~repro.audit.parser.AuditLogParser`.  Its
byte ``offset`` only ever advances past *complete* lines (a partial line
still being written is left for the next poll), which makes the offset a
safe resume point for checkpointing: restart the tailer at the recorded
offset and no record is lost or read twice.

Rotation/truncation is handled the way classic tailers do: when the file
shrinks below the current offset, reading restarts from the beginning of
the (new) file.
"""

from __future__ import annotations

from pathlib import Path

from ..audit.entities import SystemEvent
from ..audit.parser import AuditLogParser, ParseReport

#: Bytes read per poll.  Bounds memory when catching up on a large
#: backlog: one poll hands back at most roughly this much data and the
#: next poll continues from the new offset (the follow loop polls again
#: immediately while data keeps coming).
DEFAULT_MAX_POLL_BYTES = 4 * 1024 * 1024


class LogTailer:
    """Incrementally reads an audit log file that may still be growing.

    Args:
        path: the log file to follow; it may not exist yet (polls return
            nothing until it does).
        offset: byte offset to resume from (e.g. from a checkpoint).
        strict: raise on malformed records instead of skipping them.
        max_poll_bytes: backlog bytes consumed per poll (memory bound).
    """

    def __init__(self, path: str | Path, offset: int = 0,
                 strict: bool = False,
                 max_poll_bytes: int = DEFAULT_MAX_POLL_BYTES) -> None:
        if max_poll_bytes <= 0:
            raise ValueError("max_poll_bytes must be positive")
        self.path = Path(path)
        self.offset = int(offset)
        self.max_poll_bytes = max_poll_bytes
        self._parser = AuditLogParser(strict=strict)
        self.truncations = 0

    @property
    def last_report(self) -> ParseReport:
        """Parse statistics of the most recent :meth:`poll_events` call."""
        return self._parser.last_report

    def poll_lines(self) -> list[str]:
        """Return (up to ~``max_poll_bytes`` of) newly appended lines.

        A poll never consumes a partial trailing line, and never reads
        much more than the configured bound — callers drain a large
        backlog with repeated polls instead of one unbounded read.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self.offset:
            # The file was truncated or rotated in place; start over.
            self.offset = 0
            self.truncations += 1
        if size == self.offset:
            return []
        blocks: list[bytes] = []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            # Read one bounded block; keep reading only while no line
            # terminator has appeared yet (a single record longer than the
            # bound — pathological for audit logs — must not stall).
            while True:
                block = handle.read(self.max_poll_bytes)
                if not block:
                    break
                blocks.append(block)
                if b"\n" in block:
                    break
        data = b"".join(blocks)
        cut = data.rfind(b"\n")
        if cut < 0:
            return []       # only a partial line so far; wait for more
        chunk = data[:cut + 1]
        self.offset += len(chunk)
        return chunk.decode("utf-8", errors="replace").splitlines()

    def poll_events(self) -> list[SystemEvent]:
        """Parse the newly appended lines into system events.

        Malformed records are counted in :attr:`last_report` and skipped
        (unless the tailer was built ``strict=True``).
        """
        lines = self.poll_lines()
        if not lines:
            return []
        return list(self._parser.iter_events(lines))


__all__ = ["LogTailer", "DEFAULT_MAX_POLL_BYTES"]
