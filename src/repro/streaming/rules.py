"""Standing TBQL rules: hunts registered once, evaluated on every flush.

A *standing rule* is a TBQL query compiled at registration time (lexer,
parser, and — for time-independent queries — semantic resolution run once,
exactly like the query service's compiled-plan cache) and then evaluated
incrementally by the detection engine whenever a flush stores new events.
Time-dependent rules (``last N`` windows) are re-resolved per evaluation
against the engine's event-time *watermark*, so a rule like ``last 5 min``
means "the last five minutes of event time", independent of how far behind
the wall clock the stream is running.

Each rule carries a *high-water event id*: the highest stored event id the
rule has already been evaluated over.  Matches whose events all lie at or
below the mark were either alerted on before or predate the rule, which is
what makes standing rules fire exactly once per matching delta.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from ..errors import StreamingError, TBQLError
from ..tbql.ast import TBQLQuery
from ..tbql.parser import parse_tbql
from ..tbql.semantics import (ResolvedQuery, query_is_time_dependent,
                              resolve_query)

#: File suffix rule files use inside a rules directory.
RULE_FILE_SUFFIX = ".tbql"


@dataclass
class StandingRule:
    """One registered detection rule and its incremental-evaluation state."""

    rule_id: str
    text: str
    time_dependent: bool
    parsed: TBQLQuery = field(repr=False)
    #: Fully resolved form, pre-computed for time-independent rules;
    #: ``None`` means "re-resolve against the watermark per evaluation".
    resolved: Optional[ResolvedQuery] = field(default=None, repr=False)
    created_at: float = field(default_factory=time.time)
    #: Highest stored event id this rule has been evaluated over.
    high_water_event_id: int = 0
    evaluations: int = 0
    alerts_fired: int = 0
    last_error: Optional[str] = None

    def resolve(self, watermark: Optional[float]) -> ResolvedQuery:
        """The executable plan, resolved against event time when needed."""
        if self.resolved is not None:
            return self.resolved
        return resolve_query(self.parsed, now=watermark)

    def as_dict(self) -> dict:
        """JSON-ready view served by ``GET /rules`` and ``repro rules``."""
        return {
            "id": self.rule_id,
            "tbql": self.text,
            "time_dependent": self.time_dependent,
            "patterns": len(self.parsed.patterns),
            "created_at": self.created_at,
            "high_water_event_id": self.high_water_event_id,
            "evaluations": self.evaluations,
            "alerts_fired": self.alerts_fired,
            "last_error": self.last_error,
        }


def compile_rule(text: str, rule_id: str,
                 high_water_event_id: int = 0) -> StandingRule:
    """Parse and validate TBQL text into a :class:`StandingRule`.

    Compilation errors (syntax or semantics) surface immediately — a rule
    that cannot execute is rejected at registration, not at its first
    flush.  Time-dependent rules are resolved once here purely for
    validation; their per-evaluation resolution happens against the
    watermark.
    """
    parsed = parse_tbql(text)
    time_dependent = query_is_time_dependent(parsed)
    resolved = resolve_query(parsed)
    return StandingRule(
        rule_id=rule_id, text=text, time_dependent=time_dependent,
        parsed=parsed, resolved=None if time_dependent else resolved,
        high_water_event_id=high_water_event_id)


class RuleRegistry:
    """Thread-safe collection of standing rules, keyed by rule id."""

    def __init__(self) -> None:
        self._rules: dict[str, StandingRule] = {}
        self._lock = threading.Lock()
        self._auto_counter = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._rules)

    def __iter__(self) -> Iterator[StandingRule]:
        return iter(self.list())

    def list(self) -> list[StandingRule]:
        """Snapshot of the registered rules, in registration order."""
        with self._lock:
            return list(self._rules.values())

    def get(self, rule_id: str) -> Optional[StandingRule]:
        with self._lock:
            return self._rules.get(rule_id)

    def add(self, text: str, rule_id: Optional[str] = None,
            high_water_event_id: int = 0) -> StandingRule:
        """Compile and register a rule; returns it.

        Raises:
            StreamingError: when ``rule_id`` is already registered.
            TBQLError: when the text fails to compile.
        """
        with self._lock:
            if rule_id is None:
                self._auto_counter += 1
                while f"rule-{self._auto_counter}" in self._rules:
                    self._auto_counter += 1
                rule_id = f"rule-{self._auto_counter}"
            elif rule_id in self._rules:
                raise StreamingError(
                    f"rule id {rule_id!r} is already registered "
                    f"(remove it first to replace)")
        return self.add_compiled(compile_rule(
            text, rule_id, high_water_event_id=high_water_event_id))

    def add_compiled(self, rule: StandingRule) -> StandingRule:
        """Register an already-compiled rule (no recompilation); returns it.

        Raises:
            StreamingError: when the rule's id is already registered.
        """
        with self._lock:
            if rule.rule_id in self._rules:
                raise StreamingError(
                    f"rule id {rule.rule_id!r} is already registered "
                    f"(remove it first to replace)")
            self._rules[rule.rule_id] = rule
        return rule

    def remove(self, rule_id: str) -> StandingRule:
        """Deregister and return a rule.

        Raises:
            StreamingError: when the id is unknown.
        """
        with self._lock:
            rule = self._rules.pop(rule_id, None)
        if rule is None:
            raise StreamingError(f"unknown rule id: {rule_id!r}",
                                 status=404)
        return rule


def load_rules_directory(directory: str | Path
                         ) -> list[tuple[str, str, Optional[StandingRule],
                                         Optional[TBQLError]]]:
    """Read every ``*.tbql`` file in a directory as a candidate rule.

    Returns ``(rule_id, text, rule, error)`` tuples in filename order —
    the rule id is the file stem, ``rule`` is the compiled
    :class:`StandingRule` (compiled exactly once; register it via
    :meth:`RuleRegistry.add_compiled`) and ``error`` the compilation
    failure; exactly one of the two is ``None``.  Callers decide whether
    invalid rules are fatal (``repro rules``) or skipped with a warning
    (``repro tail``).
    """
    rules_dir = Path(directory)
    if not rules_dir.is_dir():
        raise StreamingError(f"rules directory not found: {rules_dir}")
    entries: list[tuple[str, str, Optional[StandingRule],
                        Optional[TBQLError]]] = []
    for path in sorted(rules_dir.glob(f"*{RULE_FILE_SUFFIX}")):
        text = path.read_text(encoding="utf-8").strip()
        rule: Optional[StandingRule] = None
        error: Optional[TBQLError] = None
        try:
            rule = compile_rule(text, path.stem)
        except TBQLError as exc:
            error = exc
        entries.append((path.stem, text, rule, error))
    return entries


__all__ = ["StandingRule", "RuleRegistry", "compile_rule",
           "load_rules_directory", "RULE_FILE_SUFFIX"]
