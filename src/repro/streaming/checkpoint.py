"""Checkpoint persistence for the streaming detection engine.

A checkpoint directory is a regular dual-store snapshot (see
:meth:`repro.storage.DualStore.save`) plus one extra file,
``stream_state.json``, recording where the stream stood when the snapshot
was taken:

* the **log byte offset** the tailer had fully consumed — resuming a
  tailer there replays nothing and loses nothing;
* the **event-time watermark** and **flush sequence number**;
* every standing rule's text and **high-water event id**, so a resumed
  engine keeps firing exactly once (history below the mark predates the
  checkpoint and has already been evaluated).

Alerts themselves are *not* checkpointed: the alert ring is bounded,
observable state, and the high-water marks alone guarantee a resumed
engine does not re-fire for pre-checkpoint events.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import StreamingError
from ..storage.dualstore import DualStore

if TYPE_CHECKING:    # pragma: no cover - import cycle guard
    from .engine import DetectionEngine

#: Stream-state file name inside a checkpoint directory.
STREAM_STATE_FILE = "stream_state.json"
#: Version of the stream-state schema.
STREAM_STATE_VERSION = 1


def write_stream_state(directory: str | Path,
                       engine: "DetectionEngine") -> dict[str, Any]:
    """Write ``stream_state.json`` for ``engine``; returns the state."""
    target = Path(directory)
    state: dict[str, Any] = {
        "format_version": STREAM_STATE_VERSION,
        "log_offset": engine.last_offset,
        "batch_seq": engine.batch_seq,
        "watermark": engine.watermark,
        "max_start_time": engine.max_start_time,
        "events_seen": engine.events_seen,
        "events_stored": engine.events_stored,
        "rules": [
            {
                "id": rule.rule_id,
                "tbql": rule.text,
                "high_water_event_id": rule.high_water_event_id,
            }
            for rule in engine.rules.list()
        ],
    }
    (target / STREAM_STATE_FILE).write_text(
        json.dumps(state, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return state


def read_stream_state(directory: str | Path) -> dict[str, Any]:
    """Load and validate ``stream_state.json`` from a checkpoint.

    Raises:
        StreamingError: when the file is missing, corrupt, or written by a
            newer schema version.
    """
    state_path = Path(directory) / STREAM_STATE_FILE
    if not state_path.is_file():
        raise StreamingError(
            f"not a streaming checkpoint (no {STREAM_STATE_FILE}): "
            f"{Path(directory)}")
    try:
        state = json.loads(state_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StreamingError(
            f"corrupt stream state: {state_path}") from exc
    version = state.get("format_version")
    if not isinstance(version, int) or version < 1 or \
            version > STREAM_STATE_VERSION:
        raise StreamingError(
            f"unsupported stream-state version {version!r} "
            f"(this build reads <= {STREAM_STATE_VERSION})")
    return state


def _recover_interrupted_swap(directory: Path) -> None:
    """Finish a checkpoint swap a crash interrupted.

    The engine writes checkpoints atomically: build in ``<dir>.tmp``, park
    the previous checkpoint at ``<dir>.old``, rename the new one into
    place.  A crash between the two renames leaves no ``<dir>`` — recover
    the *newest* complete checkpoint: ``<dir>.tmp`` if its build finished
    (its stream state is written last, so a readable state file means the
    staging dir is whole — resuming there avoids re-ingesting and
    re-alerting the last inter-checkpoint window), else ``<dir>.old``.
    """
    if directory.exists():
        return
    staging = directory.with_name(directory.name + ".tmp")
    parked = directory.with_name(directory.name + ".old")
    for candidate in (staging, parked):
        if (candidate / STREAM_STATE_FILE).is_file():
            os.replace(candidate, directory)
            return


def has_checkpoint(directory: str | Path) -> bool:
    """True when ``directory`` holds a resumable streaming checkpoint.

    Also completes a crash-interrupted checkpoint swap (restoring the
    parked previous checkpoint) before answering.
    """
    target = Path(directory)
    _recover_interrupted_swap(target)
    return (target / STREAM_STATE_FILE).is_file()


def resume_engine(directory: str | Path,
                  relational_path: str | Path | None = None,
                  **engine_kwargs: Any) -> "DetectionEngine":
    """Rebuild a :class:`DetectionEngine` from a checkpoint directory.

    The dual store reopens *writable* (the snapshot directory itself stays
    untouched; see ``DualStore.open(..., read_only=False)``), the rules are
    re-registered with their saved high-water marks, and the engine's
    offset/watermark/sequence counters resume.  Extra keyword arguments are
    forwarded to the engine constructor; ``checkpoint_dir`` defaults to the
    checkpoint being resumed.
    """
    from .engine import DetectionEngine
    _recover_interrupted_swap(Path(directory))
    state = read_stream_state(directory)
    store = DualStore.open(directory, read_only=False,
                           relational_path=relational_path)
    engine_kwargs.setdefault("checkpoint_dir", directory)
    engine = DetectionEngine(store, **engine_kwargs)
    engine.last_offset = int(state.get("log_offset", 0))
    engine.batch_seq = int(state.get("batch_seq", 0))
    engine.events_seen = int(state.get("events_seen", 0))
    engine.events_stored = int(state.get("events_stored", 0))
    watermark = state.get("watermark")
    engine.watermark = float(watermark) if watermark is not None else None
    max_start = state.get("max_start_time")
    engine.max_start_time = float(max_start) if max_start is not None \
        else None
    for entry in state.get("rules", []):
        engine.rules.add(entry["tbql"], rule_id=entry["id"],
                         high_water_event_id=int(
                             entry.get("high_water_event_id", 0)))
    return engine


__all__ = ["STREAM_STATE_FILE", "STREAM_STATE_VERSION",
           "write_stream_state", "read_stream_state", "has_checkpoint",
           "resume_engine"]
