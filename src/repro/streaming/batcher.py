"""Batching of a live event stream with time/size flush policies.

Appending to the dual store costs a fixed overhead per batch (statement
preparation, commit, cache invalidation), so the engine buffers incoming
events and flushes either when enough have accumulated (*size* policy) or
when the oldest buffered event has waited long enough (*time* policy) —
whichever comes first.  Both knobs live in :class:`FlushPolicy`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from operator import attrgetter
from typing import Callable, Iterable

from ..audit.entities import SystemEvent

#: Buffered events that force a flush (size policy default).
DEFAULT_MAX_EVENTS = 2000
#: Seconds the oldest buffered event may wait (time policy default).
DEFAULT_MAX_SECONDS = 1.0


@dataclass(frozen=True)
class FlushPolicy:
    """When the batcher hands its buffer to the store.

    ``max_events <= 0`` disables the size trigger; ``max_seconds <= 0``
    makes every non-empty buffer immediately due (flush per poll).
    """

    max_events: int = DEFAULT_MAX_EVENTS
    max_seconds: float = DEFAULT_MAX_SECONDS


class StreamBatcher:
    """Buffers live events until the flush policy says to store them.

    Not thread-safe on its own; the detection engine serializes access
    through its ingest lock.
    """

    def __init__(self, policy: FlushPolicy | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or FlushPolicy()
        self._clock = clock
        self._buffer: list[SystemEvent] = []
        self._oldest_at: float | None = None

    def __len__(self) -> int:
        return len(self._buffer)

    def add(self, events: Iterable[SystemEvent]) -> int:
        """Buffer events; returns the new buffer size."""
        before = len(self._buffer)
        self._buffer.extend(events)
        if self._oldest_at is None and len(self._buffer) > before:
            self._oldest_at = self._clock()
        return len(self._buffer)

    @property
    def should_flush(self) -> bool:
        """True when either flush trigger has fired."""
        if not self._buffer:
            return False
        policy = self.policy
        if 0 < policy.max_events <= len(self._buffer):
            return True
        if policy.max_seconds <= 0:
            return True
        assert self._oldest_at is not None
        return self._clock() - self._oldest_at >= policy.max_seconds

    def drain(self) -> list[SystemEvent]:
        """Hand over the buffered events, sorted by event time.

        Sorting here keeps each stored batch in ``(start_time, event_id)``
        order — the order the store's reduction pass expects — even when
        polls interleave events from multiple sources.
        """
        drained = self._buffer
        self._buffer = []
        self._oldest_at = None
        drained.sort(key=attrgetter("start_time", "event_id"))
        return drained


__all__ = ["FlushPolicy", "StreamBatcher", "DEFAULT_MAX_EVENTS",
           "DEFAULT_MAX_SECONDS"]
