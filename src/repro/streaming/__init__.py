"""Live streaming ingestion and standing-query detection.

This subsystem turns the batch hunting pipeline into a continuous one:

* :class:`LogTailer` follows a growing audit log file;
* :class:`StreamBatcher` + :class:`FlushPolicy` batch the stream with
  time/size flush triggers;
* :meth:`~repro.storage.DualStore.append_events` lands each flush in both
  storage backends incrementally (no rebuild);
* :class:`DetectionEngine` evaluates registered :class:`StandingRule` TBQL
  hunts against every delta — with event-time watermarks for ``last N``
  windows — and emits deduplicated :class:`Alert` records into a bounded
  :class:`AlertStore`;
* :mod:`~repro.streaming.checkpoint` persists snapshot + stream state so a
  restarted service resumes from the last checkpoint and log offset.
"""

from .alerts import DEFAULT_ALERT_CAPACITY, Alert, AlertStore
from .batcher import FlushPolicy, StreamBatcher
from .checkpoint import (STREAM_STATE_FILE, has_checkpoint,
                         read_stream_state, resume_engine,
                         write_stream_state)
from .engine import DetectionEngine, FlushReport
from .locks import ReadWriteLock
from .rules import (RULE_FILE_SUFFIX, RuleRegistry, StandingRule,
                    compile_rule, load_rules_directory)
from .tailer import LogTailer

__all__ = [
    "Alert",
    "AlertStore",
    "DEFAULT_ALERT_CAPACITY",
    "FlushPolicy",
    "StreamBatcher",
    "STREAM_STATE_FILE",
    "has_checkpoint",
    "read_stream_state",
    "resume_engine",
    "write_stream_state",
    "DetectionEngine",
    "FlushReport",
    "ReadWriteLock",
    "RULE_FILE_SUFFIX",
    "RuleRegistry",
    "StandingRule",
    "compile_rule",
    "load_rules_directory",
    "LogTailer",
]
