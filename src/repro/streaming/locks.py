"""Single-writer / multi-reader lock for the live detection engine.

The streaming subsystem mutates a store other threads are querying: one
ingest thread appends batches while HTTP request handlers (and the rule
evaluator) read.  SQLite's WAL mode already isolates the relational
readers, but the in-memory property graph has no such machinery — so the
engine serializes writers against *all* readers with this lock while
letting any number of readers proceed together.

Writer preference: once a writer is waiting, new readers queue behind it,
so a steady query load cannot starve ingestion.  The lock is not
reentrant — neither side may acquire it again while holding it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """A shared/exclusive lock with writer preference."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def read_lock(self) -> Iterator[None]:
        """Hold the lock in shared (reader) mode for the ``with`` body."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_lock(self) -> Iterator[None]:
        """Hold the lock in exclusive (writer) mode for the ``with`` body."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


__all__ = ["ReadWriteLock"]
