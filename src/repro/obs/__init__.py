"""Zero-dependency observability: metrics registry and span tracing.

``repro.obs.metrics`` holds a thread-safe registry of counters, gauges
and fixed-bucket histograms rendered in the Prometheus text exposition
format (served at ``GET /metrics`` on both server backends).

``repro.obs.trace`` records lightweight span trees across the query
pipeline — parse, plan, per-segment scan, join, aggregation, hydration —
including spans attached by multiprocessing scatter workers.  Tracing is
inert unless a trace root is active, and the whole subsystem can be
switched off with ``REPRO_OBS=0``.
"""

from __future__ import annotations

from .metrics import (
    METRICS_CONTENT_TYPE,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .trace import (
    Span,
    current_span,
    enabled,
    render_span_tree,
    set_enabled,
    start_span,
    start_trace,
    wrap,
)

__all__ = [
    "METRICS_CONTENT_TYPE",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "Span",
    "current_span",
    "enabled",
    "render_span_tree",
    "set_enabled",
    "start_span",
    "start_trace",
    "wrap",
]
