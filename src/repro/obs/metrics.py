"""Thread-safe metrics registry with Prometheus text exposition.

The registry understands three instrument kinds — monotonically
increasing counters, settable gauges, and fixed-bucket histograms — each
optionally labelled.  Registration is idempotent: fetching an existing
family with the same kind, help text and label names returns the same
object, so instrumented code can look its handles up lazily at event
time without holding module-level state.

Rendering follows the Prometheus text format, version 0.0.4: one
``# HELP`` / ``# TYPE`` pair per family, cumulative ``_bucket`` series
with an explicit ``+Inf`` bound plus ``_sum`` / ``_count`` for
histograms, and backslash escaping for label values.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Iterator, Sequence, Union

#: Content type for `GET /metrics` responses.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency buckets (seconds), tuned for millisecond-scale
#: queries up to multi-second hunts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (value.replace("\\", "\\\\")
            .replace("\"", "\\\"")
            .replace("\n", "\\n"))


def escape_help(value: str) -> str:
    """Escape a HELP string (backslash and newline only)."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A single (possibly labelled) monotonically increasing series."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A single (possibly labelled) settable series."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A single fixed-bucket histogram series."""

    __slots__ = ("_lock", "_buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock,
                 buckets: tuple[float, ...]) -> None:
        self._lock = lock
        self._buckets = buckets
        self._counts = [0] * len(buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._sum += value
            self._count += 1
            if index < len(self._counts):
                self._counts[index] += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count


Child = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """A named metric with HELP/TYPE metadata and labelled children."""

    def __init__(self, name: str, help_text: str, kind: str,
                 label_names: tuple[str, ...],
                 buckets: tuple[float, ...],
                 lock: threading.Lock) -> None:
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.label_names = label_names
        self.buckets = buckets
        self._lock = lock
        self._children: dict[tuple[str, ...], Child] = {}

    def _make_child(self) -> Child:
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(self._lock, self.buckets)

    def labels(self, *values: str) -> Child:
        """Return the child series for the given label values."""
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects "
                f"{len(self.label_names)} label value(s), got {len(key)}")
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    # Unlabelled convenience pass-throughs -------------------------------
    def _solo(self) -> Child:
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labelled; use .labels(...)")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        child = self._solo()
        if isinstance(child, Histogram):
            raise TypeError("histograms use observe()")
        child.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        child = self._solo()
        if not isinstance(child, Gauge):
            raise TypeError("only gauges can decrease")
        child.dec(amount)

    def set(self, value: float) -> None:
        child = self._solo()
        if not isinstance(child, Gauge):
            raise TypeError("only gauges can be set")
        child.set(value)

    def observe(self, value: float) -> None:
        child = self._solo()
        if not isinstance(child, Histogram):
            raise TypeError("only histograms can observe()")
        child.observe(value)

    # Rendering ----------------------------------------------------------
    def _label_text(self, values: tuple[str, ...],
                    extra: tuple[tuple[str, str], ...] = ()) -> str:
        pairs = [f'{name}="{escape_label_value(value)}"'
                 for name, value in zip(self.label_names, values)]
        pairs.extend(f'{name}="{escape_label_value(value)}"'
                     for name, value in extra)
        if not pairs:
            return ""
        return "{" + ",".join(pairs) + "}"

    def render(self) -> Iterator[str]:
        yield f"# HELP {self.name} {escape_help(self.help_text)}"
        yield f"# TYPE {self.name} {self.kind}"
        with self._lock:
            children = sorted(self._children.items())
        for values, child in children:
            if isinstance(child, Histogram):
                counts, total, count = child.snapshot()
                cumulative = 0
                for bound, bucket in zip(self.buckets, counts):
                    cumulative += bucket
                    labels = self._label_text(
                        values, (("le", format_value(bound)),))
                    yield (f"{self.name}_bucket{labels} "
                           f"{cumulative}")
                labels = self._label_text(values, (("le", "+Inf"),))
                yield f"{self.name}_bucket{labels} {count}"
                labels = self._label_text(values)
                yield f"{self.name}_sum{labels} {format_value(total)}"
                yield f"{self.name}_count{labels} {count}"
            else:
                labels = self._label_text(values)
                yield (f"{self.name}{labels} "
                       f"{format_value(child.value)}")


class MetricsRegistry:
    """Process-wide home for metric families; safe across threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(self, name: str, help_text: str, kind: str,
                  labels: Sequence[str],
                  buckets: tuple[float, ...]) -> MetricFamily:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_NAME.match(label) or label == "le":
                raise ValueError(f"invalid label name: {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (family.kind != kind
                        or family.label_names != label_names):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels "
                        f"{family.label_names}")
                return family
            family = MetricFamily(name, help_text, kind, label_names,
                                  buckets, threading.Lock())
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str,
                labels: Sequence[str] = ()) -> MetricFamily:
        """Get or create a counter family."""
        return self._register(name, help_text, "counter", labels, ())

    def gauge(self, name: str, help_text: str,
              labels: Sequence[str] = ()) -> MetricFamily:
        """Get or create a gauge family."""
        return self._register(name, help_text, "gauge", labels, ())

    def histogram(self, name: str, help_text: str,
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  ) -> MetricFamily:
        """Get or create a fixed-bucket histogram family."""
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b >= c for b, c
                             in zip(bounds, bounds[1:])):
            raise ValueError(
                "histogram buckets must be strictly increasing")
        return self._register(name, help_text, "histogram", labels,
                              bounds)

    def render(self) -> str:
        """Render every family as Prometheus text exposition."""
        with self._lock:
            families = sorted(self._families.values(),
                              key=lambda family: family.name)
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one (tests)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
