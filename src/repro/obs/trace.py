"""Lightweight span trees for per-request profiling.

A trace is opened with :func:`start_trace`; while it is active,
:func:`start_span` attaches timed child spans to the current position
in the tree.  The current span travels in a :mod:`contextvars` variable,
so it survives ``await`` boundaries; :func:`wrap` carries it into
thread-pool workers (``run_in_executor`` does not copy context by
itself).  Multiprocessing scatter workers cannot share the context at
all — they instead return plain span-metadata dicts alongside their
packed payloads, which the gather side grafts into the live tree with
:meth:`Span.attach`.

When no trace is active — the overwhelmingly common case —
:func:`start_span` costs one context-variable read and yields a shared
no-op span.  Setting ``REPRO_OBS=0`` disables tracing entirely;
:func:`set_enabled` toggles it at runtime for overhead benchmarks.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar, copy_context
from typing import Any, Callable, Iterator, Optional, TypeVar

_T = TypeVar("_T")

_enabled = os.environ.get("REPRO_OBS", "1").strip().lower() not in (
    "0", "false", "no", "off")

_current: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_span", default=None)


def enabled() -> bool:
    """True unless tracing was disabled via REPRO_OBS or set_enabled."""
    return _enabled


def set_enabled(on: bool) -> bool:
    """Toggle tracing at runtime; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


class Span:
    """One timed node in a trace tree."""

    __slots__ = ("name", "attributes", "children", "duration_ms",
                 "_start")

    def __init__(self, name: str,
                 attributes: Optional[dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.children: list[Span] = []
        self.duration_ms = 0.0
        self._start = 0.0

    @classmethod
    def completed(cls, name: str, duration_ms: float,
                  attributes: Optional[dict[str, Any]] = None,
                  ) -> "Span":
        """Build an already-finished span (e.g. from worker metadata)."""
        span = cls(name, attributes)
        span.duration_ms = float(duration_ms)
        return span

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def attach(self, name: str, duration_ms: float,
               attributes: Optional[dict[str, Any]] = None) -> None:
        """Graft a completed child span (scatter-worker metadata)."""
        self.children.append(
            Span.completed(name, duration_ms, attributes))

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly tree rendering (profile payloads)."""
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }


class _NullSpan:
    """No-op stand-in yielded when no trace is active."""

    __slots__ = ()

    name = ""
    duration_ms = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def attach(self, name: str, duration_ms: float,
               attributes: Optional[dict[str, Any]] = None) -> None:
        pass


NULL_SPAN = _NullSpan()


def current_span() -> Optional[Span]:
    """The live span at this context position, or None."""
    if not _enabled:
        return None
    return _current.get()


@contextmanager
def start_trace(name: str, **attributes: Any,
                ) -> Iterator[Optional[Span]]:
    """Open a trace root; yields None when tracing is disabled."""
    if not _enabled:
        yield None
        return
    root = Span(name, attributes)
    token = _current.set(root)
    start = time.perf_counter()
    try:
        yield root
    finally:
        root.duration_ms = (time.perf_counter() - start) * 1000.0
        _current.reset(token)


@contextmanager
def start_span(name: str, **attributes: Any) -> Iterator[Any]:
    """Attach a timed child span to the active trace, if any.

    Outside a trace this yields a shared no-op span, so call sites
    never need to guard instrumentation with their own checks.
    """
    parent = _current.get() if _enabled else None
    if parent is None:
        yield NULL_SPAN
        return
    span = Span(name, attributes)
    token = _current.set(span)
    start = time.perf_counter()
    try:
        yield span
    finally:
        span.duration_ms = (time.perf_counter() - start) * 1000.0
        _current.reset(token)
        parent.children.append(span)


def wrap(fn: Callable[..., _T]) -> Callable[..., _T]:
    """Bind the caller's context (incl. active span) into ``fn``.

    Use when handing work to a thread pool: ``executor.submit`` /
    ``run_in_executor`` run the callable in the worker's own context,
    which would silently drop the trace.
    """
    ctx = copy_context()

    def runner(*args: Any, **kwargs: Any) -> _T:
        return ctx.run(fn, *args, **kwargs)

    return runner


def render_span_tree(tree: dict[str, Any]) -> str:
    """Pretty-print an ``as_dict`` span tree for terminal output."""
    lines: list[str] = []

    def walk(node: dict[str, Any], depth: int) -> None:
        attrs = " ".join(f"{key}={value}" for key, value
                         in sorted(node.get("attributes", {}).items()))
        pad = "  " * depth
        line = f"{pad}- {node['name']}  {node['duration_ms']:.3f} ms"
        if attrs:
            line += f"  [{attrs}]"
        lines.append(line)
        for child in node.get("children", ()):
            walk(child, depth + 1)

    walk(tree, 0)
    return "\n".join(lines)
