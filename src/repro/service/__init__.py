"""Serving subsystem: persistent snapshots answered concurrently over HTTP.

``repro snapshot`` persists an ingested dual store once;
``repro serve`` then answers many TBQL hunts against the shared read-only
store — the always-on arrangement the paper's system is built for.
"""

from .cache import LRUCache
from .client import ServiceClient
from .server import (DEFAULT_PLAN_CACHE_SIZE, DEFAULT_RESULT_CACHE_SIZE,
                     QueryService, ServiceRequestHandler, ThreatHuntingServer,
                     query_is_time_dependent, result_payload, serve)

__all__ = [
    "LRUCache",
    "ServiceClient",
    "QueryService",
    "ServiceRequestHandler",
    "ThreatHuntingServer",
    "serve",
    "query_is_time_dependent",
    "result_payload",
    "DEFAULT_PLAN_CACHE_SIZE",
    "DEFAULT_RESULT_CACHE_SIZE",
]
