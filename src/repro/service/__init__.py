"""Serving subsystem: persistent snapshots answered concurrently over HTTP.

``repro snapshot`` persists an ingested dual store once;
``repro serve`` then answers many TBQL hunts against the shared read-only
store — the always-on arrangement the paper's system is built for.  Two
HTTP front ends share one transport-agnostic :class:`QueryService` and
one routing table (:func:`route`): the default asyncio backend
(:class:`AsyncThreatHuntingServer` — keep-alive connections, a bounded
executor pool, admission-queue backpressure) and the legacy
thread-per-connection :class:`ThreatHuntingServer`.
"""

from .aserver import (DEFAULT_EXEC_THREADS, DEFAULT_QUEUE_LIMIT,
                      DEFAULT_READ_TIMEOUT, RETRY_AFTER_SECONDS,
                      AsyncThreatHuntingServer)
from .cache import LRUCache
from .client import ServiceClient
from .loadgen import LoadResult, run_load
from .server import (DEFAULT_MAX_BODY_BYTES, DEFAULT_PLAN_CACHE_SIZE,
                     DEFAULT_RESULT_CACHE_SIZE, QueryService,
                     ServiceRequestHandler, ThreatHuntingServer,
                     canonical_endpoint, observe_request,
                     parse_json_body, query_is_time_dependent,
                     result_payload, route, serve)

__all__ = [
    "canonical_endpoint",
    "observe_request",
    "LRUCache",
    "ServiceClient",
    "QueryService",
    "ServiceRequestHandler",
    "ThreatHuntingServer",
    "AsyncThreatHuntingServer",
    "LoadResult",
    "run_load",
    "serve",
    "route",
    "parse_json_body",
    "query_is_time_dependent",
    "result_payload",
    "DEFAULT_PLAN_CACHE_SIZE",
    "DEFAULT_RESULT_CACHE_SIZE",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_EXEC_THREADS",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_READ_TIMEOUT",
    "RETRY_AFTER_SECONDS",
]
