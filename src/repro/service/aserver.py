"""Asyncio HTTP front end: keep-alive serving with bounded execution.

The default ``repro serve`` backend.  One event loop owns every
connection (``asyncio.start_server``); TBQL execution never runs on the
loop — requests are handed to a bounded ``ThreadPoolExecutor``
(``--exec-threads``), and the loop keeps accepting, parsing, and
answering while the executor works.  Three properties the threaded
backend cannot give:

* **Keep-alive at scale.**  A connection is a coroutine, not an OS
  thread: hundreds of concurrent keep-alive clients cost one loop
  thread plus N executor threads instead of one thread per socket
  (and the GIL convoy that comes with it).
* **Backpressure instead of collapse.**  Admission control bounds the
  work the server will hold: when a lane's queue is full, ``POST
  /query`` / ``POST /hunt`` (and ``POST /ingest`` on its own lane)
  answer ``429`` with a ``Retry-After`` header instead of queueing
  without bound.  Ingest is capped to at most half the executor
  threads, so a chatty ingest client can saturate its lane while
  queries keep completing.
* **Graceful drain.**  ``shutdown()`` stops accepting, lets every
  in-flight request finish (bounded by ``drain_timeout``), then closes
  idle keep-alive connections — no request is dropped mid-execution.

Routing is :func:`repro.service.server.route` — the same table the
threaded backend uses — so both front ends return byte-identical JSON
``result`` payloads.  Request hygiene: bodies beyond ``max_body_bytes``
answer ``413`` unread, malformed JSON answers a structured ``400``, and
a connection that stays silent past ``read_timeout`` (idle keep-alive or
a slow-loris trickle) is closed.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import os
import signal
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _STATUS_REASONS
from typing import Any, Optional, Union
from urllib.parse import urlsplit

from ..obs.metrics import METRICS_CONTENT_TYPE, get_registry
from .server import (DEFAULT_MAX_BODY_BYTES, QueryService, observe_request,
                     parse_json_body, route)

#: Executor threads when ``exec_threads`` is not given: enough to overlap
#: store reads, few enough that the GIL is not thrashed.
DEFAULT_EXEC_THREADS = max(2, min(8, os.cpu_count() or 2))

#: Admitted-but-not-yet-executing requests a lane holds before answering
#: 429 (``repro serve --queue-limit``).
DEFAULT_QUEUE_LIMIT = 64

#: Seconds a connection may stay silent mid-request (and between
#: keep-alive requests) before the server closes it.
DEFAULT_READ_TIMEOUT = 30.0

#: Seconds the ``Retry-After`` header advertises on a 429.
RETRY_AFTER_SECONDS = 1

#: Longest header block accepted (request line + all header lines).
_MAX_HEADER_BYTES = 32 * 1024

#: Largest POST body the loop will JSON-parse inline for the cached-query
#: fast path; bigger bodies always go through the executor.
_INLINE_BODY_LIMIT = 64 * 1024

#: Paths admission control applies to (TBQL execution / NLP extraction /
#: store mutation); everything else — health, stats, rule management —
#: is cheap and always answered.
_QUERY_LANE_PATHS = ("/query", "/hunt")
_INGEST_LANE_PATH = "/ingest"


class _AdmissionLane:
    """Bounded admission for one class of heavy requests.

    ``capacity`` admitted requests may exist at once (executing plus
    queued); beyond that :meth:`try_enter` refuses and the caller answers
    429.  Of the admitted, at most ``exec_slots`` hold an executor
    submission at a time (the semaphore); the rest wait on the loop
    without occupying a thread.  All state is loop-confined — no locks.
    """

    def __init__(self, name: str, exec_slots: int,
                 queue_slots: int) -> None:
        self.name = name
        self.exec_slots = exec_slots
        self.capacity = exec_slots + queue_slots
        self.admitted = 0
        self.rejected = 0
        self.semaphore = asyncio.Semaphore(exec_slots)
        registry = get_registry()
        self._depth_gauge = registry.gauge(
            "repro_lane_admitted",
            "Requests currently admitted (executing plus queued), "
            "per admission lane.",
            labels=("lane",)).labels(name)
        self._rejected_counter = registry.counter(
            "repro_lane_rejected_total",
            "Requests answered 429 because the lane was full.",
            labels=("lane",)).labels(name)

    def try_enter(self) -> bool:
        if self.admitted >= self.capacity:
            self.rejected += 1
            self._rejected_counter.inc()
            return False
        self.admitted += 1
        self._depth_gauge.set(self.admitted)
        return True

    def leave(self) -> None:
        self.admitted -= 1
        self._depth_gauge.set(self.admitted)


class _BadRequest(Exception):
    """Malformed HTTP framing; answered with the given status, then close."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _RawResponse:
    """A pre-encoded, non-JSON response body (the /metrics exposition)."""

    __slots__ = ("data", "content_type")

    def __init__(self, data: bytes, content_type: str) -> None:
        self.data = data
        self.content_type = content_type


class AsyncThreatHuntingServer:
    """Asyncio keep-alive HTTP server over one shared `QueryService`.

    API-compatible with :class:`~repro.service.server.ThreatHuntingServer`
    where the CLI and tests touch it: constructed with ``(address,
    service)``, exposes ``server_address`` immediately (the listening
    socket is bound in the constructor), blocks in ``serve_forever()``,
    and is stopped with ``shutdown()`` (thread-safe) + ``server_close()``.

    Args:
        address: ``(host, port)`` to bind; port 0 picks a free port.
        service: the shared transport-agnostic query service.
        exec_threads: bounded executor pool running TBQL execution off
            the event loop.
        queue_limit: admitted-but-waiting requests per lane before 429.
        max_body_bytes: POST bodies beyond this answer 413 unread.
        read_timeout: seconds of request-side silence before the
            connection is closed.
        drain_timeout: seconds ``shutdown()`` waits for in-flight
            requests before cancelling the stragglers.
        verbose: log each request to stderr.
    """

    def __init__(self, address: tuple[str, int], service: QueryService,
                 exec_threads: int = DEFAULT_EXEC_THREADS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 read_timeout: float = DEFAULT_READ_TIMEOUT,
                 drain_timeout: float = 30.0,
                 verbose: bool = False) -> None:
        if exec_threads < 1:
            raise ValueError("exec_threads must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.service = service
        self.service.server_backend = "asyncio"
        self.exec_threads = exec_threads
        self.queue_limit = queue_limit
        self.max_body_bytes = max_body_bytes
        self.read_timeout = read_timeout
        self.drain_timeout = drain_timeout
        self.verbose = verbose
        # Bind now so server_address is known before serve_forever runs
        # (the threaded backend binds in its constructor too).
        self._socket = socket.create_server(address, backlog=256,
                                            reuse_port=False)
        self.server_address = self._socket.getsockname()
        # Transport counters (loop-confined writes, read-anywhere).
        self.connections_accepted = 0
        self.requests_served = 0
        self.rejected_busy = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lanes: dict[str, _AdmissionLane] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._active_requests = 0
        self._all_idle: Optional[asyncio.Event] = None
        self._draining = False
        self._shutdown_requested = False
        self._stopped = threading.Event()
        self._ready = threading.Event()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the event loop until ``shutdown()`` (or SIGTERM/SIGINT)."""
        try:
            asyncio.run(self._serve())
        finally:
            self._stopped.set()

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the loop is accepting (for serving threads)."""
        return self._ready.wait(timeout)

    def shutdown(self, timeout: float | None = None) -> None:
        """Request a graceful stop and wait for the loop to finish.

        Thread-safe.  The loop closes the listener, drains in-flight
        requests (up to ``drain_timeout``), closes idle keep-alive
        connections, and tears the executor pool down.
        """
        self._shutdown_requested = True
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None \
                and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:   # loop closed between check and call
                pass
        if timeout is None:
            timeout = self.drain_timeout + 10.0
        self._stopped.wait(timeout)

    def shutdown_gracefully(self, drain_timeout: float = 30.0) -> bool:
        """Alias mirroring the threaded backend's drain entry point."""
        self.drain_timeout = drain_timeout
        self.shutdown()
        return self.service.inflight == 0

    def server_close(self) -> None:
        """Release the listening socket and the service's resources."""
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.close()
        except OSError:   # pragma: no cover - already closed by the loop
            pass
        self.service.close()

    # ------------------------------------------------------------------
    # event-loop body
    # ------------------------------------------------------------------
    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._all_idle = asyncio.Event()
        self._all_idle.set()
        ingest_slots = max(1, self.exec_threads // 2)
        self._lanes = {
            "query": _AdmissionLane("query", self.exec_threads,
                                    self.queue_limit),
            "ingest": _AdmissionLane("ingest", ingest_slots,
                                     max(1, self.queue_limit // 2)),
        }
        self._pool = ThreadPoolExecutor(max_workers=self.exec_threads,
                                        thread_name_prefix="repro-exec")
        server = await asyncio.start_server(self._handle_connection,
                                            sock=self._socket,
                                            limit=_MAX_HEADER_BYTES)
        self._install_signal_handlers()
        self._ready.set()
        if self._shutdown_requested:   # shutdown() raced serve_forever()
            self._stop_event.set()
        try:
            await self._stop_event.wait()
        finally:
            await self._drain(server)
            self._pool.shutdown(wait=True)

    def _install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        assert self._loop is not None and self._stop_event is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum,
                                              self._stop_event.set)
            except (NotImplementedError, RuntimeError,
                    ValueError):   # pragma: no cover - non-posix
                return

    async def _drain(self, server: asyncio.AbstractServer) -> None:
        """Graceful stop: close listener, finish requests, drop idlers."""
        self._draining = True
        server.close()
        await server.wait_closed()
        assert self._all_idle is not None
        if self._active_requests:
            try:
                await asyncio.wait_for(self._all_idle.wait(),
                                       self.drain_timeout)
            except asyncio.TimeoutError:   # pragma: no cover - stuck work
                self._log("drain timeout: %d request(s) abandoned"
                          % self._active_requests)
        # Whatever is left is an idle keep-alive reader (or a straggler
        # past the drain timeout): cancel and collect.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections_accepted += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:   # drain: drop the idle reader
            pass
        except (ConnectionError, OSError):  # pragma: no cover - peer reset
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):  # pragma: no cover
                pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                request = await self._read_request(reader)
            except asyncio.TimeoutError:
                return             # idle keep-alive or slow-loris: close
            except _BadRequest as exc:
                await self._respond(writer, exc.status,
                                    {"error": str(exc)}, keep_alive=False)
                return
            except ValueError:     # StreamReader line-limit overrun
                await self._respond(writer, 431,
                                    {"error": "request line or header "
                                              "too large"},
                                    keep_alive=False)
                return
            if request is None:    # clean EOF between requests
                return
            method, target, body_raw, keep_alive = request
            if self._draining:
                await self._respond(writer, 503,
                                    {"error": "server is shutting down"},
                                    keep_alive=False)
                return
            self._request_started()
            try:
                start = time.perf_counter()
                status, payload, extra = await self._dispatch(
                    method, target, body_raw)
                observe_request("asyncio", method, urlsplit(target).path,
                                status, time.perf_counter() - start)
                keep_alive = keep_alive and not self._draining
                # Count before the write: a client that has read the
                # response must observe the bumped counter.
                self.requests_served += 1
                await self._respond(writer, status, payload,
                                    keep_alive=keep_alive, extra=extra)
            finally:
                self._request_finished()
            self._log("%s %s -> %d" % (method, target, status))
            if not keep_alive:
                return

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Optional[tuple[str, str, bytes, bool]]:
        """Parse one request; None on clean EOF before a request line.

        The whole head (request line + headers) is read with a single
        ``readuntil`` — one coroutine round trip instead of one per
        header line, which matters at thousands of requests/sec.  The
        stream's byte limit (``_MAX_HEADER_BYTES``) bounds the head.
        """
        try:
            head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                          self.read_timeout)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _BadRequest(400, "connection closed mid-headers") \
                from None
        except asyncio.LimitOverrunError:
            raise _BadRequest(431, "request header block too large") \
                from None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, version = lines[0].split(" ", 2)
        except ValueError:
            raise _BadRequest(400, "malformed request line") from None
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise _BadRequest(505, f"unsupported protocol: {version}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise _BadRequest(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" if version == "HTTP/1.1" \
            else connection == "keep-alive"
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _BadRequest(411, "chunked request bodies are not "
                                   "supported; send Content-Length")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _BadRequest(400, "invalid Content-Length header") \
                from None
        if length < 0:
            raise _BadRequest(400, "invalid Content-Length header")
        if length > self.max_body_bytes:
            # Reject *unread* — do not buffer an oversized payload.
            raise _BadRequest(413, f"request body of {length} bytes "
                                   f"exceeds the {self.max_body_bytes}-"
                                   f"byte limit")
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(reader.readexactly(length),
                                              self.read_timeout)
            except asyncio.IncompleteReadError:
                raise _BadRequest(400, "connection closed mid-body") \
                    from None
        return method, target, body, keep_alive

    # ------------------------------------------------------------------
    # dispatch (admission control + executor offload)
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, target: str,
                        body_raw: bytes
                        ) -> tuple[int, Union[dict, _RawResponse],
                                   dict[str, str]]:
        path = urlsplit(target).path
        if method == "GET" and path == "/healthz":
            # Liveness must answer even with every executor thread busy.
            return 200, self.service.healthz(), {}
        if method == "GET" and path == "/metrics":
            # Registry rendering never touches the store; answer inline.
            text = self.service.metrics_text()
            return 200, _RawResponse(text.encode("utf-8"),
                                     METRICS_CONTENT_TYPE), {}
        if method == "POST" and path == "/query":
            payload = self._try_inline_cached(body_raw)
            if payload is not None:
                return 200, payload, {}
        lane: Optional[_AdmissionLane] = None
        if method == "POST":
            if path in _QUERY_LANE_PATHS:
                lane = self._lanes["query"]
            elif path == _INGEST_LANE_PATH:
                lane = self._lanes["ingest"]
        if lane is None:
            status, payload = await self._run_routed(method, target,
                                                     body_raw)
            if method == "GET" and path == "/stats" and status == 200:
                payload["server"] = self.stats()
            return status, payload, {}
        if not lane.try_enter():
            self.rejected_busy += 1
            payload = {"error": f"server busy: the {lane.name} admission "
                                f"queue is full, retry later",
                       "queue": lane.name,
                       "retry_after": RETRY_AFTER_SECONDS}
            return 429, payload, {"Retry-After": str(RETRY_AFTER_SECONDS)}
        try:
            async with lane.semaphore:
                status, payload = await self._run_routed(method, target,
                                                         body_raw)
            return status, payload, {}
        finally:
            lane.leave()

    def _try_inline_cached(self, body_raw: bytes) -> Optional[dict]:
        """Serve a ``/query`` result-cache hit directly on the loop.

        A hot cached query is a version-validated dict lookup — nothing
        that can block — so answering it inline skips the admission lane
        and the executor round trip (two thread handoffs per request,
        the dominant cost of serving a hot query).  Returns ``None`` for
        anything that is not a clean cache hit: the request then takes
        the admitted executor path, which also owns all error answers so
        the two paths cannot drift.  Oversized bodies are never parsed
        on the loop.
        """
        if len(body_raw) > _INLINE_BODY_LIMIT:
            return None
        try:
            body = parse_json_body(body_raw)
        except ValueError:
            return None
        text = body.get("tbql")
        if not isinstance(text, str) or not body.get("use_cache", True) \
                or body.get("profile"):
            return None
        return self.service.try_cached_query(text)

    async def _run_routed(self, method: str, target: str,
                          body_raw: bytes) -> tuple[int, dict]:
        """Parse the body and route — on an executor thread, off the loop."""
        assert self._loop is not None and self._pool is not None

        def work() -> tuple[int, dict]:
            body: Optional[dict] = None
            if method == "POST":
                try:
                    body = parse_json_body(body_raw)
                except ValueError as exc:
                    return 400, {"error": str(exc)}
            return route(self.service, method, target, body)

        # run_in_executor does not carry contextvars into the worker
        # thread; copy the loop's context (incl. any active trace span)
        # so instrumentation downstream sees the same request context.
        ctx = contextvars.copy_context()
        return await self._loop.run_in_executor(
            self._pool, lambda: ctx.run(work))

    # ------------------------------------------------------------------
    # response writing & bookkeeping
    # ------------------------------------------------------------------
    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Union[dict, _RawResponse],
                       keep_alive: bool,
                       extra: Optional[dict[str, str]] = None) -> None:
        if isinstance(payload, _RawResponse):
            data = payload.data
            content_type = payload.content_type
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _STATUS_REASONS.get(status, "Unknown")
        headers = [f"HTTP/1.1 {status} {reason}",
                   f"Content-Type: {content_type}",
                   f"Content-Length: {len(data)}",
                   "Connection: %s" % ("keep-alive" if keep_alive
                                       else "close")]
        for name, value in (extra or {}).items():
            headers.append(f"{name}: {value}")
        head = ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1")
        writer.write(head + data)
        try:
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass

    def _request_started(self) -> None:
        self._active_requests += 1
        assert self._all_idle is not None
        self._all_idle.clear()

    def _request_finished(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            assert self._all_idle is not None
            self._all_idle.set()

    def stats(self) -> dict[str, Any]:
        """Transport-level counters (connections, requests, rejections)."""
        lanes = {
            name: {"admitted": lane.admitted, "capacity": lane.capacity,
                   "exec_slots": lane.exec_slots,
                   "rejected": lane.rejected}
            for name, lane in self._lanes.items()
        }
        return {"connections_accepted": self.connections_accepted,
                "requests_served": self.requests_served,
                "rejected_busy": self.rejected_busy,
                "exec_threads": self.exec_threads,
                "queue_limit": self.queue_limit,
                "lanes": lanes}

    def _log(self, message: str) -> None:
        if self.verbose:
            sys.stderr.write("[repro-serve] %s %s\n"
                             % (time.strftime("%H:%M:%S"), message))


__all__ = ["AsyncThreatHuntingServer", "DEFAULT_EXEC_THREADS",
           "DEFAULT_QUEUE_LIMIT", "DEFAULT_READ_TIMEOUT",
           "RETRY_AFTER_SECONDS"]
