"""Bounded thread-safe LRU cache used by the query service.

Two instances back the service: the *compiled-plan cache* (query text ->
parsed/resolved TBQL) and the *result cache* (query text -> response
payload).  Both are small, hot, and shared by every request-handler thread,
so the implementation is a plain ``OrderedDict`` under a lock — no
per-entry timestamps, no background eviction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

#: Internal miss marker, so ``None`` values are cacheable.
_MISSING = object()


class LRUCache:
    """A bounded least-recently-used cache safe for concurrent access.

    ``maxsize <= 0`` disables the cache entirely: every :meth:`get` misses
    and :meth:`put` is a no-op (useful to turn a cache knob off without
    branching at every call site).
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for ``key`` (marking it recently used)."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the least recently used."""
        if self.maxsize <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current occupancy."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


__all__ = ["LRUCache"]
