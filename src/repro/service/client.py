"""Stdlib HTTP client for the ``repro serve`` JSON API.

A thin convenience wrapper over :mod:`urllib.request` — no sessions, no
retries — matching the four endpoints of
:class:`~repro.service.server.ThreatHuntingServer`.  Server-side errors
(HTTP 4xx/5xx with a JSON ``{"error": ...}`` body) and transport failures
both surface as :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import json
from typing import Any
from urllib import error as urllib_error
from urllib import request as urllib_request
from urllib.parse import quote

from ..errors import ServiceError


class ServiceClient:
    """Client for a running threat-hunting query service.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8787"``.
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness probe; returns ``{"status": "ok"}``."""
        return self._get("/healthz")

    def stats(self) -> dict:
        """Service statistics (store counts, caches, request counters)."""
        return self._get("/stats")

    def query(self, tbql: str, use_cache: bool = True) -> dict:
        """Execute TBQL text; returns the full response payload."""
        return self._post("/query", {"tbql": tbql, "use_cache": use_cache})

    def hunt(self, report: str, fuzzy_fallback: bool = False) -> dict:
        """Run the OSCTI pipeline server-side against the served store."""
        return self._post("/hunt", {"report": report,
                                    "fuzzy_fallback": fuzzy_fallback})

    # ------------------------------------------------------------------
    # live streaming endpoints (server must run with an engine attached)
    # ------------------------------------------------------------------
    def ingest(self, log_text: str, seal: bool = True) -> dict:
        """Append audit record lines to the served store (one batch).

        Returns the flush report: stored count, new watermark, and the
        alerts this batch fired.  ``seal=False`` lets event merge runs
        stay open across requests (contiguous chunks of one log).
        """
        return self._post("/ingest", {"log": log_text, "seal": seal})

    def add_rule(self, tbql: str, rule_id: str | None = None) -> dict:
        """Register a standing TBQL detection rule."""
        payload: dict = {"tbql": tbql}
        if rule_id is not None:
            payload["id"] = rule_id
        return self._post("/rules", payload)

    def delete_rule(self, rule_id: str) -> dict:
        """Deregister a standing rule by id."""
        return self._delete(f"/rules/{quote(rule_id, safe='')}")

    def rules(self) -> dict:
        """List the registered standing rules."""
        return self._get("/rules")

    def alerts(self, since_id: int = 0, limit: int | None = None) -> dict:
        """Fetch alerts newer than ``since_id`` (cursor-style polling)."""
        path = f"/alerts?since_id={int(since_id)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        return self._get(path)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _get(self, path: str) -> dict:
        return self._send(urllib_request.Request(self.base_url + path))

    def _delete(self, path: str) -> dict:
        return self._send(urllib_request.Request(self.base_url + path,
                                                 method="DELETE"))

    def _post(self, path: str, payload: dict) -> dict:
        data = json.dumps(payload).encode("utf-8")
        request = urllib_request.Request(
            self.base_url + path, data=data,
            headers={"Content-Type": "application/json"}, method="POST")
        return self._send(request)

    def _send(self, request: urllib_request.Request) -> Any:
        try:
            with urllib_request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib_error.HTTPError as exc:
            detail = self._error_detail(exc)
            raise ServiceError(f"HTTP {exc.code}: {detail}",
                               status=exc.code) from exc
        except urllib_error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: "
                f"{exc.reason}") from exc

    @staticmethod
    def _error_detail(exc: urllib_error.HTTPError) -> str:
        try:
            body = json.loads(exc.read().decode("utf-8"))
            return str(body.get("error", body))
        except (ValueError, OSError):
            return exc.reason or "unknown error"


__all__ = ["ServiceClient"]
