"""Stdlib HTTP client for the ``repro serve`` JSON API.

A thin wrapper over :mod:`http.client` matching the endpoints of the
query service.  Each thread using a client instance holds **one
persistent keep-alive connection** (the connection object lives in
thread-local storage), so a request train pays one TCP handshake instead
of one per request; a connection the server has since closed (idle
timeout, restart) is re-established transparently and the request is
retried once — but only when the failure happened on a *reused* socket,
so a genuinely unreachable server still fails fast and a request is
never silently issued twice against a live one.

Server-side errors (HTTP 4xx/5xx with a JSON ``{"error": ...}`` body)
and transport failures both surface as
:class:`~repro.errors.ServiceError`; a 429 backpressure answer carries
the server's ``Retry-After`` hint on ``ServiceError.retry_after``.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Any, Optional
from urllib.parse import quote, urlsplit

from ..errors import ServiceError

#: Transport failures that mean "the keep-alive socket went stale":
#: safe to retry once on a fresh connection.
_STALE_CONNECTION_ERRORS = (http.client.RemoteDisconnected,
                            http.client.BadStatusLine,
                            ConnectionResetError, BrokenPipeError,
                            ConnectionAbortedError)


class ServiceClient:
    """Client for a running threat-hunting query service.

    Thread-safe: every thread gets its own keep-alive connection.  Call
    :meth:`close` (or use the instance as a context manager) to release
    the calling thread's connection; connections of other threads close
    with their threads (or at GC).

    Args:
        base_url: e.g. ``"http://127.0.0.1:8787"``.
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ValueError(f"invalid service URL: {base_url!r}")
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port or (443 if parts.scheme == "https"
                                    else 80)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness probe; returns status, uptime, version and backend."""
        return self._get("/healthz")

    def metrics(self) -> str:
        """Fetch the Prometheus text exposition from ``GET /metrics``."""
        return self._send("GET", "/metrics", raw_text=True)

    def stats(self) -> dict:
        """Service statistics (store counts, caches, request counters)."""
        return self._get("/stats")

    def query(self, tbql: str, use_cache: bool = True,
              profile: bool = False) -> dict:
        """Execute TBQL text; returns the full response payload.

        ``profile=True`` asks the server to execute under a trace and
        include the span tree as a top-level ``profile`` key.
        """
        payload: dict = {"tbql": tbql, "use_cache": use_cache}
        if profile:
            payload["profile"] = True
        return self._post("/query", payload)

    def hunt(self, report: str, fuzzy_fallback: bool = False) -> dict:
        """Run the OSCTI pipeline server-side against the served store."""
        return self._post("/hunt", {"report": report,
                                    "fuzzy_fallback": fuzzy_fallback})

    # ------------------------------------------------------------------
    # live streaming endpoints (server must run with an engine attached)
    # ------------------------------------------------------------------
    def ingest(self, log_text: str, seal: bool = True) -> dict:
        """Append audit record lines to the served store (one batch).

        Returns the flush report: stored count, new watermark, and the
        alerts this batch fired.  ``seal=False`` lets event merge runs
        stay open across requests (contiguous chunks of one log).
        """
        return self._post("/ingest", {"log": log_text, "seal": seal})

    def add_rule(self, tbql: str, rule_id: str | None = None) -> dict:
        """Register a standing TBQL detection rule."""
        payload: dict = {"tbql": tbql}
        if rule_id is not None:
            payload["id"] = rule_id
        return self._post("/rules", payload)

    def delete_rule(self, rule_id: str) -> dict:
        """Deregister a standing rule by id."""
        return self._delete(f"/rules/{quote(rule_id, safe='')}")

    def rules(self) -> dict:
        """List the registered standing rules."""
        return self._get("/rules")

    def alerts(self, since_id: int = 0, limit: int | None = None) -> dict:
        """Fetch alerts newer than ``since_id`` (cursor-style polling)."""
        path = f"/alerts?since_id={int(since_id)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        return self._get(path)

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the calling thread's keep-alive connection (if any)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            self._local.connection = None
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's connection; second element: was it reused?"""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection, True
        if self._scheme == "https":   # pragma: no cover - no TLS in tests
            connection = http.client.HTTPSConnection(
                self._host, self._port, timeout=self.timeout)
        else:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout)
        self._local.connection = connection
        return connection, False

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _get(self, path: str) -> dict:
        return self._send("GET", path)

    def _delete(self, path: str) -> dict:
        return self._send("DELETE", path)

    def _post(self, path: str, payload: dict) -> dict:
        return self._send("POST", path,
                          body=json.dumps(payload).encode("utf-8"))

    def _send(self, method: str, path: str,
              body: Optional[bytes] = None,
              raw_text: bool = False) -> Any:
        headers = {"Content-Type": "application/json"} \
            if body is not None else {}
        for attempt in (0, 1):
            connection, reused = self._connection()
            try:
                connection.request(method, path, body=body,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except _STALE_CONNECTION_ERRORS as exc:
                # The server closed our idle keep-alive socket (read
                # timeout, restart).  Reconnect and retry exactly once —
                # and only when the socket had served before, so a dead
                # server is not hammered and a request that *might* have
                # reached a live one is not replayed.
                self.close()
                if reused and attempt == 0:
                    continue
                raise ServiceError(
                    f"service unreachable at {self.base_url}: "
                    f"{exc}") from exc
            except (http.client.HTTPException, socket.timeout,
                    OSError) as exc:
                self.close()
                raise ServiceError(
                    f"service unreachable at {self.base_url}: "
                    f"{exc}") from exc
            if response.will_close:
                self.close()
            return self._decode(response, raw, raw_text=raw_text)
        raise AssertionError("unreachable")   # pragma: no cover

    def _decode(self, response: http.client.HTTPResponse,
                raw: bytes, raw_text: bool = False) -> Any:
        if response.status >= 400:
            diagnostic: dict | None = None
            try:
                body = json.loads(raw.decode("utf-8"))
                detail = str(body.get("error", body))
                if isinstance(body, dict) and \
                        isinstance(body.get("diagnostic"), dict):
                    diagnostic = body["diagnostic"]
            except (ValueError, UnicodeDecodeError):
                detail = response.reason or "unknown error"
            retry_after: float | None = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            raise ServiceError(f"HTTP {response.status}: {detail}",
                               status=response.status,
                               retry_after=retry_after,
                               diagnostic=diagnostic)
        if raw_text:
            return raw.decode("utf-8")
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"invalid JSON response from {self.base_url}: "
                f"{exc}") from exc


__all__ = ["ServiceClient"]
