"""Asyncio load generator for the query service's HTTP front ends.

Drives many concurrent *keep-alive* clients against a running server —
each client is one coroutine holding one TCP connection for its whole
request train — and reports throughput (qps) plus latency quantiles
(p50/p99).  Used by ``benchmarks/bench_service_load.py`` and the
``service_load`` metric of ``benchmarks/regression_gate.py``; the HTTP
side is raw ``asyncio.open_connection`` so a thousand clients cost one
driver thread, not a thousand.

All clients connect first, then start firing together (a start barrier),
so the timed window measures request serving rather than connection
ramp-up.  A server that closes the connection mid-train (the threaded
backend under pressure, a drained keep-alive socket) is handled by a
transparent reconnect; responses with unexpected statuses are counted as
errors, never silently dropped.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Optional

#: Seconds a single request may take before the client counts it failed.
DEFAULT_REQUEST_TIMEOUT = 60.0


@dataclass
class LoadResult:
    """Aggregate outcome of one load run."""

    clients: int
    requests: int
    errors: int
    seconds: float
    qps: float
    p50_ms: float
    p99_ms: float
    statuses: dict[int, int] = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dict for the benchmark result tables."""
        return {"clients": self.clients, "requests": self.requests,
                "errors": self.errors, "seconds": self.seconds,
                "qps": self.qps, "p50_ms": self.p50_ms,
                "p99_ms": self.p99_ms}


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def build_query_request(tbql: str, host: str, port: int,
                        use_cache: bool = True) -> bytes:
    """Raw keep-alive ``POST /query`` request bytes for one TBQL text."""
    body = json.dumps({"tbql": tbql, "use_cache": use_cache}).encode()
    head = (f"POST /query HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n").encode("latin-1")
    return head + body


async def _read_response(reader: asyncio.StreamReader,
                         timeout: float) -> tuple[int, bytes]:
    """Read one HTTP/1.1 response; returns (status, body bytes)."""
    status_line = await asyncio.wait_for(reader.readline(), timeout)
    if not status_line:
        raise ConnectionResetError("server closed the connection")
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    length = 0
    close_after = False
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ConnectionResetError("connection closed mid-headers")
        name, _, value = line.partition(b":")
        key = name.strip().lower()
        if key == b"content-length":
            length = int(value.strip())
        elif key == b"connection" and b"close" in value.lower():
            close_after = True
    body = await asyncio.wait_for(reader.readexactly(length), timeout) \
        if length else b""
    if close_after:
        raise ConnectionResetError("server requested connection close")
    return status, body


async def _client_train(host: str, port: int,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter,
                        requests: list[bytes],
                        count: int, offset: int,
                        latencies: list[float], statuses: dict[int, int],
                        timeout: float) -> int:
    """One keep-alive client firing ``count`` requests down one socket.

    Returns the number of failed requests (transport errors after one
    reconnect attempt, or timeouts).
    """
    errors = 0
    try:
        for index in range(count):
            payload = requests[(offset + index) % len(requests)]
            started = time.perf_counter()
            try:
                writer.write(payload)
                await writer.drain()
                status, _body = await _read_response(reader, timeout)
            except (ConnectionError, asyncio.IncompleteReadError,
                    ValueError, OSError):
                # Stale/dropped keep-alive socket: reconnect, retry once.
                writer.close()
                try:
                    reader, writer = await asyncio.open_connection(host,
                                                                   port)
                    writer.write(payload)
                    await writer.drain()
                    status, _body = await _read_response(reader, timeout)
                except (ConnectionError, asyncio.IncompleteReadError,
                        ValueError, OSError, asyncio.TimeoutError):
                    errors += 1
                    continue
            except asyncio.TimeoutError:
                errors += 1
                continue
            latencies.append(time.perf_counter() - started)
            statuses[status] = statuses.get(status, 0) + 1
            if status != 200:
                errors += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return errors


async def _run(host: str, port: int, requests: list[bytes], clients: int,
               requests_per_client: int,
               timeout: float) -> LoadResult:
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    # Establish every keep-alive connection before the clock starts, so
    # the timed window measures serving, not connection ramp-up.
    connections = await asyncio.gather(
        *[asyncio.open_connection(host, port) for _ in range(clients)])
    tasks = [asyncio.create_task(_client_train(
        host, port, reader, writer, requests, requests_per_client, worker,
        latencies, statuses, timeout))
        for worker, (reader, writer) in enumerate(connections)]
    started = time.perf_counter()
    errors = sum(await asyncio.gather(*tasks))
    elapsed = time.perf_counter() - started
    latencies.sort()
    total = clients * requests_per_client
    return LoadResult(
        clients=clients, requests=total, errors=errors, seconds=elapsed,
        qps=total / elapsed if elapsed > 0 else 0.0,
        p50_ms=percentile(latencies, 0.50) * 1000.0,
        p99_ms=percentile(latencies, 0.99) * 1000.0,
        statuses=statuses)


def run_load(host: str, port: int, queries: list[str], clients: int,
             requests_per_client: int,
             timeout: float = DEFAULT_REQUEST_TIMEOUT,
             use_cache: bool = True,
             requests: Optional[list[bytes]] = None) -> LoadResult:
    """Fire a keep-alive query load at a server; returns the aggregate.

    ``queries`` rotate round-robin across the request train (staggered
    per client so the mix is uniform at every instant); pass prebuilt
    ``requests`` bytes to drive arbitrary endpoints instead.
    """
    if requests is None:
        requests = [build_query_request(text, host, port,
                                        use_cache=use_cache)
                    for text in queries]
    if not requests:
        raise ValueError("no requests to issue")
    return asyncio.run(_run(host, port, requests, clients,
                            requests_per_client, timeout))


__all__ = ["LoadResult", "run_load", "build_query_request", "percentile",
           "DEFAULT_REQUEST_TIMEOUT"]
