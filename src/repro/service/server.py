"""Concurrent TBQL query service over one shared read-only store.

The serving subsystem turns the reproduction from a batch tool into an
always-on hunting service: an audit log is ingested (and snapshotted) once,
then many clients hunt against the same provenance data concurrently.

* :class:`QueryService` is the transport-agnostic core: it shares one
  :class:`~repro.tbql.executor.TBQLExecutor` across threads, keeps an LRU
  *compiled-plan cache* (query text -> parsed/resolved TBQL, skipping the
  lexer/parser/semantic passes on repeat queries) and a bounded *result
  cache* keyed by query text (time-dependent queries — ``last N`` windows —
  are compiled per request and never result-cached).
* :func:`route` maps one ``(method, path, body)`` triple onto the service
  and returns the ``(status, payload)`` pair — the single routing table
  shared by both HTTP front ends, which is what keeps their JSON
  ``result`` payloads byte-identical.
* :class:`ThreatHuntingServer` is a stdlib ``ThreadingHTTPServer`` exposing
  the JSON API: ``POST /query``, ``POST /hunt``, ``GET /stats``,
  ``GET /healthz`` — one thread per connection
  (``repro serve --server-backend threaded``).
* :class:`~repro.service.aserver.AsyncThreatHuntingServer` (the default
  backend) serves the same API from an asyncio event loop with keep-alive
  connections, a bounded executor pool, and admission-queue backpressure.

When a :class:`~repro.streaming.engine.DetectionEngine` is attached
(``repro serve --live``) the service additionally exposes the live
endpoints — ``POST /ingest`` (append audit records to the served store),
``POST /rules`` / ``DELETE /rules/{id}`` / ``GET /rules`` (standing TBQL
detections), and ``GET /alerts`` — and every query executes under the
shared single-writer/multi-reader lock so reads never observe a
half-applied ingest batch.  Without an engine those endpoints answer
``409 Conflict``.

Response payloads separate the deterministic query outcome (``result``:
rows, matched events, per-step plan without timings) from the per-request
volatile data (``timing``, ``cached``), so two executions of the same query
— concurrent or serial, cached or not — produce byte-identical ``result``
sections.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Optional
from urllib.parse import parse_qs, unquote, urlsplit

from .. import __version__
from ..errors import ReproError, StreamingError
from ..obs.metrics import METRICS_CONTENT_TYPE, get_registry
from ..obs.trace import start_span, start_trace
from ..storage.dualstore import DualStore

if TYPE_CHECKING:   # pragma: no cover - typing only
    from ..streaming.engine import DetectionEngine
from ..tbql.executor import QueryResult, TBQLExecutor
from ..tbql.fuzzy import FuzzySearcher
from ..tbql.parser import parse_tbql
from ..tbql.semantics import (ResolvedQuery, query_is_time_dependent,
                              resolve_query)
from ..tbql.synthesis import SynthesisPlan, TBQLSynthesizer
from .cache import LRUCache

#: Default cache sizes (overridable via ``repro serve --plan-cache /
#: --result-cache``; zero disables the cache).
DEFAULT_PLAN_CACHE_SIZE = 128
DEFAULT_RESULT_CACHE_SIZE = 256

#: Largest request body either HTTP front end accepts; beyond it the
#: server answers ``413`` without reading the payload
#: (``repro serve --max-body-bytes``).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024


#: Per-step plan fields that depend on *when* a query ran rather than on the
#: data: wall-clock timings and the hydration-query count (0 once the shared
#: executor's entity cache is warm).  Excluded from response payloads so two
#: executions of the same query produce byte-identical ``result`` sections.
_VOLATILE_PLAN_FIELDS = ("seconds", "hydration_queries")

#: Known endpoint paths, so request metrics stay bounded-cardinality
#: even when clients probe random URLs.
_TRACKED_PATHS = frozenset({"/query", "/hunt", "/ingest", "/rules",
                            "/alerts", "/stats", "/healthz", "/metrics"})


def canonical_endpoint(path: str) -> str:
    """Collapse a request path onto a bounded label set."""
    if path in _TRACKED_PATHS:
        return path
    if path.startswith("/rules/"):
        return "/rules/{id}"
    return "other"


def observe_request(backend: str, method: str, path: str, status: int,
                    seconds: float) -> None:
    """Record one served request into the metrics registry."""
    registry = get_registry()
    endpoint = canonical_endpoint(path)
    registry.counter(
        "repro_http_requests_total",
        "HTTP requests served, by backend, method, path and status.",
        labels=("backend", "method", "path", "status"),
    ).labels(backend, method, endpoint, str(status)).inc()
    registry.histogram(
        "repro_http_request_seconds",
        "Request latency from routing to response, in seconds.",
        labels=("backend", "method", "path"),
    ).labels(backend, method, endpoint).observe(seconds)


def result_payload(result: QueryResult) -> dict:
    """The deterministic, JSON-ready view of a query result."""
    return {
        "rows": result.rows,
        "matched_events": result.matched_events,
        "per_pattern_matches": result.per_pattern_matches,
        "plan": [{key: value for key, value in step.as_dict().items()
                  if key not in _VOLATILE_PLAN_FIELDS}
                 for step in result.plan],
    }


class QueryService:
    """Thread-safe TBQL execution shared by every request handler.

    Args:
        store: the dual store to serve (typically ``DualStore.open()`` of a
            snapshot; a freshly loaded writable store works too).
        use_scheduler: forwarded to the shared executor.
        plan_cache_size: LRU entries for compiled plans (0 disables).
        result_cache_size: LRU entries for query results (0 disables).
        engine: optional live detection engine over the same store; when
            set, the ingest/rules/alerts endpoints come alive, the engine's
            rule evaluation shares this service's executor caches, and all
            query execution takes the engine's reader lock.
        workers: worker processes for scatter-gather pattern scans over
            a segmented store's sealed segments (``repro serve
            --workers``); 1 scans serially.
        scan_strategy: how scatter workers read sealed segments —
            ``"columnar"`` (default) or ``"sqlite"`` (``repro serve
            --scan-strategy``).
        slow_query_ms: when set, any query slower than this threshold
            logs a structured JSON record to stderr with the embedded
            span-tree profile (``repro serve --slow-query-ms``).
    """

    def __init__(self, store: DualStore, use_scheduler: bool = True,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
                 result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
                 engine: "Optional[DetectionEngine]" = None,
                 workers: int = 1,
                 scan_strategy: str = "columnar",
                 slow_query_ms: float | None = None) -> None:
        self.store = store
        self.slow_query_ms = slow_query_ms
        #: Set by the HTTP front end that serves this instance; reported
        #: by /healthz ("embedded" when no server owns the service).
        self.server_backend: Optional[str] = None
        self.executor = TBQLExecutor(store, use_scheduler=use_scheduler,
                                     workers=workers,
                                     scan_strategy=scan_strategy)
        self.plan_cache = LRUCache(plan_cache_size)
        self.result_cache = LRUCache(result_cache_size)
        self.engine = engine
        if engine is not None:
            # Rule evaluation reuses the shared executor (and its hydrated-
            # entity cache); queries take the engine's reader lock so an
            # in-flight append is never observed half-applied.
            engine.executor = self.executor
            self._read_guard: Any = engine.lock.read_lock
        else:
            self._read_guard = nullcontext
        self._hunt_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._idle = threading.Condition()
        self._inflight = 0
        self._counters = {"queries": 0, "query_cache_hits": 0, "hunts": 0,
                          "ingests": 0, "errors": 0}
        self._started_at = time.time()
        self._extractor_instance: Any = None
        self._data_version = getattr(store, "data_version", None)

    # ------------------------------------------------------------------
    # compiled-plan cache
    # ------------------------------------------------------------------
    def compile(self, text: str) -> ResolvedQuery:
        """Parse and resolve TBQL text through the compiled-plan cache."""
        resolved, _time_independent = self._compile(text)
        return resolved

    def _compile(self, text: str) -> tuple[ResolvedQuery, bool]:
        """Resolve through the plan cache; also reports time-independence.

        Cache entries hold the parsed AST plus, for time-independent
        queries, the fully resolved form; time-dependent queries reuse the
        parse but re-resolve against the current clock (and must never be
        result-cached).
        """
        entry = self.plan_cache.get(text)
        if entry is None:
            self._cache_event("plan", "miss")
            parsed = parse_tbql(text)
            resolved = None if query_is_time_dependent(parsed) \
                else resolve_query(parsed)
            self.plan_cache.put(text, (parsed, resolved))
        else:
            self._cache_event("plan", "hit")
            parsed, resolved = entry
        if resolved is None:
            return resolve_query(parsed), False
        return resolved, True

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def query(self, text: str, use_cache: bool = True,
              profile: bool = False) -> dict:
        """Execute TBQL text; returns the JSON-ready response payload.

        Result-cache entries are tagged with the ``data_version`` they
        were computed against and validated on every hit, so a query
        racing a live ingest can never serve pre-ingest rows — the
        wholesale clear in :meth:`_check_data_version` is housekeeping,
        the version tag is the correctness guarantee.

        ``profile=True`` executes under a trace and returns the span
        tree as a top-level ``profile`` key; the result cache is
        bypassed in both directions so the profile always describes a
        real execution (and cached payloads stay byte-identical).
        """
        self._bump("queries")
        self._check_data_version()
        if use_cache and not profile:
            entry = self.result_cache.get(text)
            if entry is not None:
                cached_version, cached = entry
                if cached_version == getattr(self.store, "data_version",
                                             None):
                    self._bump("query_cache_hits")
                    self._cache_event("result", "hit")
                    response = dict(cached)
                    response["cached"] = True
                    return response
            self._cache_event("result", "miss")
        want_trace = profile or self.slow_query_ms is not None
        trace_cm = start_trace("query") if want_trace \
            else nullcontext(None)
        with trace_cm as root:
            with start_span("parse"):
                resolved, cacheable = self._compile(text)
            start = time.perf_counter()
            with self._read_guard():
                # Read the version inside the guard: writers are
                # excluded, so the result is computed against exactly
                # this version.
                executed_version = getattr(self.store, "data_version",
                                           None)
                result = self.executor.execute(resolved)
            elapsed = time.perf_counter() - start
        response = {
            "query": text,
            "cached": False,
            "result": result_payload(result),
            "timing": {
                "elapsed_seconds": elapsed,
                "join_seconds": result.join_seconds,
            },
        }
        if use_cache and cacheable and not profile:
            self.result_cache.put(text, (executed_version, response))
        if root is not None:
            tree = root.as_dict()
            if profile:
                response["profile"] = tree
            self._maybe_log_slow_query(text, elapsed, tree)
        return response

    def _maybe_log_slow_query(self, text: str, elapsed: float,
                              tree: dict) -> None:
        """Emit a structured JSON slow-query record to stderr."""
        threshold = self.slow_query_ms
        if threshold is None or elapsed * 1000.0 < threshold:
            return
        record = {"event": "slow_query", "query": text,
                  "elapsed_ms": round(elapsed * 1000.0, 3),
                  "threshold_ms": threshold, "profile": tree}
        sys.stderr.write(json.dumps(record) + "\n")

    def try_cached_query(self, text: str) -> Optional[dict]:
        """Answer a query from the result cache alone; ``None`` on miss.

        The hit path is a version-validated dict lookup — no parsing, no
        store access, nothing that can block — so an event-loop front
        end can serve hot queries inline without paying an executor
        handoff; a miss falls back to the full :meth:`query` path (which
        counts the request), leaving the counters identical to the
        always-slow path.
        """
        self._check_data_version()
        entry = self.result_cache.get(text)
        if entry is None:
            return None
        cached_version, cached = entry
        if cached_version != getattr(self.store, "data_version", None):
            return None
        self._bump("queries")
        self._bump("query_cache_hits")
        self._cache_event("result", "hit")
        response = dict(cached)
        response["cached"] = True
        return response

    def hunt(self, report_text: str, fuzzy_fallback: bool = False) -> dict:
        """Extract + synthesize + execute an OSCTI report; returns payload.

        Extraction and synthesis run under a lock (the NLP pipeline is not
        audited for thread safety and hunts are rare next to queries); the
        synthesized TBQL then goes through the regular concurrent
        :meth:`query` path, sharing its caches.
        """
        self._bump("hunts")
        with self._hunt_lock:
            extractor = self._extractor()
            extraction = extractor.extract(report_text)
            synthesized = TBQLSynthesizer(SynthesisPlan()).synthesize(
                extraction.graph)
        # Copy before annotating: query() may have stored this dict in the
        # result cache, and later /query hits must not see hunt-only keys.
        response = dict(self.query(synthesized.text))
        response["synthesized_tbql"] = synthesized.text
        if fuzzy_fallback and not response["result"]["rows"]:
            with self._hunt_lock, self._read_guard():
                fuzzy = FuzzySearcher(self.store).search(synthesized.text)
            best = fuzzy.best
            response["fuzzy"] = {
                "alignments": len(fuzzy.alignments),
                "best_score": best.score if best else None,
                "best_nodes": dict(best.node_names) if best else {},
            }
        return response

    def stats(self) -> dict:
        """Service statistics: store counts, cache stats, counters.

        ``plan_cache`` / ``result_cache`` expose hit/miss/eviction counters
        and ``data_version`` the store's current version, so cache
        invalidation under live ingest is observable from the outside;
        ``segments`` describes the store partitioning (layout, sealed
        segment manifests, active tail) plus the executor's worker count.
        """
        with self._counter_lock:
            counters = dict(self._counters)
        with self._read_guard():
            store_stats = self.store.statistics()
            segment_stats = self.store.segment_stats() \
                if hasattr(self.store, "segment_stats") else None
        payload = {
            "uptime_seconds": time.time() - self._started_at,
            "read_only": getattr(self.store, "read_only", False),
            "data_version": getattr(self.store, "data_version", None),
            "store": store_stats,
            "counters": counters,
            "plan_cache": self.plan_cache.stats(),
            "result_cache": self.result_cache.stats(),
        }
        if segment_stats is not None:
            segment_stats["workers"] = self.executor.workers
            segment_stats["scan_strategy"] = self.executor.scan_strategy
            segment_stats["pool_fallback"] = self.executor.pool_fallback
            segment_stats["pruning"] = self.executor.pruning_totals
            payload["segments"] = segment_stats
        if self.engine is not None:
            payload["streaming"] = self.engine.stats()
        return payload

    def healthz(self) -> dict:
        """Liveness payload: status, uptime, version, server backend."""
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
            "version": __version__,
            "backend": self.server_backend or "embedded",
        }

    def metrics_text(self) -> str:
        """Render the Prometheus text exposition for ``GET /metrics``."""
        registry = get_registry()
        registry.gauge(
            "repro_uptime_seconds",
            "Seconds since this service instance started.",
        ).set(time.time() - self._started_at)
        registry.gauge(
            "repro_build_info",
            "Constant 1, labelled with the package version.",
            labels=("version",),
        ).labels(__version__).set(1)
        return registry.render()

    def close(self) -> None:
        """Release executor resources (the scatter-gather worker pool)."""
        self.executor.close()

    # ------------------------------------------------------------------
    # live streaming endpoints (active when an engine is attached)
    # ------------------------------------------------------------------
    def _require_engine(self) -> "DetectionEngine":
        if self.engine is None:
            raise StreamingError(
                "live ingestion is disabled on this server (start it with "
                "repro serve --live)", status=409)
        return self.engine

    def ingest(self, log_text: str, seal: bool = True) -> dict:
        """Append audit record lines to the served store; returns a report.

        The batch is stored and every standing rule is evaluated against
        the delta before the response is built, so the payload carries the
        alerts this ingest triggered.  By default each request is *sealed*
        — its open merge runs flush so all of its events are immediately
        queryable; pass ``seal=False`` when posting contiguous chunks of
        one log and cross-request event merging should continue.

        Parsing is tolerant (malformed records are skipped, like the log
        tailer), but never silent: the payload reports ``lines``,
        ``malformed``, and the first few parse errors, so a client posting
        garbage can tell it apart from a validly empty batch.
        """
        engine = self._require_engine()
        self._bump("ingests")
        report, parse_report = engine.ingest_log_text(log_text, seal=seal)
        payload = report.as_dict()
        payload["lines"] = parse_report.total_lines
        payload["malformed"] = parse_report.malformed_lines
        payload["parse_errors"] = parse_report.errors[:5]
        payload["data_version"] = getattr(self.store, "data_version", None)
        return payload

    def add_rule(self, tbql: str, rule_id: str | None = None) -> dict:
        """Register a standing rule; returns its JSON view."""
        engine = self._require_engine()
        rule = engine.add_rule(tbql, rule_id=rule_id)
        return {"rule": rule.as_dict()}

    def delete_rule(self, rule_id: str) -> dict:
        """Deregister a standing rule by id."""
        engine = self._require_engine()
        removed = engine.remove_rule(rule_id)
        return {"removed": removed.as_dict()}

    def rules(self) -> dict:
        """List the registered standing rules."""
        engine = self._require_engine()
        return {"rules": [rule.as_dict() for rule in engine.rules.list()]}

    def alerts(self, since_id: int = 0, limit: int | None = None) -> dict:
        """Alerts newer than ``since_id`` plus the ring counters."""
        engine = self._require_engine()
        selected = engine.alerts.list(since_id=since_id, limit=limit)
        return {
            "alerts": [alert.as_dict() for alert in selected],
            "next_since_id": selected[-1].alert_id if selected
            else since_id,
            "counters": engine.alerts.counters(),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bump(self, counter: str) -> None:
        with self._counter_lock:
            self._counters[counter] += 1

    @staticmethod
    def _cache_event(cache: str, outcome: str) -> None:
        get_registry().counter(
            "repro_cache_requests_total",
            "Plan/result cache lookups, by cache and outcome.",
            labels=("cache", "outcome"),
        ).labels(cache, outcome).inc()

    # ------------------------------------------------------------------
    # in-flight request tracking (graceful-shutdown drain)
    # ------------------------------------------------------------------
    def _enter_request(self) -> None:
        with self._idle:
            self._inflight += 1

    def _exit_request(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    @property
    def inflight(self) -> int:
        """Requests currently being routed (any front end)."""
        with self._idle:
            return self._inflight

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no request is in flight; False on timeout.

        Both HTTP front ends route every request through :func:`route`,
        which tracks entry/exit here — so a server that has stopped
        accepting work can drain what is already executing before
        tearing the executor and the store down.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def _check_data_version(self) -> None:
        """Drop cached results when the store's data was replaced.

        Read-only snapshot stores never change, but the service also
        accepts a writable store — a reload there must not leave the
        result cache answering from the replaced data.  (The plan cache
        survives: compiled plans depend only on the query text.)
        """
        version = getattr(self.store, "data_version", None)
        if version != self._data_version:
            with self._counter_lock:
                if version != self._data_version:
                    self.result_cache.clear()
                    self._data_version = version

    def _extractor(self) -> Any:
        # Imported and constructed lazily: the extraction pipeline pulls in
        # the whole NLP substrate, which pure query serving never needs.
        if self._extractor_instance is None:
            from ..extraction.pipeline import ThreatBehaviorExtractor
            self._extractor_instance = ThreatBehaviorExtractor()
        return self._extractor_instance


def parse_json_body(raw: bytes) -> dict:
    """Decode a request body into a JSON object; ``ValueError`` if not one.

    The shared validation for every POST endpoint: a missing body, broken
    JSON, and a non-object top level are all rejected with a structured
    message the front ends answer as a 400.
    """
    if not raw:
        raise ValueError("missing request body")
    try:
        body = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON body: {exc}") from exc
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    return body


def _route_get(service: QueryService, path: str,
               query_string: str) -> tuple[int, Any]:
    if path == "/healthz":
        return 200, service.healthz()
    if path == "/stats":
        return 200, service.stats()
    if path == "/rules":
        return 200, service.rules()
    if path == "/alerts":
        query = parse_qs(query_string)
        try:
            since_id = int(query.get("since_id", ["0"])[0])
            limit_raw = query.get("limit", [None])[0]
            limit = int(limit_raw) if limit_raw is not None else None
        except ValueError:
            return 400, {"error": "since_id/limit must be integers"}
        return 200, service.alerts(since_id=since_id, limit=limit)
    return 404, {"error": f"unknown path: {path}"}


def _route_post(service: QueryService, path: str,
                body: dict) -> tuple[int, Any]:
    if path == "/query":
        text = body.get("tbql")
        if not isinstance(text, str) or not text.strip():
            return 400, {"error": "missing 'tbql' query text"}
        return 200, service.query(
            text, use_cache=bool(body.get("use_cache", True)),
            profile=bool(body.get("profile", False)))
    if path == "/hunt":
        report = body.get("report")
        if not isinstance(report, str) or not report.strip():
            return 400, {"error": "missing 'report' text"}
        return 200, service.hunt(
            report, fuzzy_fallback=bool(body.get("fuzzy_fallback", False)))
    if path == "/ingest":
        log_text = body.get("log")
        if not isinstance(log_text, str) or not log_text.strip():
            return 400, {"error": "missing 'log' record text"}
        return 200, service.ingest(log_text,
                                   seal=bool(body.get("seal", True)))
    if path == "/rules":
        tbql = body.get("tbql")
        if not isinstance(tbql, str) or not tbql.strip():
            return 400, {"error": "missing 'tbql' rule text"}
        rule_id = body.get("id")
        if rule_id is not None and not isinstance(rule_id, str):
            return 400, {"error": "'id' must be a string"}
        return 200, service.add_rule(tbql, rule_id=rule_id)
    return 404, {"error": f"unknown path: {path}"}


def route(service: QueryService, method: str, target: str,
          body: dict | None) -> tuple[int, dict]:
    """Dispatch one request onto the service; returns (status, payload).

    The single routing table shared by the threaded and asyncio front
    ends: ``target`` is the raw request target (path plus optional query
    string), ``body`` the parsed JSON object for POST requests (``None``
    otherwise).  Library errors map to their 4xx status, anything else to
    a 500 — a request can never take a connection down.  Entry/exit is
    recorded on the service so graceful shutdown can drain in-flight
    requests (:meth:`QueryService.wait_idle`).
    """
    parts = urlsplit(target)
    path = parts.path
    service._enter_request()
    try:
        if method == "GET":
            return _route_get(service, path, parts.query)
        if method == "POST":
            return _route_post(service, path, body or {})
        if method == "DELETE":
            prefix = "/rules/"
            if path.startswith(prefix) and len(path) > len(prefix):
                return 200, service.delete_rule(unquote(path[len(prefix):]))
            return 404, {"error": f"unknown path: {target}"}
        return 404, {"error": f"unsupported method: {method}"}
    except ReproError as exc:
        service._bump("errors")
        status = getattr(exc, "status", None)
        payload: dict = {"error": str(exc)}
        diagnostic = getattr(exc, "diagnostic", None)
        if diagnostic is not None:
            payload["diagnostic"] = diagnostic.as_dict()
        return (status if isinstance(status, int) else 400, payload)
    except Exception as exc:   # pragma: no cover - defensive
        service._bump("errors")
        return 500, {"error": f"internal error: {exc}"}
    finally:
        service._exit_request()


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the JSON API onto a shared :class:`QueryService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if urlsplit(self.path).path == "/metrics":
            # Render first, observe after: a scrape reports itself on
            # the *next* scrape, matching the asyncio backend.
            start = time.perf_counter()
            data = self.service.metrics_text().encode("utf-8")
            observe_request("threaded", "GET", "/metrics", 200,
                            time.perf_counter() - start)
            self._send_raw(200, data, METRICS_CONTENT_TYPE)
            return
        self._routed("GET", None)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send(400, {"error": "invalid Content-Length header"})
            return
        limit = getattr(self.server, "max_body_bytes",
                        DEFAULT_MAX_BODY_BYTES)
        if length > limit:
            # The payload is rejected *unread*: answer 413 and drop the
            # connection instead of swallowing an arbitrarily large body.
            self.close_connection = True
            self._send(413, {"error": f"request body of {length} bytes "
                                      f"exceeds the {limit}-byte limit"})
            return
        try:
            body = parse_json_body(self.rfile.read(length)
                                   if length > 0 else b"")
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
            return
        self._routed("POST", body)

    def do_DELETE(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._routed("DELETE", None)

    def _routed(self, method: str, body: dict | None) -> None:
        start = time.perf_counter()
        status, payload = route(self.service, method, self.path, body)
        observe_request("threaded", method, urlsplit(self.path).path,
                        status, time.perf_counter() - start)
        self._send(status, payload)

    def _send(self, status: int, payload: dict) -> None:
        self._send_raw(status, json.dumps(payload).encode("utf-8"),
                       "application/json")

    def _send_raw(self, status: int, data: bytes,
                  content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            sys.stderr.write("[repro-serve] %s - %s\n" %
                             (self.address_string(), format % args))


class ThreatHuntingServer(ThreadingHTTPServer):
    """Threaded HTTP server executing TBQL over one shared store.

    Every request runs in its own thread (stdlib ``ThreadingHTTPServer``);
    concurrency safety comes from the shared :class:`QueryService` /
    :class:`~repro.tbql.executor.TBQLExecutor` and the per-thread reader
    connections of the relational store.
    """

    daemon_threads = True
    #: Hold enough pending TCP connects for a load spike: a client burst
    #: beyond the default backlog of 5 would otherwise sit in SYN retries.
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], service: QueryService,
                 verbose: bool = False,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.service.server_backend = "threaded"
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes

    def shutdown_gracefully(self, drain_timeout: float = 30.0) -> bool:
        """Stop accepting connections and drain in-flight requests.

        Returns False when requests were still running at the timeout.
        Safe to call after ``serve_forever`` already returned (SIGTERM
        raised through the serving thread).
        """
        self.shutdown()
        return self.service.wait_idle(drain_timeout)

    def server_close(self) -> None:
        super().server_close()
        self.service.close()


def serve(store: DualStore, host: str = "127.0.0.1", port: int = 8787,
          use_scheduler: bool = True,
          plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
          result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
          engine: "Optional[DetectionEngine]" = None,
          workers: int = 1, scan_strategy: str = "columnar",
          backend: str = "asyncio", exec_threads: int | None = None,
          queue_limit: int | None = None,
          max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
          read_timeout: float | None = None,
          verbose: bool = False,
          slow_query_ms: float | None = None) -> Any:
    """Build a ready-to-run server (call ``serve_forever()`` on it).

    ``backend`` picks the HTTP front end: ``"asyncio"`` (default — event
    loop, keep-alive connections, bounded executor + admission-queue
    backpressure) or ``"threaded"`` (the legacy thread-per-connection
    stdlib server).  ``exec_threads`` / ``queue_limit`` / ``read_timeout``
    only apply to the asyncio backend; ``max_body_bytes`` caps POST
    bodies on both.
    """
    if backend not in ("asyncio", "threaded"):
        raise ValueError(f"unknown server backend: {backend!r} "
                         f"(expected 'asyncio' or 'threaded')")
    service = QueryService(store, use_scheduler=use_scheduler,
                           plan_cache_size=plan_cache_size,
                           result_cache_size=result_cache_size,
                           engine=engine, workers=workers,
                           scan_strategy=scan_strategy,
                           slow_query_ms=slow_query_ms)
    if backend == "threaded":
        return ThreatHuntingServer((host, port), service, verbose=verbose,
                                   max_body_bytes=max_body_bytes)
    from .aserver import AsyncThreatHuntingServer
    kwargs: dict[str, Any] = {"verbose": verbose,
                              "max_body_bytes": max_body_bytes}
    if exec_threads is not None:
        kwargs["exec_threads"] = exec_threads
    if queue_limit is not None:
        kwargs["queue_limit"] = queue_limit
    if read_timeout is not None:
        kwargs["read_timeout"] = read_timeout
    return AsyncThreatHuntingServer((host, port), service, **kwargs)


__all__ = ["QueryService", "ServiceRequestHandler", "ThreatHuntingServer",
           "serve", "route", "parse_json_body", "query_is_time_dependent",
           "result_payload", "canonical_endpoint", "observe_request",
           "DEFAULT_PLAN_CACHE_SIZE", "DEFAULT_RESULT_CACHE_SIZE",
           "DEFAULT_MAX_BODY_BYTES"]
