"""Exception hierarchy shared across the ThreatRaptor reproduction.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch library failures without swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AuditError(ReproError):
    """Raised when audit log records cannot be parsed or are malformed."""


class StorageError(ReproError):
    """Raised by the relational or graph storage backends."""


class CypherError(StorageError):
    """Raised when a mini-Cypher query cannot be parsed or evaluated."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class NLPError(ReproError):
    """Raised by the lightweight NLP substrate."""


class ExtractionError(ReproError):
    """Raised by the threat behavior extraction pipeline."""


class TBQLError(ReproError):
    """Base class for errors raised by the TBQL subsystem."""


class TBQLSyntaxError(TBQLError):
    """Raised when a TBQL query fails to lex or parse.

    Attributes:
        line: 1-based line of the offending token (when known).
        column: 1-based column of the offending token (when known).
        diagnostic: the structured
            :class:`~repro.tbql.diagnostics.ParseDiagnostic` (message,
            line, column, source-context line) when the raiser had the
            source text at hand, else ``None``.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None, diagnostic=None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(message + location)
        self.line = line
        self.column = column
        self.diagnostic = diagnostic


class TBQLSemanticError(TBQLError):
    """Raised when a parsed TBQL query violates semantic rules."""


class SynthesisError(TBQLError):
    """Raised when a TBQL query cannot be synthesized from a behavior graph."""


class ExecutionError(TBQLError):
    """Raised when query execution fails against the storage backends."""


class BenchmarkError(ReproError):
    """Raised by the evaluation benchmark when a case is misconfigured."""


class StreamingError(ReproError):
    """Raised by the live streaming ingestion / standing-query subsystem.

    Attributes:
        status: optional HTTP status the query service should answer with
            when the error crosses the service boundary (default 400).
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceError(ReproError):
    """Raised by the HTTP query-service client on transport or API errors.

    Attributes:
        status: the HTTP status code when the server answered with an error
            response, ``None`` for transport-level failures.
        retry_after: seconds suggested by a ``Retry-After`` header (a 429
            backpressure answer), ``None`` when the server sent none.
        diagnostic: the structured parse-error dict (message, line,
            column, context) from a 400 payload, ``None`` otherwise.
    """

    def __init__(self, message: str, status: int | None = None,
                 retry_after: float | None = None,
                 diagnostic: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.diagnostic = diagnostic
