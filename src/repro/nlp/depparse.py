"""Rule-based dependency parser.

The parser produces shallow dependency trees good enough for the
dependency-path rules of the threat behavior extraction pipeline
(Section III-C, Step 9).  It is a deterministic, pattern-driven parser
designed around the narrative style of OSCTI text *after IOC protection*:
IOC strings have been replaced by a plain noun, so sentences look like
ordinary English ("the attacker used something to read user credentials
from something").

Produced arcs (a subset of Universal Dependencies labels):

``nsubj``, ``nsubjpass``, ``dobj``, ``prep``, ``pobj``, ``xcomp``, ``conj``,
``cc``, ``aux``, ``det``, ``amod``, ``compound``, ``appos``, ``advmod``,
``case``, ``mark``, ``punct``, ``dep`` and ``root``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .lemmatizer import lemmatize
from .pos import POSTagger
from .tokenizer import tokenize_whitespace

_NOUN_TAGS = {"NOUN", "PROPN", "PRON", "NUM"}
#: Pure linking verbs: their direct object is only the *instrument* the actor
#: used ("used /bin/tar to read ..."), never the object of a system event.
LINKING_VERBS = {"use", "leverage", "utilize", "employ"}
#: Verbs after which a direct object is the instrument for downstream steps
#: ("ran the cracker against the shadow file") but is *also* itself the
#: object of an execution-style system event ("bash executed /tmp/john").
USE_CLASS_VERBS = LINKING_VERBS | {"launch", "run", "execute", "invoke",
                                   "spawn"}


@dataclass
class DepNode:
    """One node of a dependency tree."""

    index: int
    text: str
    lemma: str
    pos: str
    head: int = -1            # -1 means root
    deprel: str = "dep"
    #: Annotations added by the extraction pipeline (Step 5 of Algorithm 1):
    #: e.g. ``ioc`` (IOC value + type), ``relation_verb``, ``coref`` target.
    annotations: dict = field(default_factory=dict)

    @property
    def is_verb(self) -> bool:
        return self.pos in ("VERB", "AUX")


class DependencyTree:
    """A dependency tree over one sentence.

    Node ``index`` values are token positions in the original sentence and
    are preserved across simplification, so lookups go through an index map
    rather than list position.
    """

    def __init__(self, nodes: list[DepNode], text: str = "") -> None:
        self.nodes = nodes
        self.text = text
        self._by_index = {node.index: node for node in nodes}

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DepNode]:
        return iter(self.nodes)

    def node(self, index: int) -> DepNode:
        return self._by_index[index]

    def root(self) -> Optional[DepNode]:
        for node in self.nodes:
            if node.head == -1 and node.deprel == "root":
                return node
        return self.nodes[0] if self.nodes else None

    def children(self, index: int) -> list[DepNode]:
        return [node for node in self.nodes if node.head == index]

    def path_to_root(self, index: int) -> list[DepNode]:
        """Return the nodes from ``index`` up to (and including) the root."""
        path = []
        current = index
        seen = set()
        while current != -1 and current not in seen and \
                current in self._by_index:
            seen.add(current)
            node = self._by_index[current]
            path.append(node)
            current = node.head
        return path

    def lowest_common_ancestor(self, left: int, right: int
                               ) -> Optional[DepNode]:
        """Return the LCA node of two nodes (or ``None`` in a broken tree)."""
        left_path = {node.index for node in self.path_to_root(left)}
        for node in self.path_to_root(right):
            if node.index in left_path:
                return node
        return None

    def path_between(self, left: int, right: int) -> list[DepNode]:
        """Return nodes on the tree path from ``left`` to ``right``."""
        lca = self.lowest_common_ancestor(left, right)
        if lca is None:
            return []
        path: list[DepNode] = []
        for node in self.path_to_root(left):
            path.append(node)
            if node.index == lca.index:
                break
        right_side: list[DepNode] = []
        for node in self.path_to_root(right):
            if node.index == lca.index:
                break
            right_side.append(node)
        path.extend(reversed(right_side))
        return path

    def verbs(self) -> list[DepNode]:
        return [node for node in self.nodes if node.pos == "VERB"]

    def remove_nodes(self, indices: set[int]) -> "DependencyTree":
        """Return a copy of the tree with the given nodes detached.

        Children of removed nodes are re-attached to the removed node's head
        so the tree stays connected.  Node indices are preserved (they refer
        to token positions), which keeps annotation alignment valid.
        """
        keep = [node for node in self.nodes if node.index not in indices]
        removed_heads = {node.index: node.head for node in self.nodes
                         if node.index in indices}
        new_nodes = []
        for node in keep:
            head = node.head
            while head in removed_heads:
                head = removed_heads[head]
            clone = DepNode(node.index, node.text, node.lemma, node.pos,
                            head, node.deprel, dict(node.annotations))
            new_nodes.append(clone)
        return DependencyTree(new_nodes, self.text)

    def to_triples(self) -> list[tuple[str, str, str]]:
        """Return (head text, deprel, dependent text) triples for debugging."""
        triples = []
        for node in self.nodes:
            head_text = "ROOT" if node.head == -1 else self.nodes_by_index(
                node.head).text
            triples.append((head_text, node.deprel, node.text))
        return triples

    def nodes_by_index(self, index: int) -> DepNode:
        try:
            return self._by_index[index]
        except KeyError as exc:
            raise IndexError(index) from exc


class RuleDependencyParser:
    """Deterministic dependency parser for protected OSCTI sentences."""

    def __init__(self) -> None:
        self._tagger = POSTagger()

    def parse(self, sentence: str) -> DependencyTree:
        """Tokenize, tag, and parse one sentence into a dependency tree."""
        tokens = tokenize_whitespace(sentence)
        tags = self._tagger.tag(tokens)
        nodes = [DepNode(index=token.index, text=token.text,
                         lemma=lemmatize(token.text), pos=tag)
                 for token, tag in zip(tokens, tags)]
        tree = DependencyTree(nodes, sentence)
        if not nodes:
            return tree
        self._attach(tree)
        return tree

    # ------------------------------------------------------------------
    # attachment rules
    # ------------------------------------------------------------------
    def _attach(self, tree: DependencyTree) -> None:
        nodes = tree.nodes
        verb_indices = [node.index for node in nodes if node.pos == "VERB"]
        if not verb_indices:
            self._attach_verbless(tree)
            return
        root_index = verb_indices[0]
        nodes[root_index].head = -1
        nodes[root_index].deprel = "root"
        self._attach_verb_chain(tree, verb_indices)
        for verb_index in verb_indices:
            self._attach_subject(tree, verb_index, verb_indices)
            self._attach_right_dependents(tree, verb_index, verb_indices)
        self._attach_remaining(tree, root_index)

    def _attach_verbless(self, tree: DependencyTree) -> None:
        nodes = tree.nodes
        noun_indices = [node.index for node in nodes
                        if node.pos in _NOUN_TAGS]
        root_index = noun_indices[-1] if noun_indices else 0
        nodes[root_index].head = -1
        nodes[root_index].deprel = "root"
        self._attach_noun_group(tree, list(range(len(nodes))), root_index)
        self._attach_remaining(tree, root_index)

    def _attach_verb_chain(self, tree: DependencyTree,
                           verb_indices: list[int]) -> None:
        """Link non-root verbs to earlier verbs (xcomp / conj / advcl)."""
        nodes = tree.nodes
        for position, verb_index in enumerate(verb_indices[1:], start=1):
            previous_verb = verb_indices[position - 1]
            node = nodes[verb_index]
            before = nodes[verb_index - 1] if verb_index > 0 else None
            if before is not None and before.pos == "PART" and \
                    before.lemma == "to":
                node.head = previous_verb
                node.deprel = "xcomp"
                before.head = verb_index
                before.deprel = "mark"
            elif before is not None and before.pos == "CCONJ":
                node.head = previous_verb
                node.deprel = "conj"
                before.head = verb_index
                before.deprel = "cc"
            elif before is not None and before.pos == "AUX":
                node.head = previous_verb
                node.deprel = "conj"
            else:
                node.head = previous_verb
                node.deprel = "conj"

    def _attach_subject(self, tree: DependencyTree, verb_index: int,
                        verb_indices: list[int]) -> None:
        nodes = tree.nodes
        verb = nodes[verb_index]
        if verb.deprel == "xcomp":
            return  # subject inherited from the matrix verb
        previous_boundary = max(
            (index for index in verb_indices if index < verb_index),
            default=-1)
        passive = any(nodes[i].pos == "AUX" and nodes[i].lemma == "be"
                      for i in range(max(previous_boundary, 0), verb_index))
        candidate = None
        index = verb_index - 1
        while index > previous_boundary:
            node = nodes[index]
            if node.pos in _NOUN_TAGS and node.head == -1 and \
                    node.deprel == "dep":
                # Skip nouns that are the object of a preposition directly
                # before them ("after the reconnaissance, the attacker ...").
                candidate = node
                break
            index -= 1
        if candidate is not None:
            candidate.head = verb_index
            candidate.deprel = "nsubjpass" if passive else "nsubj"
            # Attach the subject's own modifiers (determiner, adjectives,
            # compound nouns directly to its left).
            group_start = candidate.index
            while group_start - 1 > previous_boundary and \
                    nodes[group_start - 1].pos in (
                        "DET", "ADJ", "NOUN", "PROPN", "NUM"):
                group_start -= 1
            self._attach_noun_group(
                tree, list(range(group_start, candidate.index + 1)),
                candidate.index)
        for index in range(max(previous_boundary, 0), verb_index):
            node = nodes[index]
            if node.pos == "AUX" and node.head == -1 and node.deprel == "dep":
                node.head = verb_index
                node.deprel = "aux"

    def _attach_right_dependents(self, tree: DependencyTree, verb_index: int,
                                 verb_indices: list[int]) -> None:
        nodes = tree.nodes
        next_verb = min((index for index in verb_indices
                         if index > verb_index), default=len(nodes))
        current_prep: int | None = None
        has_dobj = False
        index = verb_index + 1
        while index < next_verb:
            node = nodes[index]
            if node.deprel != "dep" or node.head != -1:
                index += 1
                continue
            if node.pos == "PART" and node.lemma == "to":
                index += 1
                continue
            if node.pos in ("ADP", "SCONJ"):
                node.head = verb_index
                node.deprel = "prep"
                current_prep = node.index
                index += 1
                continue
            if node.pos == "CCONJ":
                node.head = verb_index
                node.deprel = "cc"
                index += 1
                continue
            if node.pos == "ADV":
                node.head = verb_index
                node.deprel = "advmod"
                index += 1
                continue
            if node.pos in _NOUN_TAGS:
                group_end = self._noun_group_end(nodes, index, next_verb)
                head_index = group_end - 1
                head_node = nodes[head_index]
                if current_prep is not None:
                    head_node.head = current_prep
                    head_node.deprel = "pobj"
                    current_prep = None
                elif not has_dobj:
                    head_node.head = verb_index
                    head_node.deprel = "dobj"
                    has_dobj = True
                else:
                    head_node.head = verb_index
                    head_node.deprel = "obj"
                self._attach_noun_group(tree, list(range(index, group_end)),
                                        head_index)
                index = group_end
                continue
            if node.pos in ("DET", "ADJ"):
                index += 1
                continue
            node.head = verb_index
            node.deprel = "punct" if node.pos == "PUNCT" else "dep"
            index += 1
        # Determiners / adjectives between the verb and the nouns they modify.
        for index in range(verb_index + 1, next_verb):
            node = nodes[index]
            if node.head == -1 and node.deprel == "dep" and \
                    node.pos in ("DET", "ADJ"):
                self._attach_to_following_noun(tree, index, next_verb,
                                               verb_index)

    @staticmethod
    def _noun_group_end(nodes: list[DepNode], start: int, limit: int) -> int:
        """Return the exclusive end index of a run of noun-like tokens."""
        end = start
        while end < limit and nodes[end].pos in _NOUN_TAGS:
            end += 1
        return end

    def _attach_noun_group(self, tree: DependencyTree, indices: list[int],
                           head_index: int) -> None:
        nodes = tree.nodes
        for index in indices:
            node = nodes[index]
            if index == head_index or node.head != -1 or \
                    node.deprel != "dep":
                continue
            if node.pos in ("DET",):
                node.head = head_index
                node.deprel = "det"
            elif node.pos == "ADJ":
                node.head = head_index
                node.deprel = "amod"
            elif node.pos in _NOUN_TAGS:
                node.head = head_index
                # The last noun heads the group; earlier PROPN/NOUN tokens of
                # the group are compounds; a trailing path-like PROPN after a
                # generic noun would instead be an apposition, but since the
                # head is the final token that case does not arise here.
                node.deprel = "compound"
            elif node.pos in ("ADP", "SCONJ"):
                node.head = head_index
                node.deprel = "case"

    def _attach_to_following_noun(self, tree: DependencyTree, index: int,
                                  limit: int, fallback_head: int) -> None:
        nodes = tree.nodes
        node = nodes[index]
        for next_index in range(index + 1, limit):
            candidate = nodes[next_index]
            if candidate.pos in _NOUN_TAGS:
                node.head = next_index
                node.deprel = "det" if node.pos == "DET" else "amod"
                return
        node.head = fallback_head
        node.deprel = "dep"

    def _attach_remaining(self, tree: DependencyTree, root_index: int) -> None:
        nodes = tree.nodes
        for node in nodes:
            if node.index == root_index or node.head != -1:
                continue
            if node.pos == "PUNCT":
                node.deprel = "punct"
            elif node.pos in ("DET", "ADJ"):
                self._attach_to_following_noun(tree, node.index, len(nodes),
                                               root_index)
                continue
            elif node.pos in ("ADP", "SCONJ"):
                node.deprel = "case"
            elif node.pos == "ADV":
                node.deprel = "advmod"
            elif node.pos in _NOUN_TAGS:
                node.deprel = "nmod"
            else:
                node.deprel = "dep"
            node.head = root_index


__all__ = ["DepNode", "DependencyTree", "RuleDependencyParser",
           "USE_CLASS_VERBS", "LINKING_VERBS"]
