"""Rule-and-lexicon part-of-speech tagger.

A compact Universal-POS-style tagger: a closed-class lexicon covers function
words, an open-class lexicon covers verbs and nouns frequent in threat
reports, suffix heuristics cover the rest, and a couple of contextual repair
rules fix the most common lexical ambiguities (e.g. verb/noun after a
determiner, past-participle noun modifiers).
"""

from __future__ import annotations

from .tokenizer import Token

# Closed classes ------------------------------------------------------------
_DETERMINERS = {"the", "a", "an", "this", "that", "these", "those", "its",
                "his", "her", "their", "our", "your", "each", "every", "any",
                "some", "no", "both", "all", "another"}
_PRONOUNS = {"it", "he", "she", "they", "we", "you", "i", "them", "him",
             "who", "which", "itself", "himself", "themselves", "what"}
_PREPOSITIONS = {"of", "in", "on", "at", "by", "for", "with", "from", "to",
                 "into", "onto", "over", "under", "through", "against",
                 "via", "within", "across", "after", "before", "during",
                 "between", "about", "as", "back", "towards", "toward",
                 "without"}
_CONJUNCTIONS = {"and", "or", "but", "nor", "so", "yet"}
_SUBORDINATORS = {"because", "although", "while", "when", "where", "if",
                  "since", "once", "that", "until", "unless"}
_AUXILIARIES = {"is", "are", "was", "were", "be", "been", "being", "am",
                "has", "have", "had", "do", "does", "did", "will", "would",
                "can", "could", "may", "might", "shall", "should", "must"}
_PARTICLES = {"not", "n't", "'s"}
_ADVERBS = {"then", "also", "finally", "next", "later", "again",
            "already", "often", "remotely", "locally", "successfully",
            "subsequently", "eventually", "afterwards", "thereby", "however",
            "directly", "further", "furthermore", "meanwhile"}

# Open-class lexicon --------------------------------------------------------
#: Verbs common in threat reports (base forms); inflections are handled by
#: suffix analysis plus this set via naive stemming.
_VERB_LEXICON = {
    "read", "write", "wrote", "written", "execute", "executed", "run", "ran",
    "launch", "launched", "start", "started", "stop", "stopped", "create",
    "created", "delete", "deleted", "remove", "removed", "download",
    "downloaded", "upload", "uploaded", "transfer", "transferred", "send",
    "sent", "receive", "received", "connect", "connected", "communicate",
    "communicated", "exfiltrate", "exfiltrated", "leak", "leaked", "steal",
    "stole", "stolen", "copy", "copied", "compress", "compressed", "encrypt",
    "encrypted", "decrypt", "decrypted", "scan", "scanned", "open", "opened",
    "close", "closed", "install", "installed", "drop", "dropped", "inject",
    "injected", "spawn", "spawned", "fork", "forked", "exploit", "exploited",
    "use", "used", "leverage", "leveraged", "utilize", "utilized", "employ",
    "employed", "access", "accessed", "modify", "modified", "gather",
    "gathered", "collect", "collected", "extract", "extracted", "obtain",
    "obtained", "attempt", "attempted", "attempts", "penetrate", "penetrated",
    "infect", "infected", "compromise", "compromised", "crack", "cracked",
    "archived", "rename", "renamed", "move", "moved", "save",
    "saved", "stored", "encode", "encoded", "decode", "decoded",
    "fetch", "fetched", "retrieve", "retrieved", "browse", "browsed",
    "visit", "visited", "click", "clicked", "contain", "contained",
    "involve", "involved", "include", "included", "perform", "performed",
    "correspond", "corresponds", "corresponding", "establish", "established",
    "maintain", "maintained", "seek", "seeks", "wrote", "reads", "writes",
    "connects", "downloads", "uploads", "transfers", "sends", "receives",
    "executes", "runs", "launches", "creates", "scrapes", "scraped",
}

_NOUN_LEXICON = {
    # The IOC-protection dummy word must be noun-like for parsing to work.
    "something", "anything", "everything", "nothing",
    "attacker", "attack", "victim", "host", "server", "file", "files",
    "process", "processes", "malware", "payload", "backdoor", "vulnerability",
    "credential", "credentials", "password", "passwords", "data",
    "information", "utility", "tool", "script", "stage", "image", "metadata",
    "address", "connection", "service", "services", "cloud", "repository",
    "step", "behavior", "behaviors", "activity", "activities", "system",
    "email", "e-mail", "link", "attachment", "extension", "browser",
    "macro", "document", "shell", "kernel", "network", "user", "users",
    "directory", "folder", "archive", "text", "content", "contents",
    "assets", "reconnaissance", "penetration", "exfiltration", "cracker",
    "shadow", "c2", "command", "control", "ip", "exif", "details",
}

_ADJECTIVES = {"malicious", "sensitive", "valuable", "remote", "local",
               "important", "compressed", "encrypted", "zipped", "gathered",
               "notorious", "public", "private", "clear", "direct",
               "initial", "final", "first", "second", "third", "following",
               "known", "zero-day", "lateral", "executable", "infected"}


def _suffix_guess(word: str) -> str:
    lower = word.lower()
    if lower.endswith(("tion", "sion", "ment", "ness", "ity", "ance", "ence",
                       "ware", "or", "er")):
        return "NOUN"
    if lower.endswith(("ize", "ise", "ate", "ify")):
        return "VERB"
    if lower.endswith(("ed", "ing")):
        return "VERB"
    if lower.endswith(("ous", "ive", "able", "ible", "ful", "less", "al",
                       "ic")):
        return "ADJ"
    if lower.endswith("ly"):
        return "ADV"
    return "NOUN"


def _lexical_tag(token: Token) -> str:
    lower = token.lower
    if token.is_punct:
        return "PUNCT"
    if lower.replace(".", "").isdigit():
        return "NUM"
    if lower in _DETERMINERS:
        return "DET"
    if lower in _PRONOUNS:
        return "PRON"
    if lower in _AUXILIARIES:
        return "AUX"
    if lower in _CONJUNCTIONS:
        return "CCONJ"
    if lower in _SUBORDINATORS:
        return "SCONJ"
    if lower in _PREPOSITIONS:
        return "ADP"
    if lower in _PARTICLES:
        return "PART"
    if lower in _ADVERBS:
        return "ADV"
    if lower in _ADJECTIVES:
        return "ADJ"
    if lower in _VERB_LEXICON:
        return "VERB"
    if lower in _NOUN_LEXICON:
        return "NOUN"
    # Strip a plural/3sg "s" and re-check the verb lexicon ("reads", "runs").
    if lower.endswith("s") and lower[:-1] in _VERB_LEXICON:
        return "VERB"
    if lower.endswith("s") and lower[:-1] in _NOUN_LEXICON:
        return "NOUN"
    if "/" in token.text or "\\" in token.text or "." in token.text:
        # Unsplit path-like or dotted tokens (whitespace tokenizer output).
        return "PROPN"
    if token.text[0].isupper() and token.index != 0:
        return "PROPN"
    return _suffix_guess(token.text)


class POSTagger:
    """Tags token sequences with Universal-POS-style labels."""

    def tag(self, tokens: list[Token]) -> list[str]:
        """Return one tag per token."""
        tags = [_lexical_tag(token) for token in tokens]
        self._contextual_repairs(tokens, tags)
        return tags

    @staticmethod
    def _contextual_repairs(tokens: list[Token], tags: list[str]) -> None:
        for index, token in enumerate(tokens):
            previous_tag = tags[index - 1] if index > 0 else None
            next_tag = tags[index + 1] if index + 1 < len(tags) else None
            # A verb-tagged word directly after a determiner is a noun
            # ("the read operation") unless followed by another noun it
            # modifies.
            if tags[index] == "VERB" and previous_tag == "DET" and \
                    next_tag not in ("NOUN", "PROPN"):
                tags[index] = "NOUN"
            # A verb directly between a determiner/adjective and a noun acts
            # as a participial modifier ("the gathered information",
            # "the stolen data", "the launched process").
            if tags[index] == "VERB" and \
                    next_tag in ("NOUN", "PROPN") and previous_tag in (
                        "DET", "ADJ"):
                tags[index] = "ADJ"
            # "to" before a verb is an infinitive marker, not a preposition.
            if token.lower == "to" and next_tag in ("VERB", "AUX"):
                tags[index] = "PART"


__all__ = ["POSTagger"]
