"""Sentence segmentation.

The segmenter splits on sentence-final punctuation followed by whitespace and
an upper-case letter (or end of text).  Common abbreviations and decimal
numbers are protected.  Note that *unprotected* OSCTI text defeats this
segmenter — ``/tmp/upload.tar.bz2`` looks like two sentence boundaries — which
is exactly the failure the paper's IOC-protection step prevents; the pipeline
therefore always runs protection before segmentation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_ABBREVIATIONS = {
    "e.g", "i.e", "etc", "mr", "mrs", "dr", "vs", "fig", "no", "st", "inc",
    "corp", "ltd",
}

_BOUNDARY_RE = re.compile(r"([.!?])(\s+)")


@dataclass(frozen=True)
class Sentence:
    """A sentence with its character span in the source text."""

    text: str
    start: int
    end: int


def _is_abbreviation(text: str, period_index: int) -> bool:
    before = text[:period_index]
    match = re.search(r"([A-Za-z.]+)$", before)
    if not match:
        return False
    word = match.group(1).lower().rstrip(".")
    return word in _ABBREVIATIONS or len(word) == 1


def _is_decimal(text: str, period_index: int) -> bool:
    before = period_index > 0 and text[period_index - 1].isdigit()
    after_index = period_index + 1
    after = after_index < len(text) and text[after_index].isdigit()
    return bool(before and after)


def split_sentences(text: str) -> list[Sentence]:
    """Split ``text`` into sentences, preserving character offsets."""
    sentences: list[Sentence] = []
    start = 0
    for match in _BOUNDARY_RE.finditer(text):
        period_index = match.start(1)
        if _is_abbreviation(text, period_index) or \
                _is_decimal(text, period_index):
            continue
        next_index = match.end()
        if next_index < len(text) and not (
                text[next_index].isalpha() or text[next_index].isdigit() or
                text[next_index] in "\"'(/"):
            continue
        raw = text[start:match.end(1)]
        stripped = raw.strip()
        if stripped:
            offset = start + raw.index(stripped[0])
            sentences.append(Sentence(stripped, offset,
                                      offset + len(stripped)))
        start = match.end()
    tail = text[start:].strip()
    if tail:
        offset = start + text[start:].index(tail[0])
        sentences.append(Sentence(tail, offset, offset + len(tail)))
    return sentences


def split_blocks(text: str) -> list[str]:
    """Split an OSCTI article into blocks (paragraphs).

    Blocks are separated by blank lines; leading/trailing whitespace is
    stripped and single newlines within a block are joined, mirroring how the
    paper's Step 1 segments an article before per-block extraction.
    """
    blocks: list[str] = []
    for raw_block in re.split(r"\n\s*\n", text):
        joined = " ".join(line.strip() for line in raw_block.splitlines())
        joined = re.sub(r"\s+", " ", joined).strip()
        if joined:
            blocks.append(joined)
    return blocks


__all__ = ["Sentence", "split_sentences", "split_blocks"]
