"""Tokenization for the lightweight NLP substrate.

Two tokenizers are provided:

* :func:`tokenize` — the *general-purpose* tokenizer, equivalent to what a
  general NLP library does: punctuation (dots, slashes, underscores, colons)
  splits tokens.  This is intentionally the tokenizer that shreds IOC strings
  such as ``/etc/passwd`` or ``192.168.29.128`` into pieces — the failure mode
  the paper's IOC-protection step exists to avoid.
* :func:`tokenize_whitespace` — a whitespace tokenizer used where token
  identity must be preserved verbatim (e.g. after IOC protection restored the
  original strings into the dependency tree).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_WORD_RE = re.compile(
    r"[A-Za-z]+(?:'[A-Za-z]+)?"   # words, possibly with an apostrophe
    r"|\d+(?:\.\d+)?"              # numbers
    r"|[^\sA-Za-z0-9]"             # any single punctuation character
)


@dataclass(frozen=True)
class Token:
    """A single token with its character offset in the source text."""

    text: str
    index: int
    start: int

    @property
    def end(self) -> int:
        return self.start + len(self.text)

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_punct(self) -> bool:
        return all(not ch.isalnum() for ch in self.text)

    @property
    def is_word(self) -> bool:
        return not self.is_punct


def tokenize(text: str) -> list[Token]:
    """General-purpose tokenization: punctuation becomes separate tokens."""
    tokens: list[Token] = []
    for match in _WORD_RE.finditer(text):
        tokens.append(Token(text=match.group(), index=len(tokens),
                            start=match.start()))
    return tokens


def tokenize_whitespace(text: str) -> list[Token]:
    """Whitespace tokenization that keeps embedded punctuation intact.

    Trailing sentence punctuation (``.``, ``,``, ``;``, ``:``) is still split
    off so sentence-final words do not carry a period, but interior dots,
    slashes, and underscores (file paths, IPs, domains) stay in one token.
    """
    tokens: list[Token] = []
    for match in re.finditer(r"\S+", text):
        chunk = match.group()
        start = match.start()
        # Split off leading punctuation such as quotes and parentheses.
        while chunk and chunk[0] in "\"'([{“”‘’":
            tokens.append(Token(chunk[0], len(tokens), start))
            chunk = chunk[1:]
            start += 1
        # Split off trailing punctuation, preserving interior characters.
        trailing: list[str] = []
        while chunk and chunk[-1] in ".,;:!?\"')]}“”‘’":
            trailing.append(chunk[-1])
            chunk = chunk[:-1]
        if chunk:
            tokens.append(Token(chunk, len(tokens), start))
        for offset, char in enumerate(reversed(trailing)):
            tokens.append(Token(char, len(tokens),
                                start + len(chunk) + offset))
    return tokens


def detokenize(tokens: list[Token]) -> str:
    """Reassemble tokens into a readable string (spaces between words)."""
    pieces: list[str] = []
    for token in tokens:
        if pieces and token.is_punct and token.text in ".,;:!?)":
            pieces[-1] += token.text
        else:
            pieces.append(token.text)
    return " ".join(pieces)


__all__ = ["Token", "tokenize", "tokenize_whitespace", "detokenize"]
