"""Hashed character n-gram word vectors.

Stand-in for spaCy's pretrained vectors: every string is embedded as a bag of
hashed character trigrams (plus the whole token), L2-normalized.  Similar
surface forms ("upload.tar" vs "/tmp/upload.tar") therefore have a high cosine
similarity, which is what the IOC scan-and-merge step (Algorithm 1 Step 8)
needs from the vector model.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_DIMENSIONS = 64


def _hash_feature(feature: str, dimensions: int) -> int:
    digest = hashlib.md5(feature.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % dimensions


def embed(text: str, dimensions: int = DEFAULT_DIMENSIONS) -> np.ndarray:
    """Embed a string as an L2-normalized hashed trigram vector."""
    vector = np.zeros(dimensions, dtype=np.float64)
    normalized = text.lower().strip()
    if not normalized:
        return vector
    padded = f"^{normalized}$"
    for index in range(len(padded) - 2):
        trigram = padded[index:index + 3]
        vector[_hash_feature(trigram, dimensions)] += 1.0
    for word in normalized.split():
        vector[_hash_feature(f"w:{word}", dimensions)] += 2.0
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector


def cosine_similarity(left: str, right: str,
                      dimensions: int = DEFAULT_DIMENSIONS) -> float:
    """Cosine similarity of the hashed embeddings of two strings."""
    left_vec = embed(left, dimensions)
    right_vec = embed(right, dimensions)
    return float(np.dot(left_vec, right_vec))


def character_overlap(left: str, right: str) -> float:
    """Normalized longest-common-substring-style overlap in [0, 1].

    Used together with :func:`cosine_similarity` by the IOC merge step:
    the score is the length of the longer string's best containment match
    divided by the longer string's length.
    """
    a, b = left.lower(), right.lower()
    if not a or not b:
        return 0.0
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    if shorter in longer:
        return len(shorter) / len(longer)
    best = 0
    for start in range(len(shorter)):
        for end in range(start + best + 1, len(shorter) + 1):
            if shorter[start:end] in longer:
                best = end - start
            else:
                break
    return best / len(longer)


__all__ = ["DEFAULT_DIMENSIONS", "embed", "cosine_similarity",
           "character_overlap"]
