"""Lightweight NLP substrate (spaCy stand-in).

Tokenization, sentence segmentation, POS tagging, lemmatization, hashed word
vectors, and a rule-based dependency parser — the minimum linguistic toolkit
the threat behavior extraction pipeline needs.
"""

from .depparse import (DepNode, DependencyTree, RuleDependencyParser,
                       USE_CLASS_VERBS)
from .lemmatizer import lemmatize
from .pos import POSTagger
from .sentences import Sentence, split_blocks, split_sentences
from .tokenizer import Token, detokenize, tokenize, tokenize_whitespace
from .vectors import (DEFAULT_DIMENSIONS, character_overlap,
                      cosine_similarity, embed)

__all__ = [
    "DepNode",
    "DependencyTree",
    "RuleDependencyParser",
    "USE_CLASS_VERBS",
    "lemmatize",
    "POSTagger",
    "Sentence",
    "split_blocks",
    "split_sentences",
    "Token",
    "detokenize",
    "tokenize",
    "tokenize_whitespace",
    "DEFAULT_DIMENSIONS",
    "character_overlap",
    "cosine_similarity",
    "embed",
]
