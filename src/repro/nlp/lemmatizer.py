"""Rule-based English lemmatizer.

Handles the irregular verbs that actually appear in threat reports plus
regular inflection stripping.  The relation-extraction step lemmatizes the
selected relation verb (Section III-C Step 9), so coverage here directly
affects IOC-relation normalization ("wrote" -> "write").
"""

from __future__ import annotations

_IRREGULAR = {
    "wrote": "write", "written": "write", "writes": "write",
    "read": "read", "reads": "read",
    "ran": "run", "runs": "run", "running": "run",
    "sent": "send", "sends": "send",
    "stole": "steal", "stolen": "steal",
    "took": "take", "taken": "take", "takes": "take",
    "got": "get", "gotten": "get", "gets": "get",
    "made": "make", "makes": "make",
    "left": "leave", "leaves": "leave",
    "began": "begin", "begun": "begin",
    "went": "go", "goes": "go", "gone": "go",
    "came": "come", "comes": "come",
    "did": "do", "does": "do", "done": "do",
    "was": "be", "were": "be", "been": "be", "is": "be", "are": "be",
    "has": "have", "had": "have",
    "sought": "seek", "seeks": "seek",
    "led": "lead", "leads": "lead",
    "built": "build", "builds": "build",
    "found": "find", "finds": "find",
    "kept": "keep", "keeps": "keep",
    "chose": "choose", "chosen": "choose",
}

_DOUBLE_CONSONANT_ENDINGS = ("bb", "dd", "gg", "ll", "mm", "nn", "pp", "rr",
                             "tt")

_KEEP_FINAL_E = {
    "us": "use", "leverag": "leverage", "creat": "create",
    "execut": "execute", "compromis": "compromise", "archiv": "archive",
    "renam": "rename", "mov": "move", "sav": "save", "stor": "store",
    "encod": "encode", "decod": "decode", "retriev": "retrieve",
    "receiv": "receive", "remov": "remove", "delet": "delete",
    "communicat": "communicate", "exfiltrat": "exfiltrate",
    "utiliz": "utilize", "scrap": "scrape", "brows": "browse",
    "involv": "involve", "includ": "include", "establish": "establish",
    "infiltrat": "infiltrate", "penetrat": "penetrate",
}


def lemmatize(word: str) -> str:
    """Return the lemma of ``word`` (lower-cased)."""
    lower = word.lower()
    if lower in _IRREGULAR:
        return _IRREGULAR[lower]
    if lower.endswith("ies") and len(lower) > 4:
        return lower[:-3] + "y"
    if lower.endswith("ied") and len(lower) > 4:
        return lower[:-3] + "y"
    if lower.endswith("ing") and len(lower) > 5:
        stem = lower[:-3]
        return _repair_stem(stem)
    if lower.endswith("ed") and len(lower) > 3:
        stem = lower[:-2]
        return _repair_stem(stem)
    if lower.endswith("es") and len(lower) > 4 and \
            lower[-3] in ("s", "x", "z", "h"):
        return lower[:-2]
    if lower.endswith("s") and not lower.endswith("ss") and len(lower) > 3:
        return lower[:-1]
    return lower


def _repair_stem(stem: str) -> str:
    if stem in _KEEP_FINAL_E:
        return _KEEP_FINAL_E[stem]
    if stem.endswith(_DOUBLE_CONSONANT_ENDINGS) and len(stem) > 3:
        return stem[:-1]
    return stem


__all__ = ["lemmatize"]
