"""Command-line interface for the ThreatRaptor reproduction.

Eleven subcommands cover the workflows of Figure 1 plus the serving,
streaming, and partitioned-storage layers:

* ``extract``    — OSCTI report text -> threat behavior graph (printed),
* ``synthesize`` — OSCTI report text -> TBQL query text,
* ``hunt``       — OSCTI report + audit log -> matched malicious events,
* ``query``      — hand-written TBQL + audit log (or snapshot, with
  ``--workers`` for parallel segment scans) -> query results,
* ``ingest``     — audit log -> dual-store load report (``--stats`` breaks
  the load down per stage: reduce, build, relational, graph),
* ``snapshot``   — audit log -> persistent on-disk snapshot directory
  (ingest once, query many times; ``--layout segmented`` seals the
  history into time-bounded segments),
* ``segments``   — list a snapshot's segment manifests,
* ``compact``    — merge a snapshot's undersized segments,
* ``serve``      — snapshot (or audit log) -> concurrent HTTP query service
  (``/query``, ``/hunt``, ``/stats``, ``/healthz``; with ``--live`` also
  ``/ingest``, ``/rules``, ``/alerts``),
* ``tail``       — follow a growing audit log, append batches to the live
  store, and evaluate standing TBQL detection rules on every flush,
* ``rules``      — validate a directory of standing-rule files.

Usage::

    python -m repro.cli hunt --report report.txt --log audit.log
    python -m repro.cli query --log audit.log \\
        --tbql 'proc p read file f["%/etc/shadow%"] return p'
    python -m repro.cli snapshot --log audit.log --out snap/
    python -m repro.cli serve --snapshot snap/ --port 8787
    python -m repro.cli tail --log audit.log --rules rules/ \\
        --checkpoint ckpt/ --checkpoint-every 10
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .extraction import ThreatBehaviorExtractor
from .hunting import ThreatRaptor
from .tbql.synthesis import SynthesisPlan, TBQLSynthesizer


def _read_text(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _load_raptor(log_path: str, no_reduction: bool, workers: int = 1,
                 scan_strategy: str = "columnar") -> ThreatRaptor:
    from .storage import DualStore
    raptor = ThreatRaptor(store=DualStore(reduce=not no_reduction),
                          workers=workers, scan_strategy=scan_strategy)
    count = raptor.ingest_log_text(_read_text(log_path))
    print(f"[repro] ingested {count} events from {log_path}",
          file=sys.stderr)
    return raptor


def _print_events(events: list[dict]) -> None:
    for event in sorted(events, key=lambda item: item["start_time"]):
        print(f"{event['pattern_id']:>8}  {event['subject']} "
              f"--{event['operation']}--> {event['object']}")


def _print_plan(result) -> None:
    """Render the structured per-step execution report (``--explain``)."""
    print("\n=== execution plan ===")
    for position, step in enumerate(result.plan, start=1):
        candidates = []
        for side, count, pushed in (
                ("subj", step.subject_candidates, step.pushed_subject),
                ("obj", step.object_candidates, step.pushed_object)):
            if count is not None:
                suffix = " pushed" if pushed else ""
                candidates.append(f"{side}={count}{suffix}")
        candidate_text = ", ".join(candidates) if candidates else "none"
        millis = sum(step.seconds.values()) * 1000.0
        segment_text = ""
        if step.segments_scanned is not None:
            segment_text = (f"segments {step.segments_scanned} scanned/"
                            f"{step.segments_pruned} pruned ")
            if step.segments_pruned_by_stats is not None:
                segment_text += (f"({step.segments_pruned_by_stats} "
                                 "by stats) ")
            if step.scan_strategy is not None:
                segment_text += f"scan={step.scan_strategy} "
            if step.aggregate_pushdown:
                segment_text += "agg-pushdown "
            if step.pool_fallback:
                segment_text += "(pool fallback: serial) "
        print(f"  {position}. {step.pattern_id} [{step.backend}] "
              f"score={step.score:.2f} candidates({candidate_text}) "
              f"rows {step.rows_in} -> {step.rows_out} {segment_text}"
              f"hydration_queries={step.hydration_queries} "
              f"{millis:.2f}ms")
    print(f"  join: {result.join_seconds * 1000.0:.2f}ms, "
          f"total: {result.elapsed_seconds * 1000.0:.2f}ms")


def cmd_extract(args: argparse.Namespace) -> int:
    result = ThreatBehaviorExtractor().extract(_read_text(args.report))
    print(result.graph.summary())
    if args.show_iocs:
        print("\nIOCs:")
        for ioc in result.iocs:
            print(f"  {ioc.canonical} ({ioc.ioc_type.value}) "
                  f"mentions={ioc.mentions}")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    result = ThreatBehaviorExtractor().extract(_read_text(args.report))
    plan = SynthesisPlan(use_path_patterns=args.path_patterns,
                         fuzzy_paths=not args.length1)
    synthesized = TBQLSynthesizer(plan).synthesize(result.graph)
    print(synthesized.text)
    return 0


def cmd_hunt(args: argparse.Namespace) -> int:
    raptor = _load_raptor(args.log, args.no_reduction)
    report = raptor.hunt(_read_text(args.report),
                         fallback_to_fuzzy=args.fuzzy_fallback)
    print("=== synthesized TBQL ===")
    print(report.synthesized.text)
    print("\n=== matched events ===")
    _print_events(report.result.matched_events)
    if report.fuzzy_result is not None and report.fuzzy_result.best:
        print("\n=== fuzzy alignment (exact search found nothing) ===")
        for entity_id, name in sorted(
                report.fuzzy_result.best.node_names.items()):
            print(f"  {entity_id} -> {name}")
    raptor.store.close()
    return 0 if report.result.matched_events or report.fuzzy_result else 1


def cmd_ingest(args: argparse.Namespace) -> int:
    from .audit.parser import parse_audit_log
    from .storage import DualStore

    events = parse_audit_log(_read_text(args.log))
    if not events:
        # An empty (or whitespace-only / all-malformed) log is a valid,
        # boring input, not an error: report it plainly — without the
        # per-stage breakdown, whose rates and ratios are meaningless at
        # zero events — and exit 0.
        print(f"ingested 0 events (log {args.log} contained no parseable "
              f"audit records)")
        return 0
    store = DualStore(reduce=not args.no_reduction)
    stats = store.load_events(events, strategy=args.strategy)
    print(f"ingested {stats.events} events "
          f"({stats.input_events} before reduction, "
          f"{stats.entities} entities)")
    if args.stats:
        print("\n=== ingestion statistics ===")
        print(f"  strategy:           {stats.strategy}")
        print(f"  input events:       {stats.input_events}")
        print(f"  stored events:      {stats.events}")
        print(f"  unique entities:    {stats.entities}")
        print(f"  relational batches: {stats.relational_batches}")
        if store.last_reduction is not None:
            ratio = store.last_reduction.reduction_ratio
            print(f"  reduction ratio:    {ratio:.2f}x")
        for stage in ("reduce", "build", "relational", "graph"):
            millis = stats.seconds.get(stage, 0.0) * 1000.0
            print(f"  {stage + ' seconds:':<19} {millis:.2f}ms")
        print(f"  total:              {stats.total_seconds * 1000.0:.2f}ms")
    store.close()
    return 0 if stats.events else 1


def cmd_snapshot(args: argparse.Namespace) -> int:
    from operator import attrgetter

    from .audit.parser import parse_audit_log
    from .storage import DualStore

    events = parse_audit_log(_read_text(args.log))
    with DualStore(reduce=not args.no_reduction,
                   layout=args.layout) as store:
        if args.layout == "segmented":
            # Feed the time-ordered stream through the append path and
            # seal every --segment-events, so the snapshot carries a
            # prunable multi-segment history instead of one big segment.
            events.sort(key=attrgetter("start_time", "event_id"))
            step = max(1, args.segment_events)
            stored = 0
            for index in range(0, len(events), step):
                stored += int(store.append_events(
                    events[index:index + step]))
                stored += int(store.flush_appends())
            manifest = store.save(args.out)
            segment_count = len(manifest.get("segments", []))
            print(f"sealed {segment_count} segment(s)", file=sys.stderr)
        else:
            stored = int(store.load_events(events,
                                           strategy=args.strategy))
            manifest = store.save(args.out)
    print(f"snapshot written to {args.out}: "
          f"{manifest['relational_events']} events, "
          f"{manifest['relational_entities']} entities "
          f"(format v{manifest['format_version']}, "
          f"layout {manifest['layout']})")
    return 0 if stored else 1


def cmd_segments(args: argparse.Namespace) -> int:
    from .storage import DualStore

    with DualStore.open(args.snapshot) as store:
        stats = store.segment_stats()
        print(f"layout: {stats['layout']}  sealed segments: "
              f"{stats['sealed_segments']}  sealed events: "
              f"{stats['sealed_events']}")
        if not stats["segments"]:
            print("(monolithic snapshot: the whole history is one "
                  "relational database + one graph)")
            return 0
        header = (f"{'name':<12} {'events':>8} {'event ids':>17} "
                  f"{'entities':>8} {'start range':>23} "
                  f"{'end range':>23} {'rel KiB':>9} {'col KiB':>9} "
                  f"{'graph KiB':>9}")
        print(header)
        print("-" * len(header))
        for entry in stats["segments"]:
            payload = entry.get("payload_bytes", {})
            sizes = " ".join(
                f"{payload.get(kind, 0) / 1024.0:>9.1f}"
                for kind in ("relational", "columnar", "graph"))
            print(f"{entry['name']:<12} {entry['event_count']:>8} "
                  f"{entry['first_event_id']:>8}-"
                  f"{entry['last_event_id']:<8} "
                  f"{entry['new_entity_count']:>8} "
                  f"{entry['min_start_time']:>11.2f}-"
                  f"{entry['max_start_time']:<11.2f} "
                  f"{entry['min_end_time']:>11.2f}-"
                  f"{entry['max_end_time']:<11.2f} {sizes}")
            if args.verbose:
                _print_segment_stats(entry.get("stats"))
    return 0


def _print_segment_stats(stats) -> None:
    """Render one segment's seal-time statistics block (``--verbose``)."""
    if not isinstance(stats, dict):
        print("    stats: (none — sealed before statistics existed; "
              "never pruned)")
        return
    print(f"    stats v{stats.get('version')}:")
    for column, bounds in sorted((stats.get("numeric") or {}).items()):
        print(f"      {column:<12} range [{bounds[0]:g}, {bounds[1]:g}]")
    for column, values in sorted((stats.get("distinct") or {}).items()):
        print(f"      {column:<12} distinct {{{', '.join(values)}}}")
    for side in ("subject_types", "object_types"):
        values = stats.get(side)
        if values is not None:
            print(f"      {side:<12} {{{', '.join(values)}}}")


def cmd_compact(args: argparse.Namespace) -> int:
    from .storage import DualStore

    # Snapshots are immutable: compaction opens a writable copy, merges
    # the undersized segments there, and saves a fresh snapshot (to
    # --out, or back over the source directory when omitted).
    out = args.out if args.out else args.snapshot
    with DualStore.open(args.snapshot, read_only=False) as store:
        report = store.compact(min_events=args.min_events)
        store.save(out)
    print(f"compacted {args.snapshot}: {report['segments_before']} -> "
          f"{report['segments_after']} segment(s) "
          f"({report['merged_runs']} merge run(s)) -> {out}")
    return 0


def _load_rules_into(engine, rules_dir: str, prune: bool = False) -> int:
    """Register every valid ``*.tbql`` file; returns how many loaded.

    A rule id already known to the engine (restored from a checkpoint) is
    kept when the text is unchanged — preserving its high-water mark — and
    replaced when the file's text differs.  With ``prune=True`` the
    directory is the source of truth: restored rules whose file has been
    deleted are deregistered (so removing a rule file actually silences
    the detection across restarts).
    """
    from .streaming import load_rules_directory

    loaded = 0
    seen: set[str] = set()
    for rule_id, text, rule, error in load_rules_directory(rules_dir):
        seen.add(rule_id)
        if error is not None:
            print(f"[repro] skipping invalid rule {rule_id!r}: {error}",
                  file=sys.stderr)
            continue
        existing = engine.rules.get(rule_id)
        if existing is not None:
            if existing.text == text:
                loaded += 1
                continue
            engine.remove_rule(rule_id)
        engine.rules.add_compiled(rule)
        loaded += 1
    if prune:
        for stale in engine.rules.list():
            if stale.rule_id not in seen:
                engine.remove_rule(stale.rule_id)
                print(f"[repro] dropped rule {stale.rule_id!r} (file "
                      f"removed from {rules_dir})", file=sys.stderr)
    return loaded


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import DEFAULT_MAX_BODY_BYTES, serve
    from .storage import DualStore

    if args.rules and not args.live:
        print("[repro] error: --rules requires --live (standing rules "
              "need the detection engine)", file=sys.stderr)
        return 2
    if args.checkpoint and not args.live:
        print("[repro] error: --checkpoint requires --live (only the "
              "detection engine checkpoints)", file=sys.stderr)
        return 2
    engine = None
    if args.snapshot:
        store = DualStore.open(args.snapshot, read_only=not args.live)
        mode = "writable" if args.live else "read-only"
        print(f"[repro] opened snapshot {args.snapshot} "
              f"({store.relational.count_events()} events, {mode})",
              file=sys.stderr)
    else:
        from .audit.parser import parse_audit_log
        store = DualStore(reduce=not args.no_reduction,
                          retain_events=not args.live,
                          layout=args.layout)
        count = store.load_events(parse_audit_log(_read_text(args.log)))
        print(f"[repro] ingested {count} events from {args.log}",
              file=sys.stderr)
    if args.live:
        from .streaming import DetectionEngine
        engine = DetectionEngine(store, max_alerts=args.max_alerts,
                                 seal_every=args.seal_every,
                                 checkpoint_dir=args.checkpoint)
        if args.rules:
            count = _load_rules_into(engine, args.rules)
            print(f"[repro] {count} standing rule(s) loaded from "
                  f"{args.rules}", file=sys.stderr)
    server = serve(store, host=args.host, port=args.port,
                   plan_cache_size=args.plan_cache,
                   result_cache_size=args.result_cache,
                   engine=engine, workers=args.workers,
                   scan_strategy=args.scan_strategy,
                   backend=args.server_backend,
                   exec_threads=args.exec_threads or None,
                   queue_limit=args.queue_limit,
                   max_body_bytes=(args.max_body_bytes
                                   if args.max_body_bytes is not None
                                   else DEFAULT_MAX_BODY_BYTES),
                   read_timeout=args.read_timeout,
                   verbose=args.verbose,
                   slow_query_ms=args.slow_query_ms)
    host, port = server.server_address[:2]
    endpoints = ("POST /query, POST /hunt, GET /stats, GET /healthz, "
                 "GET /metrics")
    if engine is not None:
        endpoints += (", POST /ingest, POST /rules, DELETE /rules/{id}, "
                      "GET /rules, GET /alerts")
    print(f"[repro] serving on http://{host}:{port} "
          f"[{args.server_backend}] ({endpoints})", file=sys.stderr)
    if args.server_backend == "threaded":
        # The asyncio backend installs its own loop signal handlers; the
        # threaded one needs SIGTERM translated into the same clean exit
        # path SIGINT already takes.
        import signal

        def _sigterm(signum, frame):   # pragma: no cover - signal path
            raise KeyboardInterrupt

        try:
            signal.signal(signal.SIGTERM, _sigterm)
        except ValueError:   # pragma: no cover - not the main thread
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:   # pragma: no cover - interactive shutdown
        print("[repro] shutting down", file=sys.stderr)
    finally:
        # Drain in-flight requests, then release sockets and executor
        # pools before sealing the live store so a checkpoint (when
        # --live --checkpoint) captures a quiesced engine.
        server.shutdown_gracefully()
        server.server_close()
        if engine is not None:
            engine.finalize()
        store.close()
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    from .storage import DualStore
    from .streaming import (DetectionEngine, FlushPolicy, LogTailer,
                            has_checkpoint, resume_engine)

    policy = FlushPolicy(max_events=args.batch_events,
                         max_seconds=args.flush_interval)
    if args.checkpoint and has_checkpoint(args.checkpoint):
        engine = resume_engine(args.checkpoint, policy=policy,
                               max_alerts=args.max_alerts,
                               checkpoint_every=args.checkpoint_every,
                               seal_every=args.seal_every)
        print(f"[repro] resumed checkpoint {args.checkpoint} "
              f"(batch {engine.batch_seq}, log offset "
              f"{engine.last_offset}, {len(engine.rules)} rule(s))",
              file=sys.stderr)
    else:
        engine = DetectionEngine(
            DualStore(reduce=not args.no_reduction, retain_events=False,
                      layout=args.layout),
            policy=policy, max_alerts=args.max_alerts,
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            seal_every=args.seal_every)
    if args.rules:
        count = _load_rules_into(engine, args.rules, prune=True)
        print(f"[repro] {count} standing rule(s) loaded from {args.rules}",
              file=sys.stderr)

    def on_flush(report) -> None:
        if report.stored or report.alerts:
            print(f"[repro] batch {report.batch_seq}: stored "
                  f"{report.stored} event(s), {len(report.alerts)} "
                  f"alert(s)", file=sys.stderr)
        for alert in report.alerts:
            print(f"ALERT #{alert.alert_id} rule={alert.rule_id} "
                  f"new_events={list(alert.new_event_ids)}")
            for event in alert.matched_events:
                print(f"    {event['subject']} --{event['operation']}--> "
                      f"{event['object']}")

    tailer = LogTailer(args.log, offset=engine.last_offset)
    try:
        engine.follow(tailer, poll_interval=args.poll_interval,
                      once=args.once, on_flush=on_flush)
    except KeyboardInterrupt:   # pragma: no cover - interactive shutdown
        print("[repro] stopping tail", file=sys.stderr)
        engine.finalize()
    finally:
        engine.store.close()
    counters = engine.alerts.counters()
    print(f"[repro] tailed {engine.events_seen} event(s), stored "
          f"{engine.events_stored}, fired {counters['fired']} alert(s)",
          file=sys.stderr)
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    from .streaming import compile_rule, load_rules_directory

    if args.tbql:
        try:
            rule = compile_rule(args.tbql, "cli")
        except Exception as exc:    # ReproError subclasses
            print(f"invalid: {exc}")
            _print_diagnostic(exc)
            return 1
        kind = "time-dependent" if rule.time_dependent else "static"
        print(f"ok ({len(rule.parsed.patterns)} pattern(s), {kind})")
        return 0
    entries = load_rules_directory(args.dir)
    if not entries:
        print(f"no *.tbql rule files in {args.dir}")
        return 1
    failures = 0
    for rule_id, _text, rule, error in entries:
        if rule is not None:
            kind = "time-dependent" if rule.time_dependent else "static"
            print(f"  {rule_id:<24} ok    "
                  f"{len(rule.parsed.patterns)} pattern(s), {kind}")
        else:
            failures += 1
            print(f"  {rule_id:<24} ERROR {error}")
            _print_diagnostic(error, indent=" " * 28)
    print(f"{len(entries) - failures}/{len(entries)} rule(s) valid")
    return 1 if failures else 0


def _print_diagnostic(error: object, indent: str = "  ") -> None:
    """Print a parse error's source-context line and caret, if present."""
    diagnostic = getattr(error, "diagnostic", None)
    if diagnostic is None or not diagnostic.context:
        return
    print(f"{indent}{diagnostic.context}")
    print(f"{indent}{diagnostic.caret_line()}")


def cmd_query(args: argparse.Namespace) -> int:
    if args.snapshot:
        raptor = ThreatRaptor.open_snapshot(
            args.snapshot, workers=args.workers,
            scan_strategy=args.scan_strategy)
        print(f"[repro] opened snapshot {args.snapshot} "
              f"({raptor.store.relational.count_events()} events)",
              file=sys.stderr)
    else:
        raptor = _load_raptor(args.log, args.no_reduction,
                              workers=args.workers,
                              scan_strategy=args.scan_strategy)
    tbql = args.tbql if args.tbql else _read_text(args.query_file)
    from .errors import TBQLError
    from .obs.trace import start_trace
    try:
        if args.profile:
            with start_trace("query") as trace_root:
                result = raptor.execute_tbql(tbql)
        else:
            trace_root = None
            result = raptor.execute_tbql(tbql)
    except TBQLError as exc:
        print(f"invalid TBQL: {exc}", file=sys.stderr)
        diagnostic = getattr(exc, "diagnostic", None)
        if diagnostic is not None:
            print(diagnostic.render(), file=sys.stderr)
        raptor.store.close()
        return 2
    print(f"=== {len(result.rows)} result row(s) ===")
    for row in result.rows:
        print(" ", row)
    print("\n=== matched events ===")
    _print_events(result.matched_events)
    if args.explain:
        _print_plan(result)
    if args.profile:
        from .obs.trace import render_span_tree
        print("\n=== profile (span tree) ===")
        if trace_root is None:
            print("  (tracing disabled via REPRO_OBS=0)")
        else:
            print(render_span_tree(trace_root.as_dict()))
    raptor.store.close()
    return 0 if result.rows else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ThreatRaptor reproduction CLI")
    subparsers = parser.add_subparsers(dest="command", required=True)

    extract = subparsers.add_parser(
        "extract", help="extract a threat behavior graph from OSCTI text")
    extract.add_argument("--report", required=True,
                         help="path to the OSCTI report text file")
    extract.add_argument("--show-iocs", action="store_true",
                         help="also list the merged IOCs")
    extract.set_defaults(func=cmd_extract)

    synthesize = subparsers.add_parser(
        "synthesize", help="synthesize a TBQL query from OSCTI text")
    synthesize.add_argument("--report", required=True,
                            help="path to the OSCTI report text file")
    synthesize.add_argument("--path-patterns", action="store_true",
                            help="synthesize variable-length path patterns")
    synthesize.add_argument("--length1", action="store_true",
                            help="use length-1 (->) path patterns")
    synthesize.set_defaults(func=cmd_synthesize)

    hunt = subparsers.add_parser(
        "hunt", help="extract, synthesize, and execute against an audit log")
    hunt.add_argument("--report", required=True,
                      help="path to the OSCTI report text file")
    hunt.add_argument("--log", required=True,
                      help="path to an auditd-style log file")
    hunt.add_argument("--fuzzy-fallback", action="store_true",
                      help="fall back to fuzzy search when nothing matches")
    hunt.add_argument("--no-reduction", action="store_true",
                      help="disable data reduction at ingestion time")
    hunt.set_defaults(func=cmd_hunt)

    ingest = subparsers.add_parser(
        "ingest", help="load an audit log into the dual store and report "
                       "ingestion statistics")
    ingest.add_argument("--log", required=True,
                        help="path to an auditd-style log file")
    ingest.add_argument("--stats", action="store_true",
                        help="print the per-stage load breakdown (reduce, "
                             "build, relational, graph)")
    ingest.add_argument("--strategy", choices=["batched", "rowwise"],
                        default="batched",
                        help="load path: batched fast path (default) or the "
                             "row-at-a-time reference")
    ingest.add_argument("--no-reduction", action="store_true",
                        help="disable data reduction at ingestion time")
    ingest.set_defaults(func=cmd_ingest)

    snapshot = subparsers.add_parser(
        "snapshot", help="ingest an audit log once and persist the dual "
                         "store as an on-disk snapshot directory")
    snapshot.add_argument("--log", required=True,
                          help="path to an auditd-style log file")
    snapshot.add_argument("--out", required=True,
                          help="snapshot directory to write (created if "
                               "missing); holds the relational SQLite "
                               "database, the binary graph snapshot, and a "
                               "JSON manifest")
    snapshot.add_argument("--strategy", choices=["batched", "rowwise"],
                          default="batched",
                          help="ingestion load path (see 'ingest')")
    snapshot.add_argument("--layout", choices=["monolithic", "segmented"],
                          default="monolithic",
                          help="store layout: 'segmented' seals the "
                               "history into immutable time-bounded "
                               "segments the executor can prune and scan "
                               "in parallel (default: monolithic)")
    snapshot.add_argument("--segment-events", type=int, default=25000,
                          help="with --layout segmented: seal a segment "
                               "every N stored events (default: 25000)")
    snapshot.add_argument("--no-reduction", action="store_true",
                          help="disable data reduction at ingestion time")
    snapshot.set_defaults(func=cmd_snapshot)

    segments = subparsers.add_parser(
        "segments", help="list the segment manifests of a snapshot "
                         "(event-id ranges, time bounds, entity counts)")
    segments.add_argument("--snapshot", required=True,
                          help="snapshot directory written by 'repro "
                               "snapshot'")
    segments.add_argument("--verbose", action="store_true",
                          help="also print each segment's seal-time "
                               "statistics (zone maps, distinct sets, "
                               "entity types) used for scan pruning")
    segments.set_defaults(func=cmd_segments)

    compact = subparsers.add_parser(
        "compact", help="merge a segmented snapshot's undersized "
                        "segments into bigger ones")
    compact.add_argument("--snapshot", required=True,
                         help="segmented snapshot directory to compact")
    compact.add_argument("--out",
                         help="write the compacted snapshot here "
                              "(default: back over --snapshot)")
    compact.add_argument("--min-events", type=int, default=5000,
                         help="merge adjacent segments smaller than this "
                              "many events (default: 5000)")
    compact.set_defaults(func=cmd_compact)

    serve = subparsers.add_parser(
        "serve", help="serve TBQL queries and OSCTI hunts concurrently "
                      "over HTTP from a snapshot (or a freshly ingested "
                      "audit log)")
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument("--snapshot",
                        help="snapshot directory written by 'repro "
                             "snapshot'; opened read-only and shared by "
                             "all request threads")
    source.add_argument("--log",
                        help="audit log to ingest into an in-memory store "
                             "before serving (no persistence)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port (default: 8787; 0 picks a free port)")
    serve.add_argument("--plan-cache", type=int, default=128,
                       help="LRU entries for compiled TBQL plans "
                            "(default: 128; 0 disables)")
    serve.add_argument("--result-cache", type=int, default=256,
                       help="LRU entries for query results, keyed by query "
                            "text (default: 256; 0 disables)")
    serve.add_argument("--no-reduction", action="store_true",
                       help="with --log: disable data reduction")
    serve.add_argument("--layout", choices=["monolithic", "segmented"],
                       default="monolithic",
                       help="with --log: store layout for the ingested "
                            "data (snapshots carry their own layout)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes for parallel segment scans "
                            "over a segmented store (default: 1 = serial)")
    serve.add_argument("--scan-strategy",
                       choices=["columnar", "sqlite"], default="columnar",
                       help="segment scan path: 'columnar' reads the "
                            "memory-mapped events.col payload (default; "
                            "falls back to SQLite per segment when the "
                            "payload is absent), 'sqlite' always runs the "
                            "compiled pattern SQL")
    serve.add_argument("--server-backend",
                       choices=["asyncio", "threaded"], default="asyncio",
                       help="HTTP front end: asyncio event loop with "
                            "keep-alive connections, a bounded executor "
                            "pool and admission-queue backpressure "
                            "(default), or the legacy thread-per-"
                            "connection server")
    serve.add_argument("--exec-threads", type=int, default=0,
                       help="asyncio backend: executor threads running "
                            "TBQL off the event loop (0 = auto-size "
                            "from the CPU count)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="asyncio backend: admission-queue depth per "
                            "lane before requests are answered 429 "
                            "(default 64)")
    serve.add_argument("--max-body-bytes", type=int, default=None,
                       help="reject POST bodies larger than this with "
                            "413 (default 8 MiB; both backends)")
    serve.add_argument("--read-timeout", type=float, default=None,
                       help="asyncio backend: close keep-alive "
                            "connections idle or stalled longer than "
                            "this many seconds (default 30)")
    serve.add_argument("--checkpoint",
                       help="with --live: checkpoint the detection "
                            "engine into this directory on graceful "
                            "shutdown")
    serve.add_argument("--seal-every", type=int, default=0,
                       help="with --live: seal the active segment after "
                            "this many stored flushes (0 = only at "
                            "checkpoints; segmented stores only)")
    serve.add_argument("--live", action="store_true",
                       help="enable live ingestion + standing-query "
                            "detection (POST /ingest, /rules, /alerts); "
                            "snapshots reopen writable")
    serve.add_argument("--rules",
                       help="with --live: directory of *.tbql standing "
                            "rules to preload")
    serve.add_argument("--max-alerts", type=int, default=1000,
                       help="with --live: bounded alert-store capacity "
                            "(default: 1000)")
    serve.add_argument("--slow-query-ms", type=float, default=None,
                       help="log a structured JSON slow-query record "
                            "(with the embedded span-tree profile) to "
                            "stderr for any query slower than this many "
                            "milliseconds")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.set_defaults(func=cmd_serve)

    tail = subparsers.add_parser(
        "tail", help="follow a growing audit log, ingest it incrementally, "
                     "and evaluate standing TBQL detections per flush")
    tail.add_argument("--log", required=True,
                      help="audit log file to follow (may not exist yet)")
    tail.add_argument("--rules",
                      help="directory of *.tbql standing-rule files")
    tail.add_argument("--checkpoint",
                      help="checkpoint directory: resumed on start when it "
                           "holds stream state, written on finalize (and "
                           "every --checkpoint-every flushes)")
    tail.add_argument("--checkpoint-every", type=int, default=0,
                      help="checkpoint after this many stored flushes "
                           "(0 disables periodic checkpointing)")
    tail.add_argument("--batch-events", type=int, default=2000,
                      help="size flush trigger: buffered events that force "
                           "a flush (default: 2000)")
    tail.add_argument("--flush-interval", type=float, default=1.0,
                      help="time flush trigger in seconds (default: 1.0)")
    tail.add_argument("--poll-interval", type=float, default=0.5,
                      help="seconds between file polls (default: 0.5)")
    tail.add_argument("--max-alerts", type=int, default=1000,
                      help="bounded alert-store capacity (default: 1000)")
    tail.add_argument("--once", action="store_true",
                      help="drain the log to its current end, seal, "
                           "checkpoint, and exit (batch catch-up mode)")
    tail.add_argument("--no-reduction", action="store_true",
                      help="disable data reduction at ingestion time")
    tail.add_argument("--layout", choices=["monolithic", "segmented"],
                      default="monolithic",
                      help="store layout for the live store (checkpoints "
                           "of a segmented store carry their segments)")
    tail.add_argument("--seal-every", type=int, default=0,
                      help="seal the active segment after this many "
                           "stored flushes (0 = only at checkpoints; "
                           "segmented stores only)")
    tail.set_defaults(func=cmd_tail)

    rules = subparsers.add_parser(
        "rules", help="validate standing-rule files (TBQL compile check)")
    group = rules.add_mutually_exclusive_group(required=True)
    group.add_argument("--dir", help="directory of *.tbql rule files")
    group.add_argument("--tbql", help="validate a single rule text")
    rules.set_defaults(func=cmd_rules)

    query = subparsers.add_parser(
        "query", help="run a hand-written TBQL query against an audit "
                      "log or a snapshot")
    source = query.add_mutually_exclusive_group(required=True)
    source.add_argument("--log", help="audit log to ingest and query")
    source.add_argument("--snapshot",
                        help="snapshot directory to query (opened "
                             "read-only; segmented snapshots support "
                             "--workers)")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--tbql", help="TBQL query text")
    group.add_argument("--query-file", help="path to a file with TBQL text")
    query.add_argument("--workers", type=int, default=1,
                       help="worker processes for parallel segment scans "
                            "(default: 1 = serial)")
    query.add_argument("--scan-strategy",
                       choices=["columnar", "sqlite"], default="columnar",
                       help="segment scan path: 'columnar' reads the "
                            "memory-mapped events.col payload (default; "
                            "falls back to SQLite per segment when the "
                            "payload is absent), 'sqlite' always runs the "
                            "compiled pattern SQL")
    query.add_argument("--no-reduction", action="store_true",
                       help="disable data reduction at ingestion time")
    query.add_argument("--explain", action="store_true",
                       help="print the structured per-step execution plan "
                            "(backend, pruning score, candidate pushdown, "
                            "rows in/out, stage timings)")
    query.add_argument("--profile", action="store_true",
                       help="execute under a trace and print the span "
                            "tree (parse, plan, per-segment scans, join, "
                            "aggregation, hydration)")
    query.set_defaults(func=cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":     # pragma: no cover - exercised via main()
    sys.exit(main())
