"""Semantic analysis of parsed TBQL queries.

This stage expands TBQL's syntactic sugar and validates the query:

* bare value filters pick up the entity's default attribute ("name" for
  files, "exename" for processes, "dstip" for network connections);
* entity IDs reused across patterns must keep a consistent entity type and
  imply that the same concrete entity matches in every pattern;
* return items without an attribute return the entity's default attribute;
* every pattern gets a pattern ID (``evt1``, ``evt2``, ... when omitted);
* operation expressions are evaluated into concrete operation sets;
* time windows are normalized to epoch-second ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Optional

from ..audit.entities import EntityType, default_attribute_for
from ..errors import TBQLSemanticError
from .ast import (AttributeComparison, AttributeFilter, AttributeRelation,
                  BareValueFilter, BooleanFilter, MembershipFilter,
                  NegatedFilter, OperationAtom, OperationBoolean,
                  OperationExpr, OperationNegation, TBQLQuery,
                  TemporalRelation, TimeWindow)
from .parser import OPERATION_NAMES, TIME_UNIT_SECONDS

#: Attributes accepted per entity type (superset of Table II).
_ENTITY_ATTRIBUTES = {
    EntityType.FILE: {"name", "path", "user", "group", "type"},
    EntityType.PROCESS: {"exename", "pid", "user", "group", "cmdline",
                         "name", "type"},
    EntityType.NETWORK: {"srcip", "srcport", "dstip", "dstport", "protocol",
                         "name", "type"},
}

#: Event-level attributes accepted in pattern filters and with-clauses.
EVENT_ATTRIBUTES = {"operation", "start_time", "end_time", "duration",
                    "data_amount", "failure_code", "host", "category"}


@dataclass
class ResolvedEntity:
    """An entity reference with sugar expanded."""

    entity_id: str
    entity_type: EntityType
    attr_filter: Optional[AttributeFilter]

    @property
    def default_attribute(self) -> str:
        return default_attribute_for(self.entity_type)


@dataclass
class ResolvedPattern:
    """A pattern with defaults filled in, ready for compilation.

    ``negated`` marks an ``and not`` absence pattern: its matches are an
    anti-join veto set — they never bind candidates, never join, and never
    appear in matched/joined events.
    """

    index: int
    pattern_id: str
    subject: ResolvedEntity
    obj: ResolvedEntity
    operations: Optional[frozenset[str]]   # None means "any operation"
    is_path: bool = False
    path_fuzzy: bool = False
    min_length: int = 1
    max_length: Optional[int] = 1
    pattern_filter: Optional[AttributeFilter] = None
    window: Optional[tuple[Optional[float], Optional[float]]] = None
    negated: bool = False

    @property
    def constraint_count(self) -> int:
        """Number of declared constraints; the scheduler's pruning signal."""
        count = 0
        for filt in (self.subject.attr_filter, self.obj.attr_filter,
                     self.pattern_filter):
            count += _count_atoms(filt)
        if self.operations is not None:
            count += 1
        if self.window is not None:
            count += 1
        return count


@dataclass
class ResolvedAggregation:
    """Aggregating return clause, resolved.

    ``group_by`` lists the grouping keys as ``(entity id, attribute)``
    pairs in group order; ``output`` gives the output column order, one
    entry per declared return item, where ``None`` stands for the
    ``count`` column; ``top_n`` keeps only the N most frequent groups.
    """

    group_by: list[tuple[str, str]]
    output: list[Optional[tuple[str, str]]]
    top_n: Optional[int] = None


@dataclass
class ResolvedQuery:
    """The fully resolved form of a TBQL query.

    ``temporal_relations`` includes the ``then`` relations rewritten from
    the query's sequence links; ``aggregation`` is set when the return
    clause aggregates (``count()`` / ``group by`` / ``top``), in which
    case ``return_items`` holds the grouping keys.
    """

    patterns: list[ResolvedPattern]
    temporal_relations: list[TemporalRelation]
    attribute_relations: list[AttributeRelation]
    return_items: list[tuple[str, str]]        # (entity id, attribute)
    distinct: bool
    global_window: Optional[tuple[Optional[float], Optional[float]]] = None
    global_filters: list[AttributeFilter] = field(default_factory=list)
    entity_types: dict[str, EntityType] = field(default_factory=dict)
    aggregation: Optional[ResolvedAggregation] = None

    def pattern_by_id(self, pattern_id: str) -> ResolvedPattern:
        for pattern in self.patterns:
            if pattern.pattern_id == pattern_id:
                return pattern
        raise TBQLSemanticError(f"unknown pattern id: {pattern_id!r}")

    def shared_entities(self) -> dict[str, list[str]]:
        """Map entity id -> pattern ids referencing it (dependency info)."""
        sharing: dict[str, list[str]] = {}
        for pattern in self.patterns:
            for entity in (pattern.subject, pattern.obj):
                sharing.setdefault(entity.entity_id, []).append(
                    pattern.pattern_id)
        return sharing


def _count_atoms(filt: Optional[AttributeFilter]) -> int:
    if filt is None:
        return 0
    if isinstance(filt, (AttributeComparison, BareValueFilter,
                         MembershipFilter)):
        return 1
    if isinstance(filt, NegatedFilter):
        return _count_atoms(filt.operand)
    if isinstance(filt, BooleanFilter):
        return sum(_count_atoms(operand) for operand in filt.operands)
    return 0


# ---------------------------------------------------------------------------
# operation expressions
# ---------------------------------------------------------------------------


def evaluate_operation_expr(expr: Optional[OperationExpr]
                            ) -> Optional[frozenset[str]]:
    """Evaluate an operation expression into the set of allowed operations.

    ``None`` (no expression) means any operation is allowed.
    """
    if expr is None:
        return None
    return frozenset(op for op in OPERATION_NAMES
                     if _operation_matches(expr, op))


def _operation_matches(expr: OperationExpr, operation: str) -> bool:
    if isinstance(expr, OperationAtom):
        return expr.name == operation
    if isinstance(expr, OperationNegation):
        return not _operation_matches(expr.operand, operation)
    if isinstance(expr, OperationBoolean):
        if expr.operator == "&&":
            return all(_operation_matches(op, operation)
                       for op in expr.operands)
        return any(_operation_matches(op, operation) for op in expr.operands)
    raise TBQLSemanticError(f"unknown operation expression: {expr!r}")


# ---------------------------------------------------------------------------
# attribute filters
# ---------------------------------------------------------------------------


def expand_default_attributes(filt: Optional[AttributeFilter],
                              default_attribute: str,
                              allowed: set[str]) -> Optional[AttributeFilter]:
    """Rewrite bare-value filters into comparisons on the default attribute."""
    if filt is None:
        return None
    if isinstance(filt, BareValueFilter):
        operator = "!=" if filt.negated else "="
        return AttributeComparison(attribute=default_attribute,
                                   operator=operator, value=filt.value)
    if isinstance(filt, AttributeComparison):
        _check_attribute(filt.attribute, allowed)
        return filt
    if isinstance(filt, MembershipFilter):
        _check_attribute(filt.attribute, allowed)
        return filt
    if isinstance(filt, NegatedFilter):
        return NegatedFilter(expand_default_attributes(
            filt.operand, default_attribute, allowed))
    if isinstance(filt, BooleanFilter):
        return BooleanFilter(filt.operator, tuple(
            expand_default_attributes(operand, default_attribute, allowed)
            for operand in filt.operands))
    raise TBQLSemanticError(f"unknown attribute filter: {filt!r}")


def _check_attribute(attribute: str, allowed: set[str]) -> None:
    name = attribute.split(".")[-1]
    if name not in allowed and name not in EVENT_ATTRIBUTES:
        raise TBQLSemanticError(
            f"attribute {attribute!r} is not valid here; expected one of "
            f"{sorted(allowed | EVENT_ATTRIBUTES)}")


# ---------------------------------------------------------------------------
# time windows
# ---------------------------------------------------------------------------


def parse_datetime(value: str) -> float:
    """Parse a TBQL datetime literal into epoch seconds (UTC)."""
    try:
        return float(value)
    except ValueError:
        pass
    formats = ["%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d",
               "%Y/%m/%d %H:%M:%S", "%Y/%m/%d"]
    for fmt in formats:
        try:
            parsed = datetime.strptime(value, fmt)
            return parsed.replace(tzinfo=timezone.utc).timestamp()
        except ValueError:
            continue
    raise TBQLSemanticError(f"unparseable datetime literal: {value!r}")


def resolve_window(window: Optional[TimeWindow],
                   now: Optional[float] = None
                   ) -> Optional[tuple[Optional[float], Optional[float]]]:
    """Convert a parsed time window into an (earliest, latest) epoch range."""
    if window is None:
        return None
    if window.kind == "range":
        return (parse_datetime(window.start), parse_datetime(window.end))
    if window.kind == "at":
        moment = parse_datetime(window.start)
        return (moment, moment + 86400.0)
    if window.kind == "before":
        return (None, parse_datetime(window.start))
    if window.kind == "after":
        return (parse_datetime(window.start), None)
    if window.kind == "last":
        seconds = window.amount * TIME_UNIT_SECONDS[window.unit]
        reference = now if now is not None else \
            datetime.now(timezone.utc).timestamp()
        return (reference - seconds, reference)
    raise TBQLSemanticError(f"unknown window kind: {window.kind!r}")


# ---------------------------------------------------------------------------
# query resolution
# ---------------------------------------------------------------------------


def effective_window(pattern: "ResolvedPattern", query: "ResolvedQuery"
                     ) -> Optional[tuple[Optional[float], Optional[float]]]:
    """The time window that actually constrains ``pattern``.

    A pattern-level window overrides the query's global window — the
    precedence the SQL compiler renders into the ``WHERE`` clause.  The
    executor's segment pruning consults the same helper, so "which
    segments can this pattern touch" and "which rows does the compiled
    predicate keep" can never disagree.
    """
    return pattern.window or query.global_window


def query_is_time_dependent(query: TBQLQuery) -> bool:
    """True when resolving the query reads the wall clock.

    A ``last N unit`` window resolves relative to *now*, so both its
    resolved plan and its results go stale; the query service re-resolves
    such queries per request (and never result-caches them), and the
    standing-query engine re-resolves them per flush against the event-time
    watermark.

    The v2 operators never read the clock themselves: ``then`` gaps,
    ``and not`` absence patterns, and ``count``/``group by`` aggregation
    are all evaluated over stored event times, so only windows matter —
    including a ``last N`` window on an ``and not`` pattern, which is why
    the scan below covers every pattern, negated or not.
    """
    for pattern in query.patterns:
        window = getattr(pattern, "window", None)
        if window is not None and window.kind == "last":
            return True
    for global_filter in query.global_filters:
        window = global_filter.window
        if window is not None and window.kind == "last":
            return True
    return False


def resolve_query(query: TBQLQuery, now: Optional[float] = None
                  ) -> ResolvedQuery:
    """Expand sugar and validate a parsed query."""
    if not query.patterns:
        raise TBQLSemanticError("a TBQL query needs at least one pattern")
    entity_types: dict[str, EntityType] = {}
    resolved_patterns: list[ResolvedPattern] = []
    used_ids: set[str] = set(pid for pid in query.pattern_ids())
    auto_counter = 1
    for index, pattern in enumerate(query.patterns):
        pattern_id = pattern.pattern_id
        if pattern_id is None:
            while f"evt{auto_counter}" in used_ids:
                auto_counter += 1
            pattern_id = f"evt{auto_counter}"
            used_ids.add(pattern_id)
        subject = _resolve_entity(pattern.subject, entity_types)
        obj = _resolve_entity(pattern.obj, entity_types)
        if subject.entity_type is not EntityType.PROCESS:
            raise TBQLSemanticError(
                f"pattern {pattern_id!r}: the subject of a system event must "
                "be a process entity")
        is_path = pattern.is_path_pattern
        if is_path:
            path = pattern.path
            operations = evaluate_operation_expr(path.operation)
            min_length, max_length = path.min_length, path.max_length
            path_fuzzy = path.fuzzy_arrow
        else:
            operations = evaluate_operation_expr(pattern.operation)
            min_length, max_length = 1, 1
            path_fuzzy = False
        resolved_patterns.append(ResolvedPattern(
            index=index, pattern_id=pattern_id, subject=subject, obj=obj,
            operations=operations, is_path=is_path, path_fuzzy=path_fuzzy,
            min_length=min_length, max_length=max_length,
            pattern_filter=pattern.pattern_filter,
            window=resolve_window(pattern.window, now),
            negated=pattern.negated))
    if all(pattern.negated for pattern in resolved_patterns):
        raise TBQLSemanticError(
            "a query cannot consist solely of 'and not' absence patterns")
    temporal, attribute = _split_relations(query, used_ids, entity_types)
    temporal = temporal + _resolve_sequence_links(query, resolved_patterns)
    positive_entities = {entity_id
                         for pattern in resolved_patterns
                         if not pattern.negated
                         for entity_id in (pattern.subject.entity_id,
                                           pattern.obj.entity_id)}
    _check_negation_references(resolved_patterns, temporal, attribute,
                               positive_entities)
    return_items, aggregation = _resolve_return(query, entity_types,
                                                positive_entities)
    global_window, global_filters = _resolve_globals(query, now)
    return ResolvedQuery(patterns=resolved_patterns,
                         temporal_relations=temporal,
                         attribute_relations=attribute,
                         return_items=return_items,
                         distinct=bool(query.return_clause and
                                       query.return_clause.distinct),
                         global_window=global_window,
                         global_filters=global_filters,
                         entity_types=entity_types,
                         aggregation=aggregation)


def _resolve_entity(entity, entity_types: dict[str, EntityType]
                    ) -> ResolvedEntity:
    known = entity_types.get(entity.entity_id)
    if known is not None and known is not entity.entity_type:
        raise TBQLSemanticError(
            f"entity id {entity.entity_id!r} is used with conflicting types "
            f"({known.value} vs {entity.entity_type.value})")
    entity_types[entity.entity_id] = entity.entity_type
    default_attr = default_attribute_for(entity.entity_type)
    allowed = _ENTITY_ATTRIBUTES[entity.entity_type]
    attr_filter = expand_default_attributes(entity.attr_filter, default_attr,
                                            allowed)
    return ResolvedEntity(entity_id=entity.entity_id,
                          entity_type=entity.entity_type,
                          attr_filter=attr_filter)


def _split_relations(query: TBQLQuery, pattern_ids: set[str],
                     entity_types: dict[str, EntityType]
                     ) -> tuple[list[TemporalRelation],
                                list[AttributeRelation]]:
    temporal: list[TemporalRelation] = []
    attribute: list[AttributeRelation] = []
    for relation in query.relations:
        if isinstance(relation, TemporalRelation):
            for side in (relation.left, relation.right):
                if side not in pattern_ids:
                    raise TBQLSemanticError(
                        f"with-clause references unknown pattern id {side!r}")
            temporal.append(relation)
        else:
            for side in (relation.left, relation.right):
                entity_id = side.split(".")[0]
                if entity_id not in entity_types and \
                        entity_id not in pattern_ids:
                    raise TBQLSemanticError(
                        f"with-clause references unknown id {entity_id!r}")
            attribute.append(relation)
    return temporal, attribute


def _resolve_sequence_links(query: TBQLQuery,
                            patterns: list[ResolvedPattern]
                            ) -> list[TemporalRelation]:
    """Rewrite parse-time sequence links into ``then`` temporal relations."""
    relations: list[TemporalRelation] = []
    for link in query.sequence_links:
        left = patterns[link.left_index]
        right = patterns[link.right_index]
        if left.negated or right.negated:
            raise TBQLSemanticError(
                "'then' cannot sequence an 'and not' absence pattern")
        relations.append(TemporalRelation(
            left=left.pattern_id, kind="then", right=right.pattern_id,
            max_gap=link.max_gap, unit=link.unit))
    return relations


def _check_negation_references(patterns: list[ResolvedPattern],
                               temporal: list[TemporalRelation],
                               attribute: list[AttributeRelation],
                               positive_entities: set[str]) -> None:
    """Reject with-clause references into absence patterns.

    An ``and not`` pattern never joins, so a relation that reads its
    bindings could only ever evaluate vacuously; failing loudly beats a
    constraint that silently never constrains.
    """
    negated_ids = {pattern.pattern_id for pattern in patterns
                   if pattern.negated}
    negation_only_entities = {
        entity_id for pattern in patterns if pattern.negated
        for entity_id in (pattern.subject.entity_id,
                          pattern.obj.entity_id)} - positive_entities
    for relation in temporal:
        if relation.kind == "then":
            continue        # sequence links are validated at rewrite time
        for side in (relation.left, relation.right):
            if side in negated_ids:
                raise TBQLSemanticError(
                    f"temporal relation references pattern {side!r}, which "
                    "is an 'and not' absence pattern")
    for relation in attribute:
        for side in (relation.left, relation.right):
            referenced = side.split(".")[0]
            if referenced in negated_ids:
                raise TBQLSemanticError(
                    f"attribute relation references {side!r}, which "
                    "belongs to an 'and not' absence pattern")
            if referenced in negation_only_entities:
                raise TBQLSemanticError(
                    f"attribute relation references {side!r}, an entity "
                    "bound only by an 'and not' absence pattern")


def _resolve_return(query: TBQLQuery,
                    entity_types: dict[str, EntityType],
                    positive_entities: set[str]
                    ) -> tuple[list[tuple[str, str]],
                               Optional[ResolvedAggregation]]:
    if query.return_clause is None:
        # Default: every positively-bound entity's default attribute
        # (absence patterns cannot produce values — they never join).
        return [(entity_id, default_attribute_for(entity_type))
                for entity_id, entity_type in entity_types.items()
                if entity_id in positive_entities], None

    def resolve_item(item) -> tuple[str, str]:
        if item.entity_id not in entity_types:
            raise TBQLSemanticError(
                f"return clause references unknown entity id "
                f"{item.entity_id!r}")
        if item.entity_id not in positive_entities:
            raise TBQLSemanticError(
                f"return clause references {item.entity_id!r}, an entity "
                "bound only by an 'and not' absence pattern")
        attribute = item.attribute or default_attribute_for(
            entity_types[item.entity_id])
        return (item.entity_id, attribute)

    clause = query.return_clause
    count_items = [item for item in clause.items
                   if item.aggregate is not None]
    if not count_items:
        if clause.group_by:
            raise TBQLSemanticError(
                "'group by' requires a count() return item")
        if clause.top_n is not None:
            raise TBQLSemanticError("'top' requires a count() return item")
        return [resolve_item(item) for item in clause.items], None
    if len(count_items) > 1:
        raise TBQLSemanticError(
            "a return clause may hold at most one count() item")
    if clause.distinct:
        raise TBQLSemanticError(
            "'distinct' cannot be combined with count() — counting "
            "deduplicated rows is ambiguous; group by the row instead")
    plain = [resolve_item(item) for item in clause.items
             if item.aggregate is None]
    if clause.group_by:
        group_by = list(dict.fromkeys(
            resolve_item(item) for item in clause.group_by))
        for pair in plain:
            if pair not in group_by:
                raise TBQLSemanticError(
                    f"return item {pair[0]}.{pair[1]} must appear in the "
                    "'group by' clause")
    else:
        # Implicit grouping: every plain return item is a grouping key.
        group_by = list(dict.fromkeys(plain))
    output: list[Optional[tuple[str, str]]] = [
        None if item.aggregate is not None else resolve_item(item)
        for item in clause.items]
    aggregation = ResolvedAggregation(group_by=group_by, output=output,
                                      top_n=clause.top_n)
    return list(group_by), aggregation


def _resolve_globals(query: TBQLQuery, now: Optional[float]
                     ) -> tuple[Optional[tuple], list[AttributeFilter]]:
    window = None
    filters: list[AttributeFilter] = []
    for global_filter in query.global_filters:
        if global_filter.window is not None:
            window = resolve_window(global_filter.window, now)
        if global_filter.attr_filter is not None:
            filters.append(global_filter.attr_filter)
    return window, filters


__all__ = [
    "ResolvedAggregation",
    "ResolvedEntity",
    "ResolvedPattern",
    "ResolvedQuery",
    "EVENT_ATTRIBUTES",
    "effective_window",
    "evaluate_operation_expr",
    "expand_default_attributes",
    "parse_datetime",
    "query_is_time_dependent",
    "resolve_window",
    "resolve_query",
]
