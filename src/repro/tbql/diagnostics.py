"""Structured parse diagnostics for TBQL.

A failed lex or parse produces a :class:`ParseDiagnostic` — message,
1-based line/column, and the offending source line with a caret — instead
of a bare message string.  The diagnostic travels on
:class:`~repro.errors.TBQLSyntaxError` so every consumer (``repro query``,
``repro rules``, the ``POST /query`` / ``POST /rules`` 400 payloads)
renders the same pinpointed error without re-parsing anything.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParseDiagnostic:
    """One structured parse error location.

    Attributes:
        message: what went wrong, without any location prefix.
        line: 1-based source line of the offending token.
        column: 1-based column of the offending token.
        context: the full text of source line ``line`` (empty when the
            location points past the end of the source).
    """

    message: str
    line: int
    column: int
    context: str

    def caret_line(self) -> str:
        """Whitespace padding plus a ``^`` under column ``column``."""
        return " " * max(self.column - 1, 0) + "^"

    def render(self) -> str:
        """Multi-line human rendering: message, context line, caret."""
        header = f"line {self.line}, column {self.column}: {self.message}"
        if not self.context:
            return header
        return f"{header}\n  {self.context}\n  {self.caret_line()}"

    def as_dict(self) -> dict:
        """JSON-ready view for service error payloads."""
        return {"message": self.message, "line": self.line,
                "column": self.column, "context": self.context}


def source_line(source: str, line: int) -> str:
    """Return 1-based line ``line`` of ``source`` (``""`` out of range)."""
    lines = source.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def make_diagnostic(source: str, message: str, line: int,
                    column: int) -> ParseDiagnostic:
    """Build a diagnostic with the context line extracted from ``source``."""
    return ParseDiagnostic(message=message, line=line, column=column,
                           context=source_line(source, line))


__all__ = ["ParseDiagnostic", "make_diagnostic", "source_line"]
