"""Recursive-descent parser for TBQL (Grammar 1)."""

from __future__ import annotations

from typing import Optional

from ..audit.entities import EntityType
from ..errors import TBQLSyntaxError
from .ast import (AttributeComparison, AttributeFilter, AttributeRelation,
                  BareValueFilter, BooleanFilter, EntityDecl, EventPattern,
                  GlobalFilter, MembershipFilter, NegatedFilter,
                  OperationAtom, OperationBoolean, OperationExpr,
                  OperationNegation, OperationPath, PatternRelation,
                  ReturnClause, ReturnItem, TBQLQuery, TemporalRelation,
                  TimeWindow)
from .lexer import Token, tokenize, unescape_string

#: Operation names accepted by the ``<op>`` rule.
OPERATION_NAMES = {
    "read", "write", "execute", "start", "end", "rename", "delete",
    "connect", "accept", "send", "receive", "open", "chmod", "fork",
}

_TIME_UNITS = {"sec": 1.0, "second": 1.0, "seconds": 1.0, "s": 1.0,
               "min": 60.0, "minute": 60.0, "minutes": 60.0, "m": 60.0,
               "hour": 3600.0, "hours": 3600.0, "h": 3600.0,
               "day": 86400.0, "days": 86400.0, "d": 86400.0}

_ENTITY_KEYWORDS = {"proc": EntityType.PROCESS, "file": EntityType.FILE,
                    "ip": EntityType.NETWORK}

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class TBQLParser:
    """Parses TBQL source text into a :class:`TBQLQuery`."""

    def __init__(self, source: str) -> None:
        self.source = source
        self._tokens = tokenize(source)
        self._index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _check(self, kind: str, text: str | None = None,
               offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind: str, text: str | None = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            expected = text if text is not None else kind
            raise TBQLSyntaxError(
                f"expected {expected!r} but found {actual.text!r}",
                actual.line, actual.column)
        return token

    def _error(self, message: str) -> TBQLSyntaxError:
        token = self._peek()
        return TBQLSyntaxError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # grammar: query
    # ------------------------------------------------------------------
    def parse(self) -> TBQLQuery:
        query = TBQLQuery()
        while not self._at_pattern_start() and not self._check(
                "keyword", "return") and not self._check("eof"):
            query.global_filters.append(self._global_filter())
        if not self._at_pattern_start():
            raise self._error("a TBQL query must declare at least one "
                              "event pattern")
        while self._at_pattern_start():
            query.patterns.append(self._pattern())
        while self._accept("keyword", "with"):
            query.relations.append(self._relation())
            while self._accept("symbol", ","):
                query.relations.append(self._relation())
        if self._accept("keyword", "return"):
            query.return_clause = self._return_clause()
        self._expect("eof")
        return query

    def _at_pattern_start(self) -> bool:
        return self._check("keyword") and self._peek().text in \
            _ENTITY_KEYWORDS

    # ------------------------------------------------------------------
    # global filters and time windows
    # ------------------------------------------------------------------
    def _global_filter(self) -> GlobalFilter:
        if self._check("keyword") and self._peek().text in ("from", "at",
                                                            "before", "after",
                                                            "last"):
            return GlobalFilter(window=self._window())
        return GlobalFilter(attr_filter=self._attribute_expression())

    def _window(self) -> TimeWindow:
        token = self._advance()
        if token.text == "from":
            start = self._datetime_value()
            self._expect("keyword", "to")
            end = self._datetime_value()
            return TimeWindow(kind="range", start=start, end=end)
        if token.text in ("at", "before", "after"):
            return TimeWindow(kind=token.text, start=self._datetime_value())
        if token.text == "last":
            amount = float(self._expect("number").text)
            unit = self._time_unit()
            return TimeWindow(kind="last", amount=amount, unit=unit)
        raise self._error(f"invalid time window starting with {token.text!r}")

    def _datetime_value(self) -> str:
        token = self._peek()
        if token.kind == "string":
            self._advance()
            return unescape_string(token.text)
        if token.kind == "number":
            self._advance()
            return token.text
        raise self._error("expected a datetime literal (string or epoch "
                          "number)")

    def _time_unit(self) -> str:
        token = self._peek()
        if token.kind in ("ident", "keyword") and \
                token.text.lower() in _TIME_UNITS:
            self._advance()
            return token.text.lower()
        raise self._error(f"expected a time unit, found {token.text!r}")

    # ------------------------------------------------------------------
    # patterns
    # ------------------------------------------------------------------
    def _pattern(self) -> EventPattern:
        subject = self._entity()
        operation: OperationExpr | None = None
        path: OperationPath | None = None
        if self._check("symbol", "~>") or self._check("symbol", "->"):
            path = self._operation_path()
        else:
            operation = self._operation_expression()
        obj = self._entity()
        pattern_id = None
        pattern_filter = None
        if self._accept("keyword", "as"):
            pattern_id = self._expect("ident").text
            if self._accept("symbol", "["):
                pattern_filter = self._attribute_expression()
                self._expect("symbol", "]")
        window = None
        if self._check("keyword") and self._peek().text in (
                "from", "at", "last") or (
                self._check("keyword", "before") and
                not self._is_relation_context()) or (
                self._check("keyword", "after") and
                not self._is_relation_context()):
            window = self._window()
        return EventPattern(subject=subject, obj=obj, operation=operation,
                            path=path, pattern_id=pattern_id,
                            pattern_filter=pattern_filter, window=window)

    def _is_relation_context(self) -> bool:
        # "before"/"after" directly following a pattern belongs to a window;
        # inside a with-clause it is a temporal relation keyword.  The parser
        # only calls this from pattern context, where a following identifier
        # (another pattern id) never occurs, so a datetime literal means a
        # window.
        return not (self._check("string", offset=1) or
                    self._check("number", offset=1))

    def _entity(self) -> EntityDecl:
        type_token = self._expect("keyword")
        if type_token.text not in _ENTITY_KEYWORDS:
            raise TBQLSyntaxError(
                f"unknown entity type {type_token.text!r}",
                type_token.line, type_token.column)
        entity_type = _ENTITY_KEYWORDS[type_token.text]
        id_token = self._expect("ident")
        attr_filter = None
        if self._accept("symbol", "["):
            attr_filter = self._attribute_expression()
            self._expect("symbol", "]")
        return EntityDecl(entity_type=entity_type, entity_id=id_token.text,
                          attr_filter=attr_filter)

    # ------------------------------------------------------------------
    # operations and paths
    # ------------------------------------------------------------------
    def _operation_expression(self) -> OperationExpr:
        return self._operation_or()

    def _operation_or(self) -> OperationExpr:
        operands = [self._operation_and()]
        while self._accept("symbol", "||"):
            operands.append(self._operation_and())
        if len(operands) == 1:
            return operands[0]
        return OperationBoolean("||", tuple(operands))

    def _operation_and(self) -> OperationExpr:
        operands = [self._operation_unary()]
        while self._accept("symbol", "&&"):
            operands.append(self._operation_unary())
        if len(operands) == 1:
            return operands[0]
        return OperationBoolean("&&", tuple(operands))

    def _operation_unary(self) -> OperationExpr:
        if self._accept("symbol", "!"):
            return OperationNegation(self._operation_unary())
        if self._accept("symbol", "("):
            inner = self._operation_or()
            self._expect("symbol", ")")
            return inner
        token = self._expect("ident")
        name = token.text.lower()
        if name not in OPERATION_NAMES:
            raise TBQLSyntaxError(f"unknown operation {token.text!r}",
                                  token.line, token.column)
        return OperationAtom(name)

    def _operation_path(self) -> OperationPath:
        arrow = self._advance()
        fuzzy_arrow = arrow.text == "~>"
        min_length, max_length = 1, (None if fuzzy_arrow else 1)
        if self._accept("symbol", "("):
            min_length, max_length = self._path_range()
            self._expect("symbol", ")")
        operation = None
        if self._accept("symbol", "["):
            operation = self._operation_expression()
            self._expect("symbol", "]")
        if not fuzzy_arrow:
            min_length, max_length = 1, 1
        return OperationPath(fuzzy_arrow=fuzzy_arrow, min_length=min_length,
                             max_length=max_length, operation=operation)

    def _path_range(self) -> tuple[int, Optional[int]]:
        minimum = 1
        maximum: Optional[int] = None
        if self._check("number"):
            minimum = int(float(self._advance().text))
            maximum = minimum
        if self._accept("symbol", "~"):
            maximum = None
            if self._check("number"):
                maximum = int(float(self._advance().text))
        if minimum < 1 or (maximum is not None and maximum < minimum):
            raise self._error(f"invalid path length range "
                              f"({minimum}~{maximum})")
        return minimum, maximum

    # ------------------------------------------------------------------
    # attribute expressions
    # ------------------------------------------------------------------
    def _attribute_expression(self) -> AttributeFilter:
        return self._attribute_or()

    def _attribute_or(self) -> AttributeFilter:
        operands = [self._attribute_and()]
        while self._accept("symbol", "||"):
            operands.append(self._attribute_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanFilter("||", tuple(operands))

    def _attribute_and(self) -> AttributeFilter:
        operands = [self._attribute_unary()]
        while self._accept("symbol", "&&"):
            operands.append(self._attribute_unary())
        if len(operands) == 1:
            return operands[0]
        return BooleanFilter("&&", tuple(operands))

    def _attribute_unary(self) -> AttributeFilter:
        if self._accept("symbol", "!"):
            operand = self._attribute_unary()
            if isinstance(operand, BareValueFilter):
                return BareValueFilter(operand.value, negated=True)
            return NegatedFilter(operand)
        if self._accept("symbol", "("):
            inner = self._attribute_or()
            self._expect("symbol", ")")
            return inner
        return self._attribute_atom()

    def _attribute_atom(self) -> AttributeFilter:
        token = self._peek()
        if token.kind in ("string", "number"):
            self._advance()
            return BareValueFilter(self._literal_value(token))
        if token.kind in ("ident", "keyword"):
            attribute = self._attribute_name()
            negated = self._accept("keyword", "not") is not None
            if self._accept("keyword", "in"):
                values = self._value_set()
                return MembershipFilter(attribute=attribute, values=values,
                                        negated=negated)
            if negated:
                raise self._error("'not' must be followed by 'in'")
            operator_token = self._peek()
            if operator_token.kind == "symbol" and \
                    operator_token.text in _COMPARISON_OPS:
                self._advance()
                value_token = self._peek()
                if value_token.kind not in ("string", "number"):
                    raise self._error("expected a literal value after "
                                      f"{operator_token.text!r}")
                self._advance()
                return AttributeComparison(attribute=attribute,
                                           operator=operator_token.text,
                                           value=self._literal_value(
                                               value_token))
            raise self._error("expected a comparison operator or 'in' after "
                              f"attribute {attribute!r}")
        raise self._error(f"unexpected token {token.text!r} in attribute "
                          "expression")

    def _attribute_name(self) -> str:
        first = self._advance()
        name = first.text
        if self._accept("symbol", "."):
            second = self._expect("ident")
            name = f"{name}.{second.text}"
        return name

    def _value_set(self) -> tuple:
        self._expect("symbol", "{")
        values = []
        if not self._check("symbol", "}"):
            while True:
                token = self._peek()
                if token.kind not in ("string", "number"):
                    raise self._error("expected a literal inside a value set")
                self._advance()
                values.append(self._literal_value(token))
                if not self._accept("symbol", ","):
                    break
        self._expect("symbol", "}")
        return tuple(values)

    @staticmethod
    def _literal_value(token: Token):
        if token.kind == "string":
            return unescape_string(token.text)
        value = float(token.text)
        return int(value) if value.is_integer() else value

    # ------------------------------------------------------------------
    # pattern relationships
    # ------------------------------------------------------------------
    def _relation(self) -> PatternRelation:
        left = self._attribute_name()
        token = self._peek()
        if token.kind == "keyword" and token.text in ("before", "after",
                                                      "within"):
            self._advance()
            min_gap = max_gap = None
            unit = None
            if self._accept("symbol", "["):
                min_gap = float(self._expect("number").text)
                self._expect("symbol", "-")
                max_gap = float(self._expect("number").text)
                unit = self._time_unit()
                self._expect("symbol", "]")
            right = self._expect("ident").text
            return TemporalRelation(left=left, kind=token.text, right=right,
                                    min_gap=min_gap, max_gap=max_gap,
                                    unit=unit)
        if token.kind == "symbol" and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._attribute_name()
            return AttributeRelation(left=left, operator=token.text,
                                     right=right)
        raise self._error("expected 'before', 'after', 'within', or a "
                          "comparison operator in a with-clause")

    # ------------------------------------------------------------------
    # return clause
    # ------------------------------------------------------------------
    def _return_clause(self) -> ReturnClause:
        distinct = self._accept("keyword", "distinct") is not None
        items = [self._return_item()]
        while self._accept("symbol", ","):
            items.append(self._return_item())
        return ReturnClause(items=tuple(items), distinct=distinct)

    def _return_item(self) -> ReturnItem:
        entity_id = self._expect("ident").text
        attribute = None
        if self._accept("symbol", "."):
            attribute = self._expect("ident").text
        return ReturnItem(entity_id=entity_id, attribute=attribute)


def parse_tbql(source: str) -> TBQLQuery:
    """Parse TBQL source text into a :class:`TBQLQuery`."""
    return TBQLParser(source).parse()


#: Conversion table from time-unit spellings to seconds (shared with the
#: executor for evaluating ``before[0-5 min]`` style constraints).
TIME_UNIT_SECONDS = dict(_TIME_UNITS)


__all__ = ["TBQLParser", "parse_tbql", "OPERATION_NAMES",
           "TIME_UNIT_SECONDS"]
