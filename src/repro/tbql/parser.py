"""Recursive-descent parser for TBQL (Grammar 1)."""

from __future__ import annotations

from typing import Optional

from ..audit.entities import EntityType
from ..errors import TBQLSyntaxError
from .ast import (AttributeComparison, AttributeFilter, AttributeRelation,
                  BareValueFilter, BooleanFilter, EntityDecl, EventPattern,
                  GlobalFilter, MembershipFilter, NegatedFilter,
                  OperationAtom, OperationBoolean, OperationExpr,
                  OperationNegation, OperationPath, PatternRelation,
                  ReturnClause, ReturnItem, SequenceLink, TBQLQuery,
                  TemporalRelation, TimeWindow)
from .diagnostics import make_diagnostic
from .lexer import Token, tokenize, unescape_string

#: Operation names accepted by the ``<op>`` rule.
OPERATION_NAMES = {
    "read", "write", "execute", "start", "end", "rename", "delete",
    "connect", "accept", "send", "receive", "open", "chmod", "fork",
}

_TIME_UNITS = {"sec": 1.0, "second": 1.0, "seconds": 1.0, "s": 1.0,
               "min": 60.0, "minute": 60.0, "minutes": 60.0, "m": 60.0,
               "hour": 3600.0, "hours": 3600.0, "h": 3600.0,
               "day": 86400.0, "days": 86400.0, "d": 86400.0}

_ENTITY_KEYWORDS = {"proc": EntityType.PROCESS, "file": EntityType.FILE,
                    "ip": EntityType.NETWORK}

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class TBQLParser:
    """Parses TBQL source text into a :class:`TBQLQuery`."""

    def __init__(self, source: str) -> None:
        self.source = source
        self._tokens = tokenize(source)
        self._index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _check(self, kind: str, text: str | None = None,
               offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind: str, text: str | None = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            expected = text if text is not None else kind
            raise self._syntax_error(
                f"expected {expected!r} but found {actual.text!r}", actual)
        return token

    def _error(self, message: str) -> TBQLSyntaxError:
        return self._syntax_error(message)

    def _syntax_error(self, message: str,
                      token: Token | None = None) -> TBQLSyntaxError:
        """Build a syntax error carrying a structured diagnostic."""
        token = token if token is not None else self._peek()
        return TBQLSyntaxError(
            message, token.line, token.column,
            diagnostic=make_diagnostic(self.source, message, token.line,
                                       token.column))

    # ------------------------------------------------------------------
    # grammar: query
    # ------------------------------------------------------------------
    def parse(self) -> TBQLQuery:
        query = TBQLQuery()
        while not self._at_pattern_start() and \
                not self._at_negation_start() and not self._check(
                "keyword", "return") and not self._check("eof"):
            query.global_filters.append(self._global_filter())
        if self._at_negation_start():
            # Parsed so semantics can reject all-absence queries with a
            # dedicated message rather than a generic parse error.
            self._advance()    # 'and'
            self._advance()    # 'not'
            if not self._at_pattern_start():
                raise self._error(
                    "expected an event pattern after 'and not'")
            query.patterns.append(self._pattern(negated=True))
        elif not self._at_pattern_start():
            raise self._error("a TBQL query must declare at least one "
                              "event pattern")
        else:
            query.patterns.append(self._pattern())
        while True:
            if self._check("keyword", "then"):
                query.sequence_links.append(self._sequence_link(query))
            elif self._at_negation_start():
                self._advance()    # 'and'
                self._advance()    # 'not'
                if not self._at_pattern_start():
                    raise self._error(
                        "expected an event pattern after 'and not'")
                query.patterns.append(self._pattern(negated=True))
            elif self._at_pattern_start():
                query.patterns.append(self._pattern())
            else:
                break
        while self._accept("keyword", "with"):
            query.relations.append(self._relation())
            while self._accept("symbol", ","):
                query.relations.append(self._relation())
        if self._accept("keyword", "return"):
            query.return_clause = self._return_clause()
        self._expect("eof")
        return query

    def _at_pattern_start(self) -> bool:
        return self._check("keyword") and self._peek().text in \
            _ENTITY_KEYWORDS

    def _at_negation_start(self) -> bool:
        # 'and' is deliberately not a keyword; the pair "and not" before a
        # pattern introduces an absence pattern.
        return self._check("ident", "and") and \
            self._check("keyword", "not", offset=1)

    def _sequence_link(self, query: TBQLQuery) -> SequenceLink:
        """Parse ``then[<gap> <unit>]? <pattern>``; appends the pattern."""
        self._expect("keyword", "then")
        max_gap = None
        unit = None
        if self._accept("symbol", "["):
            max_gap = float(self._expect("number").text)
            unit = self._time_unit()
            self._expect("symbol", "]")
        left_index = len(query.patterns) - 1
        if self._at_negation_start():
            raise self._error("'then' cannot chain into an 'and not' "
                              "absence pattern")
        if not self._at_pattern_start():
            raise self._error("expected an event pattern after 'then'")
        query.patterns.append(self._pattern())
        return SequenceLink(left_index=left_index,
                            right_index=len(query.patterns) - 1,
                            max_gap=max_gap, unit=unit)

    # ------------------------------------------------------------------
    # global filters and time windows
    # ------------------------------------------------------------------
    def _global_filter(self) -> GlobalFilter:
        if self._check("keyword") and self._peek().text in ("from", "at",
                                                            "before", "after",
                                                            "last"):
            return GlobalFilter(window=self._window())
        return GlobalFilter(attr_filter=self._attribute_expression())

    def _window(self) -> TimeWindow:
        token = self._advance()
        if token.text == "from":
            start = self._datetime_value()
            self._expect("keyword", "to")
            end = self._datetime_value()
            return TimeWindow(kind="range", start=start, end=end)
        if token.text in ("at", "before", "after"):
            return TimeWindow(kind=token.text, start=self._datetime_value())
        if token.text == "last":
            amount = float(self._expect("number").text)
            unit = self._time_unit()
            return TimeWindow(kind="last", amount=amount, unit=unit)
        raise self._error(f"invalid time window starting with {token.text!r}")

    def _datetime_value(self) -> str:
        token = self._peek()
        if token.kind == "string":
            self._advance()
            return unescape_string(token.text)
        if token.kind == "number":
            self._advance()
            return token.text
        raise self._error("expected a datetime literal (string or epoch "
                          "number)")

    def _time_unit(self) -> str:
        token = self._peek()
        if token.kind in ("ident", "keyword") and \
                token.text.lower() in _TIME_UNITS:
            self._advance()
            return token.text.lower()
        raise self._error(f"expected a time unit, found {token.text!r}")

    # ------------------------------------------------------------------
    # patterns
    # ------------------------------------------------------------------
    def _pattern(self, negated: bool = False) -> EventPattern:
        subject = self._entity()
        operation: OperationExpr | None = None
        path: OperationPath | None = None
        if self._check("symbol", "~>") or self._check("symbol", "->"):
            path = self._operation_path()
        else:
            operation = self._operation_expression()
        obj = self._entity()
        pattern_id = None
        pattern_filter = None
        if self._accept("keyword", "as"):
            pattern_id = self._expect("ident").text
            if self._accept("symbol", "["):
                pattern_filter = self._attribute_expression()
                self._expect("symbol", "]")
        window = None
        if self._check("keyword") and self._peek().text in (
                "from", "at", "last") or (
                self._check("keyword", "before") and
                not self._is_relation_context()) or (
                self._check("keyword", "after") and
                not self._is_relation_context()):
            window = self._window()
        return EventPattern(subject=subject, obj=obj, operation=operation,
                            path=path, pattern_id=pattern_id,
                            pattern_filter=pattern_filter, window=window,
                            negated=negated)

    def _is_relation_context(self) -> bool:
        # "before"/"after" directly following a pattern belongs to a window;
        # inside a with-clause it is a temporal relation keyword.  The parser
        # only calls this from pattern context, where a following identifier
        # (another pattern id) never occurs, so a datetime literal means a
        # window.
        return not (self._check("string", offset=1) or
                    self._check("number", offset=1))

    def _entity(self) -> EntityDecl:
        type_token = self._expect("keyword")
        if type_token.text not in _ENTITY_KEYWORDS:
            raise self._syntax_error(
                f"unknown entity type {type_token.text!r}", type_token)
        entity_type = _ENTITY_KEYWORDS[type_token.text]
        id_token = self._expect("ident")
        attr_filter = None
        if self._accept("symbol", "["):
            attr_filter = self._attribute_expression()
            self._expect("symbol", "]")
        return EntityDecl(entity_type=entity_type, entity_id=id_token.text,
                          attr_filter=attr_filter)

    # ------------------------------------------------------------------
    # operations and paths
    # ------------------------------------------------------------------
    def _operation_expression(self) -> OperationExpr:
        return self._operation_or()

    def _operation_or(self) -> OperationExpr:
        operands = [self._operation_and()]
        while self._accept("symbol", "||"):
            operands.append(self._operation_and())
        if len(operands) == 1:
            return operands[0]
        return OperationBoolean("||", tuple(operands))

    def _operation_and(self) -> OperationExpr:
        operands = [self._operation_unary()]
        while self._accept("symbol", "&&"):
            operands.append(self._operation_unary())
        if len(operands) == 1:
            return operands[0]
        return OperationBoolean("&&", tuple(operands))

    def _operation_unary(self) -> OperationExpr:
        if self._accept("symbol", "!"):
            return OperationNegation(self._operation_unary())
        if self._accept("symbol", "("):
            inner = self._operation_or()
            self._expect("symbol", ")")
            return inner
        token = self._expect("ident")
        name = token.text.lower()
        if name not in OPERATION_NAMES:
            raise self._syntax_error(f"unknown operation {token.text!r}",
                                     token)
        return OperationAtom(name)

    def _operation_path(self) -> OperationPath:
        arrow = self._advance()
        fuzzy_arrow = arrow.text == "~>"
        min_length, max_length = 1, (None if fuzzy_arrow else 1)
        if self._accept("symbol", "("):
            min_length, max_length = self._path_range()
            self._expect("symbol", ")")
        operation = None
        if self._accept("symbol", "["):
            operation = self._operation_expression()
            self._expect("symbol", "]")
        if not fuzzy_arrow:
            min_length, max_length = 1, 1
        return OperationPath(fuzzy_arrow=fuzzy_arrow, min_length=min_length,
                             max_length=max_length, operation=operation)

    def _path_range(self) -> tuple[int, Optional[int]]:
        minimum = 1
        maximum: Optional[int] = None
        if self._check("number"):
            minimum = int(float(self._advance().text))
            maximum = minimum
        if self._accept("symbol", "~"):
            maximum = None
            if self._check("number"):
                maximum = int(float(self._advance().text))
        if minimum < 1 or (maximum is not None and maximum < minimum):
            raise self._error(f"invalid path length range "
                              f"({minimum}~{maximum})")
        return minimum, maximum

    # ------------------------------------------------------------------
    # attribute expressions
    # ------------------------------------------------------------------
    def _attribute_expression(self) -> AttributeFilter:
        return self._attribute_or()

    def _attribute_or(self) -> AttributeFilter:
        operands = [self._attribute_and()]
        while self._accept("symbol", "||"):
            operands.append(self._attribute_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanFilter("||", tuple(operands))

    def _attribute_and(self) -> AttributeFilter:
        operands = [self._attribute_unary()]
        while self._accept("symbol", "&&"):
            operands.append(self._attribute_unary())
        if len(operands) == 1:
            return operands[0]
        return BooleanFilter("&&", tuple(operands))

    def _attribute_unary(self) -> AttributeFilter:
        if self._accept("symbol", "!"):
            operand = self._attribute_unary()
            if isinstance(operand, BareValueFilter):
                return BareValueFilter(operand.value, negated=True)
            return NegatedFilter(operand)
        if self._accept("symbol", "("):
            inner = self._attribute_or()
            self._expect("symbol", ")")
            return inner
        return self._attribute_atom()

    def _attribute_atom(self) -> AttributeFilter:
        token = self._peek()
        if token.kind in ("string", "number"):
            self._advance()
            return BareValueFilter(self._literal_value(token))
        if token.kind in ("ident", "keyword"):
            attribute = self._attribute_name()
            negated = self._accept("keyword", "not") is not None
            if self._accept("keyword", "in"):
                values = self._value_set()
                return MembershipFilter(attribute=attribute, values=values,
                                        negated=negated)
            if negated:
                raise self._error("'not' must be followed by 'in'")
            operator_token = self._peek()
            if operator_token.kind == "symbol" and \
                    operator_token.text in _COMPARISON_OPS:
                self._advance()
                value_token = self._peek()
                if value_token.kind not in ("string", "number"):
                    raise self._error("expected a literal value after "
                                      f"{operator_token.text!r}")
                self._advance()
                return AttributeComparison(attribute=attribute,
                                           operator=operator_token.text,
                                           value=self._literal_value(
                                               value_token))
            raise self._error("expected a comparison operator or 'in' after "
                              f"attribute {attribute!r}")
        raise self._error(f"unexpected token {token.text!r} in attribute "
                          "expression")

    def _attribute_name(self) -> str:
        first = self._advance()
        name = first.text
        if self._accept("symbol", "."):
            name = f"{name}.{self._ident_like().text}"
        return name

    def _ident_like(self) -> Token:
        """Accept an identifier or a keyword used as an attribute name.

        Attribute names such as ``group`` collide with v2 keywords; after
        a ``.`` (or wherever only an attribute can appear) the keyword
        reading never applies, so both token kinds are accepted.
        """
        token = self._peek()
        if token.kind not in ("ident", "keyword"):
            raise self._error(
                f"expected an attribute name, found {token.text!r}")
        return self._advance()

    def _value_set(self) -> tuple:
        self._expect("symbol", "{")
        values = []
        if not self._check("symbol", "}"):
            while True:
                token = self._peek()
                if token.kind not in ("string", "number"):
                    raise self._error("expected a literal inside a value set")
                self._advance()
                values.append(self._literal_value(token))
                if not self._accept("symbol", ","):
                    break
        self._expect("symbol", "}")
        return tuple(values)

    @staticmethod
    def _literal_value(token: Token):
        if token.kind == "string":
            return unescape_string(token.text)
        value = float(token.text)
        return int(value) if value.is_integer() else value

    # ------------------------------------------------------------------
    # pattern relationships
    # ------------------------------------------------------------------
    def _relation(self) -> PatternRelation:
        left = self._attribute_name()
        token = self._peek()
        if token.kind == "keyword" and token.text in ("before", "after",
                                                      "within"):
            self._advance()
            min_gap = max_gap = None
            unit = None
            if self._accept("symbol", "["):
                min_gap = float(self._expect("number").text)
                self._expect("symbol", "-")
                max_gap = float(self._expect("number").text)
                unit = self._time_unit()
                self._expect("symbol", "]")
            right = self._expect("ident").text
            return TemporalRelation(left=left, kind=token.text, right=right,
                                    min_gap=min_gap, max_gap=max_gap,
                                    unit=unit)
        if token.kind == "symbol" and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._attribute_name()
            return AttributeRelation(left=left, operator=token.text,
                                     right=right)
        raise self._error("expected 'before', 'after', 'within', or a "
                          "comparison operator in a with-clause")

    # ------------------------------------------------------------------
    # return clause
    # ------------------------------------------------------------------
    def _return_clause(self) -> ReturnClause:
        distinct = self._accept("keyword", "distinct") is not None
        items = [self._return_item()]
        while self._accept("symbol", ","):
            items.append(self._return_item())
        group_by: tuple[ReturnItem, ...] = ()
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_items = [self._entity_return_item()]
            while self._accept("symbol", ","):
                group_items.append(self._entity_return_item())
            group_by = tuple(group_items)
        top_n = None
        if self._check("keyword", "top"):
            top_token = self._advance()
            number = self._expect("number")
            value = float(number.text)
            if not value.is_integer() or value < 1:
                raise self._syntax_error(
                    f"'top' expects a positive integer, got {number.text!r}",
                    top_token)
            top_n = int(value)
        return ReturnClause(items=tuple(items), distinct=distinct,
                            group_by=group_by, top_n=top_n)

    def _return_item(self) -> ReturnItem:
        if self._check("keyword", "count"):
            self._advance()
            self._expect("symbol", "(")
            self._expect("symbol", ")")
            return ReturnItem(entity_id=None, aggregate="count")
        return self._entity_return_item()

    def _entity_return_item(self) -> ReturnItem:
        entity_id = self._expect("ident").text
        attribute = None
        if self._accept("symbol", "."):
            attribute = self._ident_like().text
        return ReturnItem(entity_id=entity_id, attribute=attribute)


def parse_tbql(source: str) -> TBQLQuery:
    """Parse TBQL source text into a :class:`TBQLQuery`."""
    return TBQLParser(source).parse()


#: Conversion table from time-unit spellings to seconds (shared with the
#: executor for evaluating ``before[0-5 min]`` style constraints).
TIME_UNIT_SECONDS = dict(_TIME_UNITS)


__all__ = ["TBQLParser", "parse_tbql", "OPERATION_NAMES",
           "TIME_UNIT_SECONDS"]
