"""Lexer for TBQL.

The paper builds its TBQL parser with ANTLR 4; this reproduction uses a
hand-written lexer + recursive-descent parser producing the same language
(Grammar 1).  The lexer tracks line/column positions for error messages.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import TBQLSyntaxError
from .diagnostics import make_diagnostic

#: Keywords of the language.  Operation names (read, write, ...) are *not*
#: keywords: they are ordinary identifiers interpreted by the parser, so new
#: operation types do not require lexer changes.
KEYWORDS = {
    "proc", "file", "ip", "as", "with", "return", "distinct", "before",
    "after", "within", "from", "to", "at", "last", "not", "in",
    # v2 operator families: temporal sequence, aggregation.
    "then", "count", "group", "by", "top",
}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<symbol>~>|->|&&|\|\||!=|<=|>=|[=!<>\[\]\(\)\{\},\.\-~\*/:%])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str      # 'keyword', 'ident', 'number', 'string', 'symbol', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Converts TBQL source text into a token stream."""

    def __init__(self, source: str) -> None:
        self.source = source

    def tokens(self) -> list[Token]:
        tokens: list[Token] = []
        index = 0
        line = 1
        line_start = 0
        source = self.source
        while index < len(source):
            match = _TOKEN_RE.match(source, index)
            if match is None:
                column = index - line_start + 1
                message = f"unexpected character {source[index]!r}"
                raise TBQLSyntaxError(
                    message, line, column,
                    diagnostic=make_diagnostic(source, message, line,
                                               column))
            text = match.group()
            column = match.start() - line_start + 1
            group = match.lastgroup
            if group in ("ws", "comment"):
                newlines = text.count("\n")
                if newlines:
                    line += newlines
                    line_start = match.start() + text.rfind("\n") + 1
            elif group == "ident":
                kind = "keyword" if text in KEYWORDS else "ident"
                tokens.append(Token(kind, text, line, column))
            elif group == "number":
                tokens.append(Token("number", text, line, column))
            elif group == "string":
                tokens.append(Token("string", text, line, column))
            else:
                tokens.append(Token("symbol", text, line, column))
            index = match.end()
        tokens.append(Token("eof", "", line, len(source) - line_start + 1))
        return tokens


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper returning the token list for ``source``."""
    return Lexer(source).tokens()


def unescape_string(raw: str) -> str:
    """Strip quotes and process escapes of a TBQL string literal."""
    body = raw[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


__all__ = ["KEYWORDS", "Token", "Lexer", "tokenize", "unescape_string"]
