"""Post-join aggregation for TBQL v2 (``count()`` / ``group by`` / ``top``).

Aggregation runs over the *joined* result rows, after the scatter-gather
stage has merged per-segment partial results back into the monolithic
``(start_time, event_id)`` order and the join has enumerated assignments
in its canonical order.  Every partial contribution a segment scan made is
therefore re-combined here exactly once, which is what keeps aggregated
results byte-identical across storage layouts, worker counts, and scan
strategies — the partitioned equivalence corpus pins this.

Two accumulation strategies are kept behind a flag, mirroring the join's
hash/backtracking pair:

* ``"hash"`` (default): one dict keyed by the group tuple, O(rows);
* ``"scan"``: the naive reference — a linear list lookup per row,
  O(rows x groups), retained for the differential equivalence corpus.

Both accumulate in row order (first-seen group order), so even sort-key
ties between distinct groups order identically under either strategy.
"""

from __future__ import annotations

from typing import Any, Optional

from .semantics import ResolvedAggregation

#: Valid ``aggregation_strategy`` arguments.
AGGREGATION_STRATEGIES = ("hash", "scan")

#: Name of the aggregate output column.
COUNT_COLUMN = "count"


def _group_key(row: dict[str, Any],
               group_by: list[tuple[str, str]]) -> tuple:
    return tuple(row.get(f"{entity_id}.{attribute}")
                 for entity_id, attribute in group_by)


def _order_key(key: tuple) -> tuple:
    """Deterministic total order over heterogeneous group-key tuples."""
    return tuple((value is None, str(value), type(value).__name__)
                 for value in key)


def _count_hash(rows: list[dict[str, Any]],
                group_by: list[tuple[str, str]]) -> dict[tuple, int]:
    counts: dict[tuple, int] = {}
    for row in rows:
        key = _group_key(row, group_by)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _count_scan(rows: list[dict[str, Any]],
                group_by: list[tuple[str, str]]) -> dict[tuple, int]:
    """Naive reference accumulator: linear lookup, no hashing."""
    keys: list[tuple] = []
    counts: list[int] = []
    for row in rows:
        key = _group_key(row, group_by)
        for index, existing in enumerate(keys):
            if existing == key:
                counts[index] += 1
                break
        else:
            keys.append(key)
            counts.append(1)
    return dict(zip(keys, counts))


def apply_aggregation(rows: list[dict[str, Any]],
                      aggregation: Optional[ResolvedAggregation],
                      strategy: str = "hash") -> list[dict[str, Any]]:
    """Collapse joined rows into one row per group.

    Output rows follow the declared return-item order (``count()`` where
    it appeared); groups are ordered by descending count, then ascending
    group key, and truncated to ``top_n`` when set.
    """
    if aggregation is None:
        return rows
    if strategy not in AGGREGATION_STRATEGIES:
        raise ValueError(
            f"unknown aggregation strategy: {strategy!r} "
            f"(expected one of {', '.join(AGGREGATION_STRATEGIES)})")
    accumulate = _count_hash if strategy == "hash" else _count_scan
    return rows_from_counts(accumulate(rows, aggregation.group_by),
                            aggregation)


def rows_from_counts(counted: dict[tuple, int],
                     aggregation: ResolvedAggregation
                     ) -> list[dict[str, Any]]:
    """Render merged group counts as output rows.

    Shared by the post-join accumulators above and the partial-aggregate
    pushdown path (which merges per-segment ``group key -> count``
    partials before calling this).  The sort key ``(-count,
    _order_key(key))`` is a *total* order over primitive group keys —
    ``_order_key`` is injective on SQLite cell values — so the rendered
    order is independent of accumulation order.
    """
    groups = sorted(counted.items(),
                    key=lambda item: (-item[1], _order_key(item[0])))
    if aggregation.top_n is not None:
        groups = groups[:aggregation.top_n]
    position = {pair: index
                for index, pair in enumerate(aggregation.group_by)}
    out_rows: list[dict[str, Any]] = []
    for key, count in groups:
        row: dict[str, Any] = {}
        for pair in aggregation.output:
            if pair is None:
                row[COUNT_COLUMN] = count
            else:
                entity_id, attribute = pair
                row[f"{entity_id}.{attribute}"] = key[position[pair]]
        out_rows.append(row)
    return out_rows


__all__ = ["AGGREGATION_STRATEGIES", "COUNT_COLUMN", "apply_aggregation",
           "rows_from_counts"]
