"""TBQL -> Cypher compilation.

Variable-length event path patterns (and length-1 ``->`` patterns) execute on
the graph backend.  As with SQL there are two code paths:

* :func:`compile_pattern_cypher` — one small Cypher data query per pattern,
  used by the scheduler;
* :func:`compile_giant_cypher` — one Cypher statement containing every
  pattern (the hand-written Cypher baseline of RQ4).
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from ..audit.entities import EntityType
from ..errors import TBQLSemanticError
from .ast import (AttributeComparison, AttributeFilter, BareValueFilter,
                  BooleanFilter, MembershipFilter, NegatedFilter,
                  TemporalRelation)
from .semantics import EVENT_ATTRIBUTES, ResolvedPattern, ResolvedQuery

_LABELS = {EntityType.FILE: "file", EntityType.PROCESS: "proc",
           EntityType.NETWORK: "ip"}

#: Upper bound substituted when an unbounded ``~>`` path is compiled; keeps
#: graph traversal bounded exactly like the mini-Cypher evaluator does.
DEFAULT_MAX_PATH_LENGTH = 6


def _quote(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return str(value)


def _string_predicate(ref: str, operator: str, value: str) -> str:
    """Translate a TBQL ``%`` wildcard comparison into a Cypher predicate."""
    has_wildcard = "%" in value
    if not has_wildcard:
        cypher_op = "<>" if operator == "!=" else operator
        return f"{ref} {cypher_op} {_quote(value)}"
    core = value.strip("%")
    if operator == "!=":
        return f"NOT ({_string_predicate(ref, '=', value)})"
    if value.startswith("%") and value.endswith("%"):
        return f"{ref} CONTAINS {_quote(core)}"
    if value.endswith("%"):
        return f"{ref} STARTS WITH {_quote(core)}"
    if value.startswith("%"):
        return f"{ref} ENDS WITH {_quote(core)}"
    # Interior wildcard: fall back to a regular expression.
    pattern = "^" + ".*".join(re.escape(part)
                              for part in value.split("%")) + "$"
    return f"{ref} =~ {_quote(pattern)}"


def render_filter_cypher(filt: Optional[AttributeFilter], entity_var: str,
                         event_var: str) -> Optional[str]:
    """Render an attribute filter as a Cypher WHERE fragment."""
    if filt is None:
        return None
    if isinstance(filt, AttributeComparison):
        name = filt.attribute.split(".")[-1]
        ref = (f"{event_var}.{name}" if name in EVENT_ATTRIBUTES
               else f"{entity_var}.{name}")
        if isinstance(filt.value, str):
            return _string_predicate(ref, filt.operator, filt.value)
        cypher_op = "<>" if filt.operator == "!=" else filt.operator
        return f"{ref} {cypher_op} {_quote(filt.value)}"
    if isinstance(filt, BareValueFilter):
        raise TBQLSemanticError("bare value filters must be expanded before "
                                "compilation")
    if isinstance(filt, MembershipFilter):
        name = filt.attribute.split(".")[-1]
        ref = (f"{event_var}.{name}" if name in EVENT_ATTRIBUTES
               else f"{entity_var}.{name}")
        parts = [_string_predicate(ref, "=", value) if isinstance(value, str)
                 else f"{ref} = {_quote(value)}" for value in filt.values]
        joined = " OR ".join(parts)
        return f"NOT ({joined})" if filt.negated else f"({joined})"
    if isinstance(filt, NegatedFilter):
        inner = render_filter_cypher(filt.operand, entity_var, event_var)
        return f"NOT ({inner})"
    if isinstance(filt, BooleanFilter):
        keyword = " AND " if filt.operator == "&&" else " OR "
        rendered = [render_filter_cypher(operand, entity_var, event_var)
                    for operand in filt.operands]
        return "(" + keyword.join(part for part in rendered if part) + ")"
    raise TBQLSemanticError(f"unknown attribute filter: {filt!r}")


def _relationship_text(pattern: ResolvedPattern, event_var: str) -> str:
    min_length = pattern.min_length
    max_length = pattern.max_length or DEFAULT_MAX_PATH_LENGTH
    properties = ""
    if pattern.operations is not None and len(pattern.operations) == 1:
        only = next(iter(pattern.operations))
        properties = f" {{operation: {_quote(only)}}}"
    if min_length == 1 and max_length == 1:
        return f"-[{event_var}:EVENT{properties}]->"
    return f"-[{event_var}:EVENT*{min_length}..{max_length}{properties}]->"


def _operation_where(pattern: ResolvedPattern, event_var: str
                     ) -> Optional[str]:
    """Multi-operation filters go to WHERE (single ones inline as props)."""
    if pattern.operations is None or len(pattern.operations) <= 1:
        return None
    parts = [f"{event_var}.operation = {_quote(op)}"
             for op in sorted(pattern.operations)]
    return "(" + " OR ".join(parts) + ")"


def _pattern_match_and_where(pattern: ResolvedPattern, query: ResolvedQuery,
                             subject_var: str, object_var: str,
                             event_var: str,
                             declare_subject: bool = True,
                             declare_object: bool = True
                             ) -> tuple[str, list[str]]:
    subject_label = f":{_LABELS[pattern.subject.entity_type]}" \
        if declare_subject else ""
    object_label = f":{_LABELS[pattern.obj.entity_type]}" \
        if declare_object else ""
    match = (f"({subject_var}{subject_label})"
             f"{_relationship_text(pattern, event_var)}"
             f"({object_var}{object_label})")
    where: list[str] = []
    for clause in (
            render_filter_cypher(pattern.subject.attr_filter, subject_var,
                                 event_var) if declare_subject else None,
            render_filter_cypher(pattern.obj.attr_filter, object_var,
                                 event_var) if declare_object else None,
            render_filter_cypher(pattern.pattern_filter, object_var,
                                 event_var),
            _operation_where(pattern, event_var)):
        if clause:
            where.append(clause)
    window = pattern.window or query.global_window
    if window is not None:
        earliest, latest = window
        if earliest is not None:
            where.append(f"{event_var}.start_time >= {earliest}")
        if latest is not None:
            where.append(f"{event_var}.end_time <= {latest}")
    return match, where


def _candidate_clause(var: str, candidate_ids: Sequence[int]) -> str:
    """Render an entity-candidate allowlist as a ``var.id IN [...]`` test.

    The evaluator recognizes this form and enumerates the listed node ids
    directly instead of scanning a label, so candidates injected by the
    scheduler prune graph traversal the same way they prune SQL.
    """
    rendered = ", ".join(str(int(node_id)) for node_id in candidate_ids)
    return f"{var}.id IN [{rendered}]"


def compile_pattern_cypher(pattern: ResolvedPattern, query: ResolvedQuery,
                           subject_candidates: Sequence[int] | None = None,
                           object_candidates: Sequence[int] | None = None
                           ) -> str:
    """Compile one pattern into a small Cypher data query.

    The query returns the matched subject/object node ids plus the edge (or
    edge path) id(s) and the final-hop timing, which is what the scheduler's
    join needs.  ``subject_candidates`` / ``object_candidates`` are node-id
    restrictions injected from previously executed patterns (the graph twin
    of :func:`~repro.tbql.compiler_sql.compile_pattern_sql`'s candidate
    parameters).
    """
    match, where = _pattern_match_and_where(pattern, query, "s", "o", "e")
    if subject_candidates is not None:
        where.append(_candidate_clause("s", subject_candidates))
    if object_candidates is not None:
        where.append(_candidate_clause("o", object_candidates))
    where_text = f" WHERE {' AND '.join(where)}" if where else ""
    return (f"MATCH {match}{where_text} "
            "RETURN s.id AS subject_id, o.id AS object_id, "
            "e AS event_ids, e.start_time AS start_time, "
            "e.end_time AS end_time")


def compile_giant_cypher(query: ResolvedQuery) -> str:
    """Compile the whole query into one Cypher statement (RQ4 baseline).

    The mini-Cypher dialect has no ``NOT EXISTS`` subqueries and no
    aggregation, so ``and not`` absence patterns and ``count()`` queries
    cannot be expressed as a single statement; both raise.  (Negated
    *path* patterns still execute on the graph backend through
    :func:`compile_pattern_cypher` — the executor owns the anti-join.)
    """
    if any(pattern.negated for pattern in query.patterns):
        raise TBQLSemanticError(
            "the single-statement Cypher baseline cannot express 'and "
            "not' absence patterns (mini-Cypher has no NOT EXISTS)")
    if query.aggregation is not None:
        raise TBQLSemanticError(
            "the single-statement Cypher baseline cannot express "
            "count() aggregation (mini-Cypher has no aggregation)")
    matches: list[str] = []
    where: list[str] = []
    declared: set[str] = set()
    for pattern in query.patterns:
        event_var = pattern.pattern_id
        subject_var = pattern.subject.entity_id
        object_var = pattern.obj.entity_id
        match, pattern_where = _pattern_match_and_where(
            pattern, query, subject_var, object_var, event_var,
            declare_subject=subject_var not in declared,
            declare_object=object_var not in declared)
        declared.add(subject_var)
        declared.add(object_var)
        matches.append(match)
        where.extend(pattern_where)
    for relation in query.temporal_relations:
        where.append(_temporal_cypher(relation))
    for relation in query.attribute_relations:
        operator = "<>" if relation.operator == "!=" else relation.operator
        where.append(f"{relation.left} {operator} {relation.right}")
    return_items = [f"{entity_id}.{attribute} AS {entity_id}_{attribute}"
                    for entity_id, attribute in query.return_items]
    distinct = "DISTINCT " if query.distinct else ""
    where_text = f" WHERE {' AND '.join(where)}" if where else ""
    return (f"MATCH {', '.join(matches)}{where_text} "
            f"RETURN {distinct}{', '.join(return_items)}")


def _temporal_cypher(relation: TemporalRelation) -> str:
    from .parser import TIME_UNIT_SECONDS
    # "then" (resolved sequence operator) orders like "before"; bounded
    # gaps degrade identically in this dialect (see below).
    if relation.kind in ("before", "then"):
        clause = f"{relation.left}.end_time <= {relation.right}.start_time"
        if relation.max_gap is not None:
            scale = TIME_UNIT_SECONDS[relation.unit]
            # The mini-Cypher dialect has no arithmetic, so bounded gaps fall
            # back to the plain ordering constraint (a superset of matches
            # that the executor's join narrows down).
            _ = scale
        return clause
    if relation.kind == "after":
        return f"{relation.right}.end_time <= {relation.left}.start_time"
    return f"{relation.left}.start_time <= {relation.right}.end_time"


__all__ = ["compile_pattern_cypher", "compile_giant_cypher",
           "render_filter_cypher", "DEFAULT_MAX_PATH_LENGTH"]
