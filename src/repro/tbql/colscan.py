"""Columnar pattern scans: predicate evaluation over ``events.col``.

The scatter-gather workers' alternative to per-segment SQLite queries
(:mod:`repro.tbql.scatter`): pattern constraints are compiled once into
a picklable :class:`PatternSpec`, shipped to the workers, and evaluated
directly against a segment's memory-mapped column arrays
(:class:`repro.storage.columnar.ColumnarSegment`).  Matches come back
as one packed tuple of machine-typed byte strings per task — a handful
of ``array`` buffers instead of thousands of pickled row tuples — and
are re-inflated into row dicts by :func:`unpack_rows` on the gather
side.

Equivalence contract: the evaluator reproduces the exact semantics of
the SQL the sqlite strategy runs (``compile_pattern_sql``) under
SQLite's comparison rules — three-valued logic with only-TRUE-kept
WHERE semantics, storage-class ordering (numbers sort before text),
numeric/text affinity conversions, and the ``LIKE`` mapping of TBQL
``%`` wildcards (ASCII case-insensitive, ``_`` escaped).  The
equivalence corpus pins this byte-for-byte against both the monolithic
and per-segment SQLite paths.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..errors import StorageError, TBQLSemanticError
from ..storage.columnar import ColumnarSegment, NULL_INT
from ..storage.relational.schema import (ENTITY_ATTRIBUTE_COLUMNS,
                                         EVENT_ATTRIBUTE_COLUMNS)
from ..storage.relational.sqlgen import like_escape
from .ast import (AttributeComparison, AttributeFilter, BareValueFilter,
                  BooleanFilter, MembershipFilter, NegatedFilter)
from .compiler_sql import _ENTITY_TYPE_VALUE
from .semantics import ResolvedPattern, ResolvedQuery, effective_window

try:  # pragma: no cover - exercised via REPRO_COLUMNAR_NUMPY toggle
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-less environments (CI)
    _numpy = None  # type: ignore[assignment]

from array import array

#: Relational columns with numeric affinity (everything else is TEXT).
_NUMERIC_COLUMNS = frozenset({"pid", "srcport", "dstport", "start_time",
                              "end_time", "duration", "data_amount",
                              "failure_code"})
_EVENT_STRING_COLUMNS = frozenset({"operation", "category", "host"})

#: Packed scan result: (row_count, ids, opcodes, op_strings, starts,
#: ends, amounts, subject_ids, object_ids).  All byte strings are
#: native-endian ``array`` payloads ('q'/'I'/'d'); opcodes index into
#: ``op_strings`` (codes remapped to the tuple's order).
PackedRows = tuple[int, bytes, bytes, tuple[str, ...], bytes, bytes,
                   bytes, bytes, bytes]

#: Tri-valued predicate over (entity row index, event row index).
_Predicate = Callable[[int, int], Optional[bool]]


def _numpy_module() -> Any:
    """numpy, unless absent or disabled via ``REPRO_COLUMNAR_NUMPY=0``."""
    if os.environ.get("REPRO_COLUMNAR_NUMPY", "").strip() == "0":
        return None
    return _numpy


# ---------------------------------------------------------------------------
# the shipped pattern constraint set
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PatternSpec:
    """Picklable constraint set for one pattern's columnar scan.

    Mirrors exactly the clauses ``compile_pattern_sql`` renders (same
    order of concerns, same effective window, same candidate pushdown),
    with entity types pre-mapped to their stored string values so no
    enum crosses the process boundary.
    """

    subject_type: str
    object_type: str
    operations: Optional[tuple[str, ...]]
    subject_filter: Optional[AttributeFilter]
    object_filter: Optional[AttributeFilter]
    pattern_filter: Optional[AttributeFilter]
    window: Optional[tuple[Optional[float], Optional[float]]]
    subject_candidates: Optional[tuple[int, ...]]
    object_candidates: Optional[tuple[int, ...]]
    min_event_id: Optional[int] = None


@dataclass(frozen=True)
class ColumnarTask:
    """One scatter task against a segment's ``events.col`` payload."""

    path: str
    spec: PatternSpec


def build_pattern_spec(pattern: ResolvedPattern, query: ResolvedQuery,
                       subject_candidates: Sequence[int] | None = None,
                       object_candidates: Sequence[int] | None = None,
                       min_event_id: int | None = None) -> PatternSpec:
    """The columnar analogue of :func:`compile_pattern_sql`."""
    return PatternSpec(
        subject_type=_ENTITY_TYPE_VALUE[pattern.subject.entity_type],
        object_type=_ENTITY_TYPE_VALUE[pattern.obj.entity_type],
        operations=(tuple(sorted(pattern.operations))
                    if pattern.operations is not None else None),
        subject_filter=pattern.subject.attr_filter,
        object_filter=pattern.obj.attr_filter,
        pattern_filter=pattern.pattern_filter,
        window=effective_window(pattern, query),
        subject_candidates=(tuple(subject_candidates)
                            if subject_candidates is not None else None),
        object_candidates=(tuple(object_candidates)
                           if object_candidates is not None else None),
        min_event_id=min_event_id,
    )


# ---------------------------------------------------------------------------
# SQLite comparison semantics
# ---------------------------------------------------------------------------

_INT_LITERAL = re.compile(r"[+-]?\d+\Z")
_REAL_LITERAL = re.compile(r"[+-]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?\Z")


def _text_to_number(text: str) -> Optional[float | int]:
    """NUMERIC affinity: a well-formed literal converts, else ``None``."""
    stripped = text.strip()
    if _INT_LITERAL.match(stripped):
        return int(stripped)
    if _REAL_LITERAL.match(stripped):
        return float(stripped)
    return None


def _sql_text(value: Any) -> str:
    """TEXT affinity: how SQLite renders a number as text (%!.15g)."""
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return format(value, ".15g")
    return str(value)


def _sql_compare(cell: Any, value: Any, numeric: bool) -> Optional[int]:
    """Storage-class-aware comparison; ``None`` when NULL is involved.

    ``numeric`` tells whether the *column* has numeric affinity, which
    decides the direction of affinity conversion exactly as SQLite does
    for ``column <op> literal``.
    """
    if cell is None:
        return None
    if isinstance(value, bool):
        value = int(value)
    if numeric:
        if isinstance(value, str):
            converted = _text_to_number(value)
            if converted is None:
                return -1          # numbers order before text
            value = converted
        if isinstance(cell, str):  # pragma: no cover - schema keeps these
            return 1               # numeric columns hold numbers here
        return (cell > value) - (cell < value)
    if isinstance(value, (int, float)):
        value = _sql_text(value)   # TEXT affinity converts the literal
    if isinstance(cell, (int, float)):  # pragma: no cover - defensive
        cell = _sql_text(cell)
    return (cell > value) - (cell < value)


_LIKE_CACHE: dict[str, re.Pattern[str]] = {}


def _like_regex(value: str) -> re.Pattern[str]:
    """Regex equivalent of ``LIKE like_escape(value) ESCAPE '\\'``."""
    regex = _LIKE_CACHE.get(value)
    if regex is None:
        pattern = like_escape(value)
        parts: list[str] = []
        index = 0
        while index < len(pattern):
            char = pattern[index]
            if char == "\\" and index + 1 < len(pattern):
                parts.append(re.escape(pattern[index + 1]))
                index += 2
                continue
            parts.append(".*" if char == "%" else re.escape(char))
            index += 1
        regex = re.compile("".join(parts),
                           re.IGNORECASE | re.ASCII | re.DOTALL)
        if len(_LIKE_CACHE) < 1024:
            _LIKE_CACHE[value] = regex
    return regex


def _eval_comparison(cell: Any, operator: str, value: Any,
                     numeric: bool) -> Optional[bool]:
    if operator in ("=", "!=") and isinstance(value, str) and "%" in value:
        if cell is None:
            return None
        text = cell if isinstance(cell, str) else _sql_text(cell)
        matched = _like_regex(value).fullmatch(text) is not None
        return matched if operator == "=" else not matched
    order = _sql_compare(cell, value, numeric)
    if order is None:
        return None
    if operator == "=":
        return order == 0
    if operator == "!=":
        return order != 0
    if operator == "<":
        return order < 0
    if operator == "<=":
        return order <= 0
    if operator == ">":
        return order > 0
    if operator == ">=":
        return order >= 0
    raise TBQLSemanticError(f"unsupported comparison operator: {operator!r}")


def _eval_membership(cell: Any, values: tuple, negated: bool,
                     numeric: bool) -> Optional[bool]:
    if cell is None:
        return None
    hit = any(_sql_compare(cell, value, numeric) == 0 for value in values)
    return (not hit) if negated else hit


# ---------------------------------------------------------------------------
# filter compilation against one segment
# ---------------------------------------------------------------------------


def _dict_enabled() -> bool:
    """Dictionary-accelerated string predicates (``REPRO_COLSCAN_DICT=0``
    falls back to per-row string evaluation, the reference path)."""
    return os.environ.get("REPRO_COLSCAN_DICT", "").strip() != "0"


def _string_code_column(segment: ColumnarSegment, attribute: str
                        ) -> Optional[tuple[Any, bool]]:
    """``(code column view, is_event_column)`` for interned-string
    attributes; ``None`` when the attribute is numeric or unknown
    (unknown falls through to :func:`_accessor`, which raises)."""
    name = attribute.split(".")[-1]
    if name in EVENT_ATTRIBUTE_COLUMNS:
        column = EVENT_ATTRIBUTE_COLUMNS[name]
        if column in _EVENT_STRING_COLUMNS:
            return segment.column(f"event.{column}"), True
        return None
    if name in ENTITY_ATTRIBUTE_COLUMNS:
        column = ENTITY_ATTRIBUTE_COLUMNS[name]
        if column not in _NUMERIC_COLUMNS:
            return segment.column(f"entity.{column}"), False
    return None


def _comparison_code_table(segment: ColumnarSegment, operator: str,
                           value: Any) -> list[Optional[bool]]:
    """Per-code truth table for a string comparison leaf.

    One evaluation per *distinct* string instead of per row.  A
    case-insensitive prefix ``LIKE`` (``name["abc%"]``) against a
    sorted-table payload degenerates to a binary-searched code range —
    no regex runs at all.  Index 0 (NULL) is always ``None``, matching
    SQLite's three-valued comparisons.
    """
    if operator in ("=", "!=") and isinstance(value, str) and \
            value.endswith("%") and "%" not in value[:-1]:
        code_range = segment.prefix_code_range(value[:-1])
        if code_range is not None:
            low, high = code_range
            keep = operator == "="
            return [None] + [(low <= code < high) == keep
                             for code in range(1, len(segment.strings))]
    return [_eval_comparison(text, operator, value, False)
            for text in segment.strings]


def _entity_getter(segment: ColumnarSegment,
                   column: str) -> Callable[[int], Any]:
    values = segment.column(f"entity.{column}")
    if column in _NUMERIC_COLUMNS:
        def get_int(index: int) -> Any:
            value = values[index]
            return None if value == NULL_INT else value
        return get_int
    strings = segment.strings

    def get_str(index: int) -> Any:
        return strings[values[index]]
    return get_str


def _event_getter(segment: ColumnarSegment,
                  column: str) -> Callable[[int], Any]:
    values = segment.column(f"event.{column}")
    if column in _EVENT_STRING_COLUMNS:
        strings = segment.strings

        def get_str(index: int) -> Any:
            return strings[values[index]]
        return get_str

    def get_num(index: int) -> Any:
        return values[index]
    return get_num


def _accessor(segment: ColumnarSegment, attribute: str
              ) -> tuple[Callable[[int], Any], bool, bool]:
    """Resolve an attribute exactly as ``render_filter`` does.

    Returns ``(getter, numeric_affinity, is_event_column)``; event
    attributes shadow entity attributes, matching the SQL renderer.
    """
    name = attribute.split(".")[-1]
    if name in EVENT_ATTRIBUTE_COLUMNS:
        column = EVENT_ATTRIBUTE_COLUMNS[name]
        return (_event_getter(segment, column),
                column in _NUMERIC_COLUMNS, True)
    if name in ENTITY_ATTRIBUTE_COLUMNS:
        column = ENTITY_ATTRIBUTE_COLUMNS[name]
        return (_entity_getter(segment, column),
                column in _NUMERIC_COLUMNS, False)
    raise TBQLSemanticError(f"attribute {attribute!r} has no relational "
                            "column")


def _compile_filter(filt: AttributeFilter,
                    segment: ColumnarSegment) -> _Predicate:
    """Compile a filter into a tri-valued closure (Kleene logic)."""
    if isinstance(filt, (AttributeComparison, MembershipFilter)) and \
            _dict_enabled():
        coded = _string_code_column(segment, filt.attribute)
        if coded is not None:
            codes, on_event = coded
            if isinstance(filt, AttributeComparison):
                table = _comparison_code_table(segment, filt.operator,
                                               filt.value)
            else:
                table = [_eval_membership(text, filt.values, filt.negated,
                                          False)
                         for text in segment.strings]
            if on_event:
                def code_event(entity_index: int,
                               event_index: int) -> Optional[bool]:
                    return table[codes[event_index]]
                return code_event

            def code_entity(entity_index: int,
                            event_index: int) -> Optional[bool]:
                return table[codes[entity_index]]
            return code_entity
    if isinstance(filt, AttributeComparison):
        get, numeric, on_event = _accessor(segment, filt.attribute)
        operator, value = filt.operator, filt.value
        if on_event:
            def cmp_event(entity_index: int,
                          event_index: int) -> Optional[bool]:
                return _eval_comparison(get(event_index), operator, value,
                                        numeric)
            return cmp_event

        def cmp_entity(entity_index: int,
                       event_index: int) -> Optional[bool]:
            return _eval_comparison(get(entity_index), operator, value,
                                    numeric)
        return cmp_entity
    if isinstance(filt, MembershipFilter):
        get, numeric, on_event = _accessor(segment, filt.attribute)
        values, negated = filt.values, filt.negated
        if on_event:
            def in_event(entity_index: int,
                         event_index: int) -> Optional[bool]:
                return _eval_membership(get(event_index), values, negated,
                                        numeric)
            return in_event

        def in_entity(entity_index: int,
                      event_index: int) -> Optional[bool]:
            return _eval_membership(get(entity_index), values, negated,
                                    numeric)
        return in_entity
    if isinstance(filt, NegatedFilter):
        inner = _compile_filter(filt.operand, segment)

        def negate(entity_index: int, event_index: int) -> Optional[bool]:
            value = inner(entity_index, event_index)
            return None if value is None else not value
        return negate
    if isinstance(filt, BooleanFilter):
        operands = [_compile_filter(operand, segment)
                    for operand in filt.operands]
        if filt.operator == "&&":
            def conjoin(entity_index: int,
                        event_index: int) -> Optional[bool]:
                unknown = False
                for operand in operands:
                    value = operand(entity_index, event_index)
                    if value is False:
                        return False
                    if value is None:
                        unknown = True
                return None if unknown else True
            return conjoin

        def disjoin(entity_index: int, event_index: int) -> Optional[bool]:
            unknown = False
            for operand in operands:
                value = operand(entity_index, event_index)
                if value is True:
                    return True
                if value is None:
                    unknown = True
            return None if unknown else False
        return disjoin
    if isinstance(filt, BareValueFilter):
        raise TBQLSemanticError("bare value filters must be expanded before "
                                "compilation")
    raise TBQLSemanticError(f"unknown attribute filter: {filt!r}")


def _uses_event_columns(filt: Optional[AttributeFilter]) -> bool:
    if filt is None:
        return False
    if isinstance(filt, (AttributeComparison, MembershipFilter)):
        return filt.attribute.split(".")[-1] in EVENT_ATTRIBUTE_COLUMNS
    if isinstance(filt, NegatedFilter):
        return _uses_event_columns(filt.operand)
    if isinstance(filt, BooleanFilter):
        return any(_uses_event_columns(operand)
                   for operand in filt.operands)
    return False


def _filter_forms(segment: ColumnarSegment,
                  filt: Optional[AttributeFilter]
                  ) -> tuple[Optional[list[bool]], Optional[_Predicate]]:
    """``(per_entity_pass, residual)`` — at most one is non-``None``.

    Entity-only filters collapse to a per-entity "evaluates to TRUE"
    table computed once (WHERE keeps TRUE only, so NULL folds to
    False); filters touching event columns stay per-row closures.
    """
    if filt is None:
        return None, None
    predicate = _compile_filter(filt, segment)
    if _uses_event_columns(filt):
        return None, predicate
    return [predicate(index, 0) is True
            for index in range(segment.entity_count)], None


# ---------------------------------------------------------------------------
# scanning
# ---------------------------------------------------------------------------


def _operation_codes(segment: ColumnarSegment,
                     spec: PatternSpec) -> Optional[frozenset[int]]:
    """Interned codes of the allowed operations (``None`` = any).

    Raises nothing on unknown operations — an operation absent from the
    segment's string table simply cannot match (empty set short-cuts to
    an empty result upstream).
    """
    if spec.operations is None:
        return None
    codes = {segment.code_of(operation) for operation in spec.operations}
    codes.discard(None)
    return frozenset(code for code in codes if code is not None)


def _select_python(segment: ColumnarSegment,
                   spec: PatternSpec) -> list[int]:
    """Pure-python row selection (the portable reference path)."""
    count = segment.event_count
    if count == 0:
        return []
    subject_code = segment.code_of(spec.subject_type)
    object_code = segment.code_of(spec.object_type)
    if subject_code is None or object_code is None:
        return []
    operation_codes = _operation_codes(segment, spec)
    if operation_codes is not None and not operation_codes:
        return []
    type_codes = segment.column("entity.type")
    subject_type_ok = [code == subject_code for code in type_codes]
    object_type_ok = (subject_type_ok if object_code == subject_code
                      else [code == object_code for code in type_codes])
    subject_pass, subject_residual = _filter_forms(segment,
                                                   spec.subject_filter)
    object_pass, object_residual = _filter_forms(segment,
                                                 spec.object_filter)
    pattern_pass, pattern_residual = _filter_forms(segment,
                                                   spec.pattern_filter)
    ids = segment.column("event.id")
    subjects = segment.column("event.subject_id")
    objects = segment.column("event.object_id")
    operations = segment.column("event.operation")
    starts = segment.column("event.start_time")
    ends = segment.column("event.end_time")
    earliest = latest = None
    if spec.window is not None:
        earliest, latest = spec.window
    min_id = spec.min_event_id
    subject_set = (frozenset(spec.subject_candidates)
                   if spec.subject_candidates is not None else None)
    object_set = (frozenset(spec.object_candidates)
                  if spec.object_candidates is not None else None)
    index_of = segment.entity_index
    selected: list[int] = []
    for row in range(count):
        if min_id is not None and ids[row] < min_id:
            continue
        if operation_codes is not None and \
                operations[row] not in operation_codes:
            continue
        if earliest is not None and starts[row] < earliest:
            continue
        if latest is not None and ends[row] > latest:
            continue
        subject_id = subjects[row]
        object_id = objects[row]
        if subject_set is not None and subject_id not in subject_set:
            continue
        if object_set is not None and object_id not in object_set:
            continue
        subject_index = index_of(subject_id)
        object_index = index_of(object_id)
        if not subject_type_ok[subject_index] or \
                not object_type_ok[object_index]:
            continue
        if subject_pass is not None:
            if not subject_pass[subject_index]:
                continue
        elif subject_residual is not None and \
                subject_residual(subject_index, row) is not True:
            continue
        if object_pass is not None:
            if not object_pass[object_index]:
                continue
        elif object_residual is not None and \
                object_residual(object_index, row) is not True:
            continue
        if pattern_pass is not None:
            if not pattern_pass[object_index]:
                continue
        elif pattern_residual is not None and \
                pattern_residual(object_index, row) is not True:
            continue
        selected.append(row)
    return selected


def _entity_indices_np(segment: ColumnarSegment, ids: Any, np: Any) -> Any:
    if segment.dense_entities:
        return ids - 1
    entity_ids = segment.np_column("entity.id", np)
    indices = np.searchsorted(entity_ids, ids)
    indices = np.minimum(indices, max(len(entity_ids) - 1, 0))
    if not np.all(entity_ids[indices] == ids):
        raise StorageError(f"columnar payload {segment.path} has events "
                           "referencing missing entity rows")
    return indices


def _select_numpy(segment: ColumnarSegment, spec: PatternSpec,
                  np: Any) -> Any:
    """Vectorized row selection; same semantics as `_select_python`."""
    empty = np.empty(0, dtype=np.int64)
    count = segment.event_count
    if count == 0:
        return empty
    subject_code = segment.code_of(spec.subject_type)
    object_code = segment.code_of(spec.object_type)
    if subject_code is None or object_code is None:
        return empty
    operation_codes = _operation_codes(segment, spec)
    if operation_codes is not None and not operation_codes:
        return empty
    mask = np.ones(count, dtype=bool)
    if spec.min_event_id is not None:
        mask &= segment.np_column("event.id", np) >= spec.min_event_id
    if spec.window is not None:
        earliest, latest = spec.window
        if earliest is not None:
            mask &= segment.np_column("event.start_time", np) >= earliest
        if latest is not None:
            mask &= segment.np_column("event.end_time", np) <= latest
    if operation_codes is not None:
        operations = segment.np_column("event.operation", np)
        if len(operation_codes) == 1:
            mask &= operations == next(iter(operation_codes))
        else:
            mask &= np.isin(operations,
                            np.array(sorted(operation_codes),
                                     dtype=np.int64))
    subjects = segment.np_column("event.subject_id", np)
    objects = segment.np_column("event.object_id", np)
    if spec.subject_candidates is not None:
        mask &= np.isin(subjects, np.array(spec.subject_candidates,
                                           dtype=np.int64))
    if spec.object_candidates is not None:
        mask &= np.isin(objects, np.array(spec.object_candidates,
                                          dtype=np.int64))
    subject_rows = _entity_indices_np(segment, subjects, np)
    object_rows = _entity_indices_np(segment, objects, np)
    type_codes = segment.np_column("entity.type", np)
    subject_pass, subject_residual = _filter_forms(segment,
                                                   spec.subject_filter)
    object_pass, object_residual = _filter_forms(segment,
                                                 spec.object_filter)
    pattern_pass, pattern_residual = _filter_forms(segment,
                                                   spec.pattern_filter)
    subject_ok = type_codes == subject_code
    if subject_pass is not None:
        subject_ok = subject_ok & np.asarray(subject_pass, dtype=bool)
    mask &= subject_ok[subject_rows]
    object_ok = type_codes == object_code
    if object_pass is not None:
        object_ok = object_ok & np.asarray(object_pass, dtype=bool)
    if pattern_pass is not None:
        object_ok = object_ok & np.asarray(pattern_pass, dtype=bool)
    mask &= object_ok[object_rows]
    for residual, entity_rows in ((subject_residual, subject_rows),
                                  (object_residual, object_rows),
                                  (pattern_residual, object_rows)):
        if residual is None:
            continue
        survivors = np.nonzero(mask)[0]
        if survivors.size == 0:
            break
        rejected = [residual(int(entity_rows[row]), int(row)) is not True
                    for row in survivors]
        mask[survivors[np.asarray(rejected, dtype=bool)]] = False
    return np.nonzero(mask)[0]


def _pack_python(segment: ColumnarSegment,
                 selected: list[int]) -> PackedRows:
    ids = segment.column("event.id")
    operations = segment.column("event.operation")
    starts = segment.column("event.start_time")
    ends = segment.column("event.end_time")
    amounts = segment.column("event.data_amount")
    subjects = segment.column("event.subject_id")
    objects = segment.column("event.object_id")
    out_ids = array("q")
    out_ops = array("I")
    out_starts = array("d")
    out_ends = array("d")
    out_amounts = array("q")
    out_subjects = array("q")
    out_objects = array("q")
    remap: dict[int, int] = {}
    strings: list[str] = []
    segment_strings = segment.strings
    for row in selected:
        out_ids.append(ids[row])
        code = operations[row]
        slot = remap.get(code)
        if slot is None:
            slot = remap[code] = len(strings)
            text = segment_strings[code]
            assert text is not None  # operation is NOT NULL
            strings.append(text)
        out_ops.append(slot)
        out_starts.append(starts[row])
        out_ends.append(ends[row])
        out_amounts.append(amounts[row])
        out_subjects.append(subjects[row])
        out_objects.append(objects[row])
    return (len(selected), out_ids.tobytes(), out_ops.tobytes(),
            tuple(strings), out_starts.tobytes(), out_ends.tobytes(),
            out_amounts.tobytes(), out_subjects.tobytes(),
            out_objects.tobytes())


def _pack_numpy(segment: ColumnarSegment, selected: Any,
                np: Any) -> PackedRows:
    operations = segment.np_column("event.operation", np)[selected]
    codes, inverse = np.unique(operations, return_inverse=True)
    strings = []
    for code in codes:
        text = segment.strings[int(code)]
        assert text is not None  # operation is NOT NULL
        strings.append(text)
    return (int(selected.size),
            segment.np_column("event.id", np)[selected].tobytes(),
            inverse.astype(np.uint32).tobytes(),
            tuple(strings),
            segment.np_column("event.start_time", np)[selected].tobytes(),
            segment.np_column("event.end_time", np)[selected].tobytes(),
            segment.np_column("event.data_amount", np)[selected].tobytes(),
            segment.np_column("event.subject_id", np)[selected].tobytes(),
            segment.np_column("event.object_id", np)[selected].tobytes())


def scan_columnar(segment: ColumnarSegment,
                  spec: PatternSpec) -> PackedRows:
    """Evaluate one pattern against a mapped segment; packed result."""
    np = _numpy_module()
    if np is not None:
        return _pack_numpy(segment, _select_numpy(segment, spec, np), np)
    return _pack_python(segment, _select_python(segment, spec))


def unpack_rows(packed: PackedRows) -> list[dict[str, Any]]:
    """Re-inflate a packed scan result into SQL-shaped row dicts."""
    (count, id_bytes, op_bytes, op_strings, start_bytes, end_bytes,
     amount_bytes, subject_bytes, object_bytes) = packed
    if not count:
        return []
    ids = array("q")
    ids.frombytes(id_bytes)
    operations = array("I")
    operations.frombytes(op_bytes)
    starts = array("d")
    starts.frombytes(start_bytes)
    ends = array("d")
    ends.frombytes(end_bytes)
    amounts = array("q")
    amounts.frombytes(amount_bytes)
    subjects = array("q")
    subjects.frombytes(subject_bytes)
    objects = array("q")
    objects.frombytes(object_bytes)
    return [{"event_id": ids[row],
             "operation": op_strings[operations[row]],
             "start_time": starts[row],
             "end_time": ends[row],
             "data_amount": amounts[row],
             "subject_id": subjects[row],
             "object_id": objects[row]}
            for row in range(count)]


# ---------------------------------------------------------------------------
# per-worker segment cache
# ---------------------------------------------------------------------------

_SEGMENT_CACHE: dict[str, ColumnarSegment] = {}
_SEGMENT_CACHE_LIMIT = 128
_SEGMENT_CACHE_LOCK = threading.Lock()


def _segment_for(path: str) -> ColumnarSegment:
    """Shared mmap readers per payload path (process-wide, bounded).

    Unlike the SQLite connection cache this is not thread-local —
    :class:`ColumnarSegment` is immutable after open.  Evicted entries
    are released by GC once in-flight scans drop them; closing them
    eagerly could yank the mapping from under a concurrent reader.
    """
    with _SEGMENT_CACHE_LOCK:
        segment = _SEGMENT_CACHE.get(path)
        if segment is None:
            if len(_SEGMENT_CACHE) >= _SEGMENT_CACHE_LIMIT:
                _SEGMENT_CACHE.clear()
            segment = ColumnarSegment(path)
            _SEGMENT_CACHE[path] = segment
    return segment


def scan_segment_columnar(task: ColumnarTask) -> PackedRows:
    """Worker entry point: scan one segment's columnar payload."""
    return scan_columnar(_segment_for(task.path), task.spec)


# ---------------------------------------------------------------------------
# partial-aggregate pushdown
# ---------------------------------------------------------------------------

#: Packed partial-aggregate result: (row_count, ids, starts, ends,
#: opcodes, op_strings, subject_ids, object_ids, group_counts).  Event
#: arrays carry exactly what the coordinator needs to rebuild
#: ``matched_events``; entity ids are global, so display names resolve
#: through the executor's batched entity cache (same source the row
#: path hydrates from) instead of shipping per-segment string tables.
#: ``group_counts`` maps group-key tuples to counts.
PackedAggregate = tuple[int, bytes, bytes, bytes, bytes, tuple[str, ...],
                        bytes, bytes, dict]


@dataclass(frozen=True)
class AggregateTask:
    """One pushdown scatter task: scan + per-segment count partials.

    ``group_columns`` lists the resolved ``group by`` attributes as
    ``(on_subject, entity column)`` pairs; an empty tuple means a
    global ``count()``.
    """

    path: str
    spec: PatternSpec
    group_columns: tuple[tuple[bool, str], ...]


def aggregate_columnar(segment: ColumnarSegment, spec: PatternSpec,
                       group_columns: tuple[tuple[bool, str], ...]
                       ) -> PackedAggregate:
    """Scan one segment and fold matches into per-group count partials.

    Row selection is byte-identical to :func:`scan_columnar` (same
    ``_select_*`` evaluators); only the *shipped* shape changes — one
    44-byte packed record per match (event id/times/opcode/entity ids)
    plus one ``(group key, count)`` dict, instead of the row scatter's
    52-byte packed rows.  Display names stay behind: the coordinator
    hydrates them by entity id through its batched cache, the same way
    the ordinary path hydrates matched events.
    """
    np = _numpy_module()
    selected = (_select_numpy(segment, spec, np) if np is not None
                else _select_python(segment, spec))
    ids = segment.column("event.id")
    starts = segment.column("event.start_time")
    ends = segment.column("event.end_time")
    operations = segment.column("event.operation")
    subjects = segment.column("event.subject_id")
    objects = segment.column("event.object_id")
    strings = segment.strings
    index_of = segment.entity_index
    getters = [(on_subject, _entity_getter(segment, column))
               for on_subject, column in group_columns]
    out_ids = array("q")
    out_starts = array("d")
    out_ends = array("d")
    out_ops = array("I")
    out_subjects = array("q")
    out_objects = array("q")
    op_remap: dict[int, int] = {}
    op_strings: list[str] = []
    group_cache: dict[tuple[int, int], tuple] = {}
    groups: dict[tuple, int] = {}
    for row in selected:
        row = int(row)
        out_ids.append(ids[row])
        out_starts.append(starts[row])
        out_ends.append(ends[row])
        code = operations[row]
        op_slot = op_remap.get(code)
        if op_slot is None:
            op_slot = op_remap[code] = len(op_strings)
            text = strings[code]
            assert text is not None  # operation is NOT NULL
            op_strings.append(text)
        out_ops.append(op_slot)
        subject_id = subjects[row]
        object_id = objects[row]
        out_subjects.append(subject_id)
        out_objects.append(object_id)
        if getters:
            cache_key = (subject_id, object_id)
            key = group_cache.get(cache_key)
            if key is None:
                subject_index = index_of(subject_id)
                object_index = index_of(object_id)
                key = tuple(
                    getter(subject_index if on_subject else object_index)
                    for on_subject, getter in getters)
                group_cache[cache_key] = key
        else:
            key = ()
        groups[key] = groups.get(key, 0) + 1
    return (len(out_ids), out_ids.tobytes(), out_starts.tobytes(),
            out_ends.tobytes(), out_ops.tobytes(), tuple(op_strings),
            out_subjects.tobytes(), out_objects.tobytes(), groups)


def unpack_aggregate(packed: PackedAggregate
                     ) -> tuple[list[tuple], dict]:
    """Re-inflate one pushdown partial.

    Returns ``(records, group_counts)`` where each record is
    ``(event_id, start_time, end_time, operation, subject_id,
    object_id)`` — the fields the coordinator needs to rebuild the
    matched-event dicts in global ``(start_time, event_id)`` order,
    with entity display names hydrated by id on the coordinator.
    """
    (count, id_bytes, start_bytes, end_bytes, op_bytes, op_strings,
     subject_bytes, object_bytes, groups) = packed
    if not count:
        return [], groups
    ids = array("q")
    ids.frombytes(id_bytes)
    starts = array("d")
    starts.frombytes(start_bytes)
    ends = array("d")
    ends.frombytes(end_bytes)
    operations = array("I")
    operations.frombytes(op_bytes)
    subjects = array("q")
    subjects.frombytes(subject_bytes)
    objects = array("q")
    objects.frombytes(object_bytes)
    records = [(ids[row], starts[row], ends[row],
                op_strings[operations[row]], subjects[row], objects[row])
               for row in range(count)]
    return records, groups


def scan_segment_aggregate(task: AggregateTask) -> PackedAggregate:
    """Worker entry point: pushdown scan of one segment."""
    return aggregate_columnar(_segment_for(task.path), task.spec,
                              task.group_columns)


__all__ = ["PatternSpec", "ColumnarTask", "AggregateTask", "PackedRows",
           "PackedAggregate", "build_pattern_spec", "scan_columnar",
           "aggregate_columnar", "scan_segment_columnar",
           "scan_segment_aggregate", "unpack_rows", "unpack_aggregate"]
