"""Poirot baseline (Milajerdi et al., CCS 2019) for the RQ4 fuzzy comparison.

Poirot aligns an analyst-provided query graph against the kernel-audit
provenance graph with inexact graph pattern matching, but — unlike
ThreatRaptor's fuzzy mode — it stops its searching iteration as soon as the
first acceptable alignment (score above the threshold) is found, instead of
searching exhaustively for all aligned subgraphs.
"""

from __future__ import annotations

from .fuzzy import ALIGNMENT_SCORE_THRESHOLD, FuzzySearcher


class PoirotSearcher(FuzzySearcher):
    """Poirot-style alignment search: stop at the first acceptable one."""

    stop_after_first = True

    def __init__(self, store, score_threshold: float =
                 ALIGNMENT_SCORE_THRESHOLD,
                 strategy: str = "indexed") -> None:
        super().__init__(store, score_threshold=score_threshold,
                         strategy=strategy)


__all__ = ["PoirotSearcher"]
