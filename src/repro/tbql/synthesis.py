"""TBQL query synthesis from a threat behavior graph (Section III-E).

Synthesis proceeds in four steps:

1. *Pre-synthesis screening and IOC relation mapping* — drop graph nodes whose
   IOC types system auditing does not capture (e.g. registry keys, URLs) and
   map each remaining edge's relation verb to a TBQL operation using rules
   that consider both the verb and the connected IOC types.
2. *TBQL pattern synthesis* — source nodes become process entities, sink
   nodes become network-connection entities (IP IOCs) or file entities;
   entity attributes are the IOC strings wrapped in ``%`` wildcards; entity
   IDs are reused for repeated IOCs.
3. *Pattern relationship synthesis* — ``with evtI before evtJ`` constraints in
   ascending sequence-number order (event patterns only).
4. *Return synthesis* — ``return distinct`` over every entity ID.

The output is TBQL *text*, which the analyst can edit before execution
(human-in-the-loop analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..audit.entities import EntityType
from ..errors import SynthesisError
from ..extraction.behavior_graph import BehaviorEdge, ThreatBehaviorGraph
from ..extraction.ioc import AUDITABLE_IOC_TYPES, IOCType

#: Relation-verb mapping for edges whose target is a file-like IOC.
_FILE_TARGET_OPERATIONS = {
    "read": "read", "open": "read", "access": "read", "scan": "read",
    "collect": "read", "gather": "read", "steal": "read", "obtain": "read",
    "fetch": "read", "retrieve": "read", "extract": "read", "crack": "read",
    "write": "write", "create": "write", "drop": "write", "save": "write",
    "store": "write", "copy": "write", "compress": "write",
    "archive": "write", "encrypt": "write", "decrypt": "write",
    "encode": "write", "decode": "write", "modify": "write",
    "overwrite": "write", "install": "write", "inject": "write",
    "download": "write", "upload": "write", "transfer": "write",
    "exfiltrate": "write", "leak": "write",
    "execute": "execute", "run": "execute", "launch": "execute",
    "start": "execute", "spawn": "execute", "fork": "execute",
    "delete": "delete", "remove": "delete",
    "rename": "rename", "move": "rename",
}

#: Relation-verb mapping for edges whose target is an IP IOC.
_NETWORK_TARGET_OPERATIONS = {
    "connect": "connect", "communicate": "connect", "access": "connect",
    "download": "receive", "read": "receive", "receive": "receive",
    "fetch": "receive", "retrieve": "receive",
    "send": "send", "write": "send", "upload": "send", "transfer": "send",
    "exfiltrate": "send", "leak": "send",
}

_NETWORK_TYPES = {IOCType.IP, IOCType.CIDR}


@dataclass
class SynthesisPlan:
    """Configuration of the synthesis (the paper's "synthesis plan").

    The default plan synthesizes event patterns with wildcarded default
    attributes and temporal order constraints; a user-defined plan can switch
    to variable-length event path patterns or add extra clauses.
    """

    #: Synthesize variable-length event path patterns instead of event
    #: patterns (system-administrator configurable, Section III-E Step 2).
    use_path_patterns: bool = False
    #: When path patterns are used: ``~>`` (True) or length-1 ``->`` (False).
    fuzzy_paths: bool = True
    #: Maximum path length for ``~>`` patterns (None leaves it unbounded).
    max_path_length: int | None = 4
    #: Wrap entity attribute strings in ``%`` wildcards.
    wildcards: bool = True
    #: Emit ``with evtI before evtJ`` temporal constraints.
    temporal_order: bool = True
    #: Extra lines prepended to the query (e.g. a global time window).
    global_clauses: list[str] = field(default_factory=list)


@dataclass
class SynthesizedQuery:
    """The synthesis result: TBQL text plus bookkeeping for evaluation."""

    text: str
    entity_ids: dict[str, str]              # IOC -> entity id
    pattern_count: int
    skipped_nodes: list[str] = field(default_factory=list)
    skipped_edges: list[BehaviorEdge] = field(default_factory=list)

    def __str__(self) -> str:
        return self.text


class TBQLSynthesizer:
    """Synthesizes a TBQL query from a threat behavior graph."""

    def __init__(self, plan: SynthesisPlan | None = None) -> None:
        self.plan = plan or SynthesisPlan()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def synthesize(self, graph: ThreatBehaviorGraph) -> SynthesizedQuery:
        """Synthesize TBQL text from ``graph``.

        Raises:
            SynthesisError: when no edge survives screening and mapping.
        """
        plan = self.plan
        skipped_nodes = [node.ioc for node in graph.nodes
                         if node.ioc_type not in AUDITABLE_IOC_TYPES]
        usable_nodes = {node.ioc for node in graph.nodes
                        if node.ioc_type in AUDITABLE_IOC_TYPES}
        entity_ids: dict[str, str] = {}
        declared: set[str] = set()
        counters = {EntityType.PROCESS: 0, EntityType.FILE: 0,
                    EntityType.NETWORK: 0}
        lines: list[str] = list(plan.global_clauses)
        pattern_ids: list[str] = []
        skipped_edges: list[BehaviorEdge] = []
        pattern_index = 0
        for edge in graph.ordered_edges():
            if edge.source not in usable_nodes or \
                    edge.target not in usable_nodes:
                skipped_edges.append(edge)
                continue
            source_type = graph.node_type(edge.source)
            target_type = graph.node_type(edge.target)
            if source_type in _NETWORK_TYPES:
                # A network connection cannot be the subject of a system
                # event; such edges cannot be expressed and are screened out.
                skipped_edges.append(edge)
                continue
            mapping = self._map_relation(edge.relation, target_type)
            if mapping is None:
                skipped_edges.append(edge)
                continue
            operation, object_kind = mapping
            pattern_index += 1
            pattern_id = f"evt{pattern_index}"
            pattern_ids.append(pattern_id)
            subject_ref = self._entity_ref(edge.source, EntityType.PROCESS,
                                           entity_ids, declared, counters)
            object_ref = self._entity_ref(edge.target, object_kind,
                                          entity_ids, declared, counters)
            lines.append(self._pattern_line(subject_ref, operation,
                                            object_ref, pattern_id))
        if pattern_index == 0:
            raise SynthesisError(
                "no TBQL pattern could be synthesized: every edge of the "
                "threat behavior graph was screened out")
        if plan.temporal_order and not plan.use_path_patterns and \
                len(pattern_ids) > 1:
            constraints = ", ".join(
                f"{earlier} before {later}"
                for earlier, later in zip(pattern_ids, pattern_ids[1:]))
            lines.append(f"with {constraints}")
        ordered_ids = list(dict.fromkeys(entity_ids.values()))
        lines.append("return distinct " + ", ".join(ordered_ids))
        return SynthesizedQuery(text="\n".join(lines),
                                entity_ids=entity_ids,
                                pattern_count=pattern_index,
                                skipped_nodes=skipped_nodes,
                                skipped_edges=skipped_edges)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _map_relation(relation: str, target_type: IOCType | None
                      ) -> tuple[str, EntityType] | None:
        """Map an IOC relation verb to (TBQL operation, object entity type)."""
        verb = relation.lower()
        if target_type in _NETWORK_TYPES:
            operation = _NETWORK_TARGET_OPERATIONS.get(verb)
            if operation is None:
                return None
            return operation, EntityType.NETWORK
        operation = _FILE_TARGET_OPERATIONS.get(verb)
        if operation is None:
            return None
        return operation, EntityType.FILE

    def _entity_ref(self, ioc: str, entity_type: EntityType,
                    entity_ids: dict[str, str], declared: set[str],
                    counters: dict[EntityType, int]) -> str:
        """Return the entity reference text, declaring the filter only once.

        File and process IOCs reuse the same entity ID across patterns
        (entity-ID reuse sugar: the same concrete entity must match).
        Network IOCs always get a fresh entity ID: a connection is identified
        by its 5-tuple, so two contacts with the same C2 address are distinct
        connection entities that merely share the destination IP filter.
        """
        key = (ioc, entity_type)
        mapped = entity_ids.get(self._entity_key(key))
        if mapped is None or entity_type is EntityType.NETWORK:
            counters[entity_type] += 1
            prefix = {EntityType.PROCESS: "p", EntityType.FILE: "f",
                      EntityType.NETWORK: "i"}[entity_type]
            mapped = f"{prefix}{counters[entity_type]}"
            entity_ids.setdefault(self._entity_key(key), mapped)
            if entity_type is EntityType.NETWORK:
                entity_ids[f"{self._entity_key(key)}#{mapped}"] = mapped
        keyword = entity_type.value
        if mapped in declared:
            # Entity-ID reuse sugar: later mentions omit the attribute filter.
            return f"{keyword} {mapped}"
        declared.add(mapped)
        value = self._attribute_value(ioc, entity_type)
        return f'{keyword} {mapped}["{value}"]'

    @staticmethod
    def _entity_key(key: tuple[str, EntityType]) -> str:
        ioc, entity_type = key
        return f"{entity_type.value}:{ioc}"

    def _attribute_value(self, ioc: str, entity_type: EntityType) -> str:
        if entity_type is EntityType.NETWORK:
            return ioc.split("/")[0]
        if self.plan.wildcards:
            return f"%{ioc}%"
        return ioc

    def _pattern_line(self, subject_ref: str, operation: str,
                      object_ref: str, pattern_id: str) -> str:
        plan = self.plan
        if plan.use_path_patterns:
            if plan.fuzzy_paths:
                length = (f"(~{plan.max_path_length})"
                          if plan.max_path_length else "")
                arrow = f"~>{length}[{operation}]"
            else:
                arrow = f"->[{operation}]"
            return f"{subject_ref} {arrow} {object_ref} as {pattern_id}"
        return f"{subject_ref} {operation} {object_ref} as {pattern_id}"


def synthesize_tbql(graph: ThreatBehaviorGraph,
                    plan: SynthesisPlan | None = None) -> SynthesizedQuery:
    """Module-level convenience wrapper around :class:`TBQLSynthesizer`."""
    return TBQLSynthesizer(plan).synthesize(graph)


__all__ = ["SynthesisPlan", "SynthesizedQuery", "TBQLSynthesizer",
           "synthesize_tbql"]
