"""TBQL: the Threat Behavior Query Language subsystem.

Parser (Grammar 1), semantic resolution, query synthesis from threat behavior
graphs, compilation to SQL / Cypher data queries, pruning-score scheduling,
the exact execution engine, and the fuzzy (Poirot-extended) search mode.
"""

from .aggregate import AGGREGATION_STRATEGIES, apply_aggregation
from .ast import (AttributeComparison, AttributeRelation, BareValueFilter,
                  BooleanFilter, EntityDecl, EventPattern, MembershipFilter,
                  OperationAtom, OperationPath, ReturnClause, ReturnItem,
                  SequenceLink, TBQLQuery, TemporalRelation, TimeWindow)
from .compiler_cypher import compile_giant_cypher, compile_pattern_cypher
from .compiler_sql import compile_giant_sql, compile_pattern_sql
from .conciseness import (ConcisenessMetrics, compare_conciseness,
                          measure_conciseness)
from .diagnostics import ParseDiagnostic, make_diagnostic
from .executor import (NEGATION_STRATEGIES, PatternMatch, QueryResult,
                       TBQLExecutor)
from .formatter import format_pattern, format_query
from .fuzzy import (Alignment, FuzzySearcher, FuzzySearchResult,
                    levenshtein_distance, string_similarity)
from .lexer import tokenize
from .parser import OPERATION_NAMES, TBQLParser, parse_tbql
from .poirot import PoirotSearcher
from .scheduler import ScheduledStep, naive_schedule, pruning_score, schedule
from .semantics import (ResolvedAggregation, ResolvedPattern, ResolvedQuery,
                        resolve_query, parse_datetime)
from .synthesis import (SynthesisPlan, SynthesizedQuery, TBQLSynthesizer,
                        synthesize_tbql)

__all__ = [
    "AGGREGATION_STRATEGIES",
    "apply_aggregation",
    "AttributeComparison",
    "AttributeRelation",
    "BareValueFilter",
    "BooleanFilter",
    "EntityDecl",
    "EventPattern",
    "MembershipFilter",
    "OperationAtom",
    "OperationPath",
    "ReturnClause",
    "ReturnItem",
    "SequenceLink",
    "TBQLQuery",
    "TemporalRelation",
    "TimeWindow",
    "compile_giant_cypher",
    "compile_pattern_cypher",
    "compile_giant_sql",
    "compile_pattern_sql",
    "ConcisenessMetrics",
    "compare_conciseness",
    "measure_conciseness",
    "NEGATION_STRATEGIES",
    "ParseDiagnostic",
    "make_diagnostic",
    "PatternMatch",
    "QueryResult",
    "TBQLExecutor",
    "format_pattern",
    "format_query",
    "Alignment",
    "FuzzySearcher",
    "FuzzySearchResult",
    "levenshtein_distance",
    "string_similarity",
    "tokenize",
    "OPERATION_NAMES",
    "TBQLParser",
    "parse_tbql",
    "PoirotSearcher",
    "ScheduledStep",
    "naive_schedule",
    "pruning_score",
    "schedule",
    "ResolvedAggregation",
    "ResolvedPattern",
    "ResolvedQuery",
    "resolve_query",
    "parse_datetime",
    "SynthesisPlan",
    "SynthesizedQuery",
    "TBQLSynthesizer",
    "synthesize_tbql",
]
