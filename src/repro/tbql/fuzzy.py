"""Fuzzy search mode: inexact graph pattern matching (Section III-F).

The exact search mode misses attack activities when the OSCTI text deviates
from the ground truth (typos, renamed IOCs, extra intermediate processes).
The fuzzy mode, which extends Poirot's alignment algorithm, tolerates such
deviations:

* *node-level alignment* uses Levenshtein similarity between the IOC strings
  in the TBQL query and entity attributes in the store, so small string
  changes still retrieve the right entities;
* *graph-level alignment* matches the query's subgraph shape against the
  provenance graph: for every query edge the aligner looks for an information
  flow (a bounded-length path) between the aligned endpoints, and scores the
  alignment by the aggregate flow quality (shorter flows score higher,
  echoing Poirot's ancestor-influence intuition).

:class:`FuzzySearcher` (ThreatRaptor-Fuzzy) enumerates *all* acceptable
alignments exhaustively; :class:`PoirotSearcher` (the baseline, see
:mod:`repro.tbql.poirot`) stops at the first acceptable alignment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..storage.dualstore import DualStore
from .parser import parse_tbql
from .semantics import ResolvedQuery, resolve_query
from .ast import AttributeComparison, BooleanFilter, NegatedFilter, \
    MembershipFilter

#: Minimum node similarity for a candidate alignment.
NODE_SIMILARITY_THRESHOLD = 0.6
#: Minimum overall alignment score for an alignment to be acceptable.
ALIGNMENT_SCORE_THRESHOLD = 0.7
#: Maximum flow length explored between two aligned nodes.
MAX_FLOW_LENGTH = 4


def levenshtein_distance(left: str, right: str) -> int:
    """Classic dynamic-programming Levenshtein edit distance."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            replace_cost = previous[j - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, replace_cost))
        previous = current
    return previous[-1]


def string_similarity(left: str, right: str) -> float:
    """Normalized Levenshtein similarity in [0, 1]."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    # Substring containment counts as a strong match (a path suffix or a
    # wildcard-stripped IOC inside a longer path).
    if left and right and (left in right or right in left):
        return max(0.9, 1.0 - levenshtein_distance(left, right) / longest)
    return 1.0 - levenshtein_distance(left, right) / longest


# ---------------------------------------------------------------------------
# query graph and provenance index
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryNode:
    """A node of the query graph: one TBQL entity."""

    entity_id: str
    entity_type: str
    search_string: str


@dataclass(frozen=True)
class QueryEdge:
    """A directed edge of the query graph: one TBQL pattern."""

    source: str
    target: str
    operations: Optional[frozenset[str]]


@dataclass
class QueryGraph:
    """The subgraph of system behaviour a TBQL query describes."""

    nodes: list[QueryNode]
    edges: list[QueryEdge]

    @classmethod
    def from_resolved(cls, resolved: ResolvedQuery) -> "QueryGraph":
        nodes: dict[str, QueryNode] = {}
        edges: list[QueryEdge] = []
        for pattern in resolved.patterns:
            for entity in (pattern.subject, pattern.obj):
                if entity.entity_id not in nodes:
                    nodes[entity.entity_id] = QueryNode(
                        entity_id=entity.entity_id,
                        entity_type=entity.entity_type.value,
                        search_string=_search_string(entity.attr_filter))
            edges.append(QueryEdge(source=pattern.subject.entity_id,
                                   target=pattern.obj.entity_id,
                                   operations=pattern.operations))
        return cls(nodes=list(nodes.values()), edges=edges)


def _search_string(attr_filter) -> str:
    """Extract the primary IOC string from an entity's attribute filter."""
    if attr_filter is None:
        return ""
    if isinstance(attr_filter, AttributeComparison):
        if isinstance(attr_filter.value, str):
            return attr_filter.value.strip("%")
        return str(attr_filter.value)
    if isinstance(attr_filter, MembershipFilter):
        return str(attr_filter.values[0]).strip("%") if attr_filter.values \
            else ""
    if isinstance(attr_filter, NegatedFilter):
        return _search_string(attr_filter.operand)
    if isinstance(attr_filter, BooleanFilter):
        for operand in attr_filter.operands:
            found = _search_string(operand)
            if found:
                return found
    return ""


@dataclass
class ProvenanceIndex:
    """In-memory provenance graph built from the stored events."""

    node_names: dict[int, str] = field(default_factory=dict)
    node_types: dict[int, str] = field(default_factory=dict)
    out_edges: dict[int, list[tuple[int, str, float]]] = field(
        default_factory=dict)
    num_edges: int = 0

    def add_event(self, row: dict) -> None:
        subject_id = row["subject_id"]
        object_id = row["object_id"]
        self.node_names.setdefault(
            subject_id, row.get("subject_exename") or
            row.get("subject_name") or "")
        self.node_types.setdefault(subject_id, row.get("subject_type", ""))
        object_name = (row.get("object_dstip") or row.get("object_path") or
                       row.get("object_exename") or
                       row.get("object_name") or "")
        self.node_names.setdefault(object_id, object_name)
        self.node_types.setdefault(object_id, row.get("object_type", ""))
        self.out_edges.setdefault(subject_id, []).append(
            (object_id, row.get("operation", ""), row.get("start_time", 0.0)))
        self.num_edges += 1

    def candidates_for(self, query_node: QueryNode
                       ) -> list[tuple[int, float]]:
        """Return (node id, similarity) candidates above the threshold."""
        results: list[tuple[int, float]] = []
        needle = query_node.search_string
        for node_id, name in self.node_names.items():
            if query_node.entity_type and \
                    self.node_types.get(node_id) != query_node.entity_type:
                continue
            similarity = string_similarity(needle, name or "") if needle \
                else 0.5
            if similarity >= NODE_SIMILARITY_THRESHOLD:
                results.append((node_id, similarity))
        results.sort(key=lambda item: -item[1])
        return results

    def flow_score(self, source: int, target: int,
                   operations: Optional[frozenset[str]]) -> float:
        """Score the best information flow from ``source`` to ``target``.

        The score is ``1 / length`` of the shortest path whose final hop
        matches the requested operations, or 0 when no such flow exists
        within :data:`MAX_FLOW_LENGTH` hops.  Shorter flows mean fewer
        intermediate (potentially compromised) processes, mirroring Poirot's
        ancestor-influence score.
        """
        frontier = [(source, 0)]
        visited = {source}
        best = 0.0
        while frontier:
            node, depth = frontier.pop(0)
            if depth >= MAX_FLOW_LENGTH:
                continue
            for neighbor, operation, _ in self.out_edges.get(node, ()):
                hop = depth + 1
                if neighbor == target and (
                        operations is None or operation in operations or
                        not operations):
                    best = max(best, 1.0 / hop)
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append((neighbor, hop))
        return best


# ---------------------------------------------------------------------------
# alignment search
# ---------------------------------------------------------------------------


@dataclass
class Alignment:
    """A mapping from query nodes to provenance nodes plus its score."""

    mapping: dict[str, int]
    score: float
    node_names: dict[str, str] = field(default_factory=dict)


@dataclass
class FuzzySearchResult:
    """Result of a fuzzy (or Poirot) search with its timing breakdown."""

    alignments: list[Alignment]
    loading_seconds: float
    preprocessing_seconds: float
    searching_seconds: float
    candidate_counts: dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (self.loading_seconds + self.preprocessing_seconds +
                self.searching_seconds)

    @property
    def best(self) -> Optional[Alignment]:
        if not self.alignments:
            return None
        return max(self.alignments, key=lambda alignment: alignment.score)


class GraphAligner:
    """Backtracking aligner shared by the fuzzy mode and the Poirot baseline."""

    def __init__(self, query_graph: QueryGraph, index: ProvenanceIndex,
                 score_threshold: float = ALIGNMENT_SCORE_THRESHOLD,
                 max_expansions: int = 200_000) -> None:
        self.query_graph = query_graph
        self.index = index
        self.score_threshold = score_threshold
        self.max_expansions = max_expansions
        self._expansions = 0

    def alignments(self, stop_after_first: bool = False
                   ) -> Iterator[Alignment]:
        """Yield acceptable alignments (all of them, or just the first)."""
        candidates = {node.entity_id: self.index.candidates_for(node)
                      for node in self.query_graph.nodes}
        # Align the most selective query node first.
        order = sorted(self.query_graph.nodes,
                       key=lambda node: len(candidates[node.entity_id]))
        self._expansions = 0
        yield from self._extend(order, 0, {}, candidates, stop_after_first)

    def candidate_counts(self) -> dict[str, int]:
        return {node.entity_id: len(self.index.candidates_for(node))
                for node in self.query_graph.nodes}

    def _extend(self, order: list[QueryNode], position: int,
                mapping: dict[str, int],
                candidates: dict[str, list[tuple[int, float]]],
                stop_after_first: bool) -> Iterator[Alignment]:
        if self._expansions > self.max_expansions:
            return
        if position == len(order):
            alignment = self._score(mapping)
            if alignment is not None:
                yield alignment
            return
        node = order[position]
        used = set(mapping.values())
        for candidate_id, _similarity in candidates[node.entity_id]:
            if candidate_id in used:
                continue
            self._expansions += 1
            mapping[node.entity_id] = candidate_id
            if self._partial_consistent(mapping):
                produced = False
                for alignment in self._extend(order, position + 1, mapping,
                                              candidates, stop_after_first):
                    produced = True
                    yield alignment
                    if stop_after_first:
                        del mapping[node.entity_id]
                        return
                _ = produced
            del mapping[node.entity_id]

    def _partial_consistent(self, mapping: dict[str, int]) -> bool:
        """Check flows for every query edge whose endpoints are both mapped."""
        for edge in self.query_graph.edges:
            if edge.source in mapping and edge.target in mapping:
                if self.index.flow_score(mapping[edge.source],
                                         mapping[edge.target],
                                         edge.operations) == 0.0:
                    return False
        return True

    def _score(self, mapping: dict[str, int]) -> Optional[Alignment]:
        if not self.query_graph.edges:
            return None
        total = 0.0
        for edge in self.query_graph.edges:
            total += self.index.flow_score(mapping[edge.source],
                                           mapping[edge.target],
                                           edge.operations)
        score = total / len(self.query_graph.edges)
        if score < self.score_threshold:
            return None
        names = {entity_id: self.index.node_names.get(node_id, "")
                 for entity_id, node_id in mapping.items()}
        return Alignment(mapping=dict(mapping), score=score,
                         node_names=names)


class FuzzySearcher:
    """ThreatRaptor's fuzzy search mode: exhaustive alignment search."""

    stop_after_first = False

    def __init__(self, store: DualStore,
                 score_threshold: float = ALIGNMENT_SCORE_THRESHOLD) -> None:
        self.store = store
        self.score_threshold = score_threshold

    def search(self, query: str | ResolvedQuery) -> FuzzySearchResult:
        """Run the fuzzy search for a TBQL query."""
        resolved = query if isinstance(query, ResolvedQuery) else \
            resolve_query(parse_tbql(query))
        load_start = time.perf_counter()
        rows = self.store.relational.all_events()
        loading = time.perf_counter() - load_start

        prep_start = time.perf_counter()
        index = ProvenanceIndex()
        for row in rows:
            index.add_event(row)
        preprocessing = time.perf_counter() - prep_start

        search_start = time.perf_counter()
        query_graph = QueryGraph.from_resolved(resolved)
        aligner = GraphAligner(query_graph, index,
                               score_threshold=self.score_threshold)
        alignments = list(aligner.alignments(
            stop_after_first=self.stop_after_first))
        searching = time.perf_counter() - search_start
        return FuzzySearchResult(alignments=alignments,
                                 loading_seconds=loading,
                                 preprocessing_seconds=preprocessing,
                                 searching_seconds=searching,
                                 candidate_counts=aligner.candidate_counts())


__all__ = [
    "levenshtein_distance",
    "string_similarity",
    "QueryNode",
    "QueryEdge",
    "QueryGraph",
    "ProvenanceIndex",
    "Alignment",
    "FuzzySearchResult",
    "GraphAligner",
    "FuzzySearcher",
    "NODE_SIMILARITY_THRESHOLD",
    "ALIGNMENT_SCORE_THRESHOLD",
    "MAX_FLOW_LENGTH",
]
