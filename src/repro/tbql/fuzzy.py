"""Fuzzy search mode: inexact graph pattern matching (Section III-F).

The exact search mode misses attack activities when the OSCTI text deviates
from the ground truth (typos, renamed IOCs, extra intermediate processes).
The fuzzy mode, which extends Poirot's alignment algorithm, tolerates such
deviations:

* *node-level alignment* uses Levenshtein similarity between the IOC strings
  in the TBQL query and entity attributes in the store, so small string
  changes still retrieve the right entities;
* *graph-level alignment* matches the query's subgraph shape against the
  provenance graph: for every query edge the aligner looks for an information
  flow (a bounded-length path) between the aligned endpoints, and scores the
  alignment by the aggregate flow quality (shorter flows score higher,
  echoing Poirot's ancestor-influence intuition).

:class:`FuzzySearcher` (ThreatRaptor-Fuzzy) enumerates *all* acceptable
alignments exhaustively; :class:`PoirotSearcher` (the baseline, see
:mod:`repro.tbql.poirot`) stops at the first acceptable alignment.

Two search strategies are available (mirroring the executor's
``join_strategy``):

* ``"indexed"`` (default) — the fast path: node candidates come from a
  character-bigram inverted index over the unique entity names (a lossless
  prefilter, so no similarity above the threshold is missed), edit distances
  use a banded early-exit Levenshtein, information flows come from a cached
  bounded-hop flow-closure per source node, and alignment enumeration is
  pruned with an admissible branch-and-bound upper bound on the remaining
  score.
* ``"bruteforce"`` — the seed reference: a full Levenshtein DP against every
  store entity per query node and a fresh bounded BFS per query edge per
  partial alignment.  Kept for the equivalence tests and as the benchmark
  baseline; both strategies return identical alignments and scores.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..storage.dualstore import DualStore
from .parser import parse_tbql
from .semantics import ResolvedQuery, resolve_query
from .ast import AttributeComparison, BooleanFilter, NegatedFilter, \
    MembershipFilter

#: Minimum node similarity for a candidate alignment.
NODE_SIMILARITY_THRESHOLD = 0.6
#: Minimum overall alignment score for an alignment to be acceptable.
ALIGNMENT_SCORE_THRESHOLD = 0.7
#: Maximum flow length explored between two aligned nodes.
MAX_FLOW_LENGTH = 4

#: Valid ``strategy`` arguments for the fuzzy searchers.
FUZZY_STRATEGIES = ("indexed", "bruteforce")

#: Character n-gram size of the candidate prefilter index.
_NGRAM = 2


def levenshtein_distance(left: str, right: str) -> int:
    """Classic dynamic-programming Levenshtein edit distance."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            replace_cost = previous[j - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, replace_cost))
        previous = current
    return previous[-1]


def levenshtein_within(left: str, right: str, bound: int) -> Optional[int]:
    """Banded Levenshtein: the exact distance if ``<= bound``, else ``None``.

    Only the diagonal band of DP cells with ``|i - j| <= bound`` is
    evaluated, and the computation aborts as soon as every cell of a row
    exceeds the bound — the early exit that makes threshold-filtered
    similarity cheap for dissimilar strings.
    """
    if bound < 0:
        return None
    if left == right:
        return 0
    if len(left) > len(right):
        left, right = right, left
    short, long_ = len(left), len(right)
    if long_ - short > bound:
        return None
    if bound == 0:
        return None  # left != right, so the distance is at least 1
    if short == 0:
        return long_  # already known to be <= bound
    infinity = bound + 1
    previous = [j if j <= bound else infinity for j in range(long_ + 1)]
    for i in range(1, short + 1):
        low = max(1, i - bound)
        high = min(long_, i + bound)
        current = [infinity] * (long_ + 1)
        if i <= bound:
            current[0] = i
        left_char = left[i - 1]
        row_min = current[0] if low == 1 else infinity
        for j in range(low, high + 1):
            cost = min(previous[j] + 1, current[j - 1] + 1,
                       previous[j - 1] + (left_char != right[j - 1]))
            current[j] = cost
            if cost < row_min:
                row_min = cost
        if row_min > bound:
            return None
        previous = current
    distance = previous[long_]
    return distance if distance <= bound else None


def string_similarity(left: str, right: str) -> float:
    """Normalized Levenshtein similarity in [0, 1]."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    # Substring containment counts as a strong match (a path suffix or a
    # wildcard-stripped IOC inside a longer path).
    if left and right and (left in right or right in left):
        return max(0.9, 1.0 - levenshtein_distance(left, right) / longest)
    return 1.0 - levenshtein_distance(left, right) / longest


def _similarity_within(needle: str, name: str, threshold: float
                       ) -> Optional[float]:
    """:func:`string_similarity` with banded early exit below ``threshold``.

    Returns exactly ``string_similarity(needle, name)`` when that value is
    ``>= threshold`` and ``None`` otherwise, but without running the full
    DP for clearly dissimilar strings.  The Levenshtein bands carry a ``+1``
    margin so the final acceptance is decided by the same float comparison
    the brute-force path performs.
    """
    if not needle and not name:
        return 1.0 if 1.0 >= threshold else None
    longest = max(len(needle), len(name))
    if needle and name and (needle in name or name in needle):
        # Beyond d > longest/10 the containment floor of 0.9 dominates, so
        # the exact distance is only needed inside that band.
        distance = levenshtein_within(needle, name, int(0.1 * longest) + 1)
        similarity = max(0.9, 1.0 - distance / longest) \
            if distance is not None else 0.9
        return similarity if similarity >= threshold else None
    allowed = int((1.0 - threshold) * longest) + 1
    distance = levenshtein_within(needle, name, allowed)
    if distance is None:
        return None
    similarity = 1.0 - distance / longest
    return similarity if similarity >= threshold else None


def _ngrams(text: str) -> Counter:
    """Bag of character n-grams (size :data:`_NGRAM`) of ``text``."""
    return Counter(text[i:i + _NGRAM]
                   for i in range(len(text) - _NGRAM + 1))


# ---------------------------------------------------------------------------
# query graph and provenance index
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryNode:
    """A node of the query graph: one TBQL entity."""

    entity_id: str
    entity_type: str
    search_string: str


@dataclass(frozen=True)
class QueryEdge:
    """A directed edge of the query graph: one TBQL pattern."""

    source: str
    target: str
    operations: Optional[frozenset[str]]


@dataclass
class QueryGraph:
    """The subgraph of system behaviour a TBQL query describes."""

    nodes: list[QueryNode]
    edges: list[QueryEdge]

    @classmethod
    def from_resolved(cls, resolved: ResolvedQuery) -> "QueryGraph":
        nodes: dict[str, QueryNode] = {}
        edges: list[QueryEdge] = []
        for pattern in resolved.patterns:
            for entity in (pattern.subject, pattern.obj):
                if entity.entity_id not in nodes:
                    nodes[entity.entity_id] = QueryNode(
                        entity_id=entity.entity_id,
                        entity_type=entity.entity_type.value,
                        search_string=_search_string(entity.attr_filter))
            edges.append(QueryEdge(source=pattern.subject.entity_id,
                                   target=pattern.obj.entity_id,
                                   operations=pattern.operations))
        return cls(nodes=list(nodes.values()), edges=edges)


def _search_string(attr_filter) -> str:
    """Extract the primary IOC string from an entity's attribute filter."""
    if attr_filter is None:
        return ""
    if isinstance(attr_filter, AttributeComparison):
        if isinstance(attr_filter.value, str):
            return attr_filter.value.strip("%")
        return str(attr_filter.value)
    if isinstance(attr_filter, MembershipFilter):
        return str(attr_filter.values[0]).strip("%") if attr_filter.values \
            else ""
    if isinstance(attr_filter, NegatedFilter):
        return _search_string(attr_filter.operand)
    if isinstance(attr_filter, BooleanFilter):
        for operand in attr_filter.operands:
            found = _search_string(operand)
            if found:
                return found
    return ""


class _NameIndex:
    """Character-bigram inverted index over the unique entity names.

    Provides a *lossless* candidate prefilter for threshold-bounded
    Levenshtein similarity: two strings within edit distance ``d`` share at
    least ``max(|a|, |b|) - n + 1 - n*d`` n-grams, and a containment match
    (the substring boost of :func:`string_similarity`) shares every n-gram
    of the shorter string.  Names whose length makes either lower bound
    non-positive cannot be pruned by gram counting and are kept in
    per-length fallback buckets that are always scanned.
    """

    def __init__(self, node_names: dict[int, str]) -> None:
        self.names: list[str] = []
        self.nodes_by_name: dict[str, list[int]] = {}
        nodes_by_name = self.nodes_by_name
        for node_id, name in node_names.items():
            bucket = nodes_by_name.get(name)
            if bucket is None:
                bucket = nodes_by_name[name] = []
                self.names.append(name)
            bucket.append(node_id)
        # gram -> [(name index, occurrences), ...]
        self.postings: dict[str, list[tuple[int, int]]] = {}
        self.names_by_length: dict[int, list[int]] = {}
        for name_index, name in enumerate(self.names):
            self.names_by_length.setdefault(len(name), []).append(name_index)
            for gram, count in _ngrams(name).items():
                self.postings.setdefault(gram, []).append((name_index,
                                                           count))

    @staticmethod
    def _required_shared(needle_len: int, name_len: int,
                         threshold: float) -> int:
        """Minimum shared bigrams an admissible name must have.

        Admissible means either normalized distance above the threshold
        (``d <= (1 - threshold) * L`` with the same ``+1`` float margin the
        banded DP uses) or substring containment (which shares all
        ``min_len - n + 1`` grams of the shorter string) — the two ways
        :func:`string_similarity` can reach the threshold.
        """
        longest = max(needle_len, name_len)
        allowed = int((1.0 - threshold) * longest) + 1
        by_distance = longest - _NGRAM + 1 - _NGRAM * allowed
        if threshold <= 0.9:
            by_containment = min(needle_len, name_len) - _NGRAM + 1
            return min(by_distance, by_containment)
        return by_distance

    def candidate_names(self, needle: str, threshold: float) -> list[int]:
        """Return indexes of names the prefilter cannot rule out."""
        needle_len = len(needle)
        shared: dict[int, int] = {}
        for gram, count in _ngrams(needle).items():
            for name_index, occurrences in self.postings.get(gram, ()):
                shared[name_index] = shared.get(name_index, 0) + \
                    min(count, occurrences)
        required_by_length = {
            length: self._required_shared(needle_len, length, threshold)
            for length in self.names_by_length}
        candidates: list[int] = []
        for length, indexes in self.names_by_length.items():
            if required_by_length[length] <= 0:
                # Too short to be prunable by gram counts: always checked.
                candidates.extend(indexes)
        names = self.names
        for name_index, count in shared.items():
            required = required_by_length[len(names[name_index])]
            if required > 0 and count >= required:
                candidates.append(name_index)
        return candidates


@dataclass
class ProvenanceIndex:
    """In-memory provenance graph built from the stored events."""

    node_names: dict[int, str] = field(default_factory=dict)
    node_types: dict[int, str] = field(default_factory=dict)
    out_edges: dict[int, list[tuple[int, str, float]]] = field(
        default_factory=dict)
    num_edges: int = 0
    # Lazily-built acceleration structures (dropped on mutation; excluded
    # from equality so two value-identical indexes still compare equal).
    _name_index: Optional[_NameIndex] = field(default=None, repr=False,
                                              compare=False)
    _flow_closure: dict = field(default_factory=dict, repr=False,
                                compare=False)

    def add_event(self, row: dict) -> None:
        subject_id = row["subject_id"]
        object_id = row["object_id"]
        self.node_names.setdefault(
            subject_id, row.get("subject_exename") or
            row.get("subject_name") or "")
        self.node_types.setdefault(subject_id, row.get("subject_type", ""))
        object_name = (row.get("object_dstip") or row.get("object_path") or
                       row.get("object_exename") or
                       row.get("object_name") or "")
        self.node_names.setdefault(object_id, object_name)
        self.node_types.setdefault(object_id, row.get("object_type", ""))
        self.out_edges.setdefault(subject_id, []).append(
            (object_id, row.get("operation", ""), row.get("start_time", 0.0)))
        self.num_edges += 1
        self._name_index = None
        if self._flow_closure:
            self._flow_closure = {}

    @classmethod
    def from_graph(cls, graph) -> "ProvenanceIndex":
        """Build the index straight from the loaded property graph.

        Skips the relational round trip (the joined ``all_events()`` query
        plus one dictionary per row) the row-based construction pays; the
        resulting index is identical — node names follow the same
        ``dstip -> path -> exename -> name`` attribute precedence.
        """
        index = cls()
        node_names = index.node_names
        node_types = index.node_types
        for node in graph.nodes():
            properties = node.properties
            node_names[node.node_id] = (
                properties.get("dstip") or properties.get("path") or
                properties.get("exename") or properties.get("name") or "")
            node_types[node.node_id] = properties.get("type", "")
        out_edges = index.out_edges
        count = 0
        for edge in graph.edges():
            properties = edge.properties
            bucket = out_edges.get(edge.source)
            if bucket is None:
                bucket = out_edges[edge.source] = []
            bucket.append((edge.target, properties.get("operation", ""),
                           properties.get("start_time", 0.0)))
            count += 1
        index.num_edges = count
        return index

    # ------------------------------------------------------------------
    # node candidates
    # ------------------------------------------------------------------
    def candidates_for(self, query_node: QueryNode,
                       threshold: Optional[float] = None
                       ) -> list[tuple[int, float]]:
        """Return (node id, similarity) candidates above the threshold.

        The fast path: unique names are prefiltered through the bigram
        inverted index, then scored with the banded Levenshtein; the result
        set (ids and similarity values) is identical to
        :meth:`candidates_for_bruteforce`.
        """
        if threshold is None:
            threshold = NODE_SIMILARITY_THRESHOLD
        needle = query_node.search_string
        query_type = query_node.entity_type
        node_types = self.node_types
        results: list[tuple[int, float]] = []
        if not needle:
            if 0.5 >= threshold:
                for node_id in self.node_names:
                    if query_type and node_types.get(node_id) != query_type:
                        continue
                    results.append((node_id, 0.5))
            results.sort(key=lambda item: (-item[1], item[0]))
            return results
        index = self._name_index
        if index is None:
            index = self._name_index = _NameIndex(self.node_names)
        names = index.names
        nodes_by_name = index.nodes_by_name
        for name_index in index.candidate_names(needle, threshold):
            name = names[name_index]
            similarity = _similarity_within(needle, name, threshold)
            if similarity is None:
                continue
            for node_id in nodes_by_name[name]:
                if query_type and node_types.get(node_id) != query_type:
                    continue
                results.append((node_id, similarity))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results

    def candidates_for_bruteforce(self, query_node: QueryNode,
                                  threshold: Optional[float] = None
                                  ) -> list[tuple[int, float]]:
        """Reference candidate scan: full Levenshtein DP per store entity."""
        if threshold is None:
            threshold = NODE_SIMILARITY_THRESHOLD
        results: list[tuple[int, float]] = []
        needle = query_node.search_string
        for node_id, name in self.node_names.items():
            if query_node.entity_type and \
                    self.node_types.get(node_id) != query_node.entity_type:
                continue
            similarity = string_similarity(needle, name or "") if needle \
                else 0.5
            if similarity >= threshold:
                results.append((node_id, similarity))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results

    # ------------------------------------------------------------------
    # information flows
    # ------------------------------------------------------------------
    def flows_from(self, source: int) -> dict[int, dict[str, int]]:
        """Bounded-hop flow closure from ``source``.

        Maps each node reachable within :data:`MAX_FLOW_LENGTH` hops to
        ``{final-hop operation: minimum hop count}`` — everything
        :meth:`flow_score` needs for *any* target and operation filter, so
        one BFS per source node replaces one BFS per query edge per partial
        alignment.  Closures are cached until the index is mutated.
        """
        max_length = MAX_FLOW_LENGTH
        cached = self._flow_closure.get(source)
        if cached is not None and cached[0] == max_length:
            return cached[1]
        flows: dict[int, dict[str, int]] = {}
        out_edges = self.out_edges
        seen = {source}
        frontier = [source]
        depth = 0
        while frontier and depth < max_length:
            hop = depth + 1
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor, operation, _ in out_edges.get(node, ()):
                    operations = flows.get(neighbor)
                    if operations is None:
                        flows[neighbor] = {operation: hop}
                    elif operation not in operations:
                        operations[operation] = hop
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
            depth = hop
        self._flow_closure[source] = (max_length, flows)
        return flows

    def flow_score(self, source: int, target: int,
                   operations: Optional[frozenset[str]]) -> float:
        """Score the best information flow from ``source`` to ``target``.

        The score is ``1 / length`` of the shortest path whose final hop
        matches the requested operations, or 0 when no such flow exists
        within :data:`MAX_FLOW_LENGTH` hops.  Shorter flows mean fewer
        intermediate (potentially compromised) processes, mirroring Poirot's
        ancestor-influence score.  Served from the cached flow closure; the
        per-call BFS is retained as :meth:`flow_score_bruteforce`.
        """
        flows = self.flows_from(source).get(target)
        if not flows:
            return 0.0
        if operations:
            hops = min((hop for operation, hop in flows.items()
                        if operation in operations), default=0)
        else:
            hops = min(flows.values())
        return 1.0 / hops if hops else 0.0

    def flow_score_bruteforce(self, source: int, target: int,
                              operations: Optional[frozenset[str]]) -> float:
        """Reference flow scoring: one bounded BFS per call."""
        frontier = [(source, 0)]
        visited = {source}
        best = 0.0
        while frontier:
            node, depth = frontier.pop(0)
            if depth >= MAX_FLOW_LENGTH:
                continue
            for neighbor, operation, _ in self.out_edges.get(node, ()):
                hop = depth + 1
                if neighbor == target and (
                        operations is None or operation in operations or
                        not operations):
                    best = max(best, 1.0 / hop)
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append((neighbor, hop))
        return best


# ---------------------------------------------------------------------------
# alignment search
# ---------------------------------------------------------------------------


@dataclass
class Alignment:
    """A mapping from query nodes to provenance nodes plus its score."""

    mapping: dict[str, int]
    score: float
    node_names: dict[str, str] = field(default_factory=dict)


@dataclass
class FuzzySearchResult:
    """Result of a fuzzy (or Poirot) search with its timing breakdown."""

    alignments: list[Alignment]
    loading_seconds: float
    preprocessing_seconds: float
    searching_seconds: float
    candidate_counts: dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (self.loading_seconds + self.preprocessing_seconds +
                self.searching_seconds)

    @property
    def best(self) -> Optional[Alignment]:
        if not self.alignments:
            return None
        return max(self.alignments, key=lambda alignment: alignment.score)


class GraphAligner:
    """Backtracking aligner shared by the fuzzy mode and the Poirot baseline.

    With ``strategy="indexed"`` the aligner scores flows through the cached
    closure, checks each query edge exactly once (when its second endpoint
    is mapped), and prunes subtrees whose admissible score upper bound —
    current flow total plus 1.0 for every unscored edge — cannot reach the
    acceptance threshold.  ``strategy="bruteforce"`` reproduces the seed
    behaviour (BFS per edge per partial alignment, no bounding); both yield
    the same acceptable alignments in the same order.
    """

    def __init__(self, query_graph: QueryGraph, index: ProvenanceIndex,
                 score_threshold: float = ALIGNMENT_SCORE_THRESHOLD,
                 max_expansions: int = 200_000,
                 strategy: str = "indexed") -> None:
        if strategy not in FUZZY_STRATEGIES:
            raise ValueError(f"unknown fuzzy strategy: {strategy!r} "
                             f"(expected one of {FUZZY_STRATEGIES})")
        self.query_graph = query_graph
        self.index = index
        self.score_threshold = score_threshold
        self.max_expansions = max_expansions
        self.strategy = strategy
        if strategy == "indexed":
            self._candidates = index.candidates_for
            self._flow = index.flow_score
            self._branch_and_bound = True
        else:
            self._candidates = index.candidates_for_bruteforce
            self._flow = index.flow_score_bruteforce
            self._branch_and_bound = False
        self._expansions = 0
        self._last_candidates: Optional[dict[str, list]] = None

    def alignments(self, stop_after_first: bool = False
                   ) -> Iterator[Alignment]:
        """Yield acceptable alignments (all of them, or just the first)."""
        candidates = {node.entity_id: self._candidates(node)
                      for node in self.query_graph.nodes}
        self._last_candidates = candidates
        # Align the most selective query node first.
        order = sorted(self.query_graph.nodes,
                       key=lambda node: len(candidates[node.entity_id]))
        position_of = {node.entity_id: position
                       for position, node in enumerate(order)}
        # Edges become scorable at the position where their second endpoint
        # is assigned; each edge is checked exactly once per partial branch.
        ready_edges: list[list[QueryEdge]] = [[] for _ in order]
        for edge in self.query_graph.edges:
            position = max(position_of[edge.source],
                           position_of[edge.target])
            ready_edges[position].append(edge)
        self._expansions = 0
        yield from self._extend(order, 0, {}, candidates, ready_edges,
                                0.0, 0, stop_after_first)

    def candidate_counts(self) -> dict[str, int]:
        if self._last_candidates is not None:
            return {entity_id: len(found)
                    for entity_id, found in self._last_candidates.items()}
        return {node.entity_id: len(self._candidates(node))
                for node in self.query_graph.nodes}

    def _extend(self, order: list[QueryNode], position: int,
                mapping: dict[str, int],
                candidates: dict[str, list[tuple[int, float]]],
                ready_edges: list[list[QueryEdge]],
                flow_total: float, scored_edges: int,
                stop_after_first: bool) -> Iterator[Alignment]:
        if self._expansions > self.max_expansions:
            return
        if position == len(order):
            alignment = self._score(mapping)
            if alignment is not None:
                yield alignment
            return
        node = order[position]
        used = set(mapping.values())
        num_edges = len(self.query_graph.edges)
        newly_ready = ready_edges[position]
        for candidate_id, _similarity in candidates[node.entity_id]:
            if candidate_id in used:
                continue
            self._expansions += 1
            mapping[node.entity_id] = candidate_id
            consistent = True
            added = 0.0
            for edge in newly_ready:
                score = self._flow(mapping[edge.source],
                                   mapping[edge.target], edge.operations)
                if score == 0.0:
                    consistent = False
                    break
                added += score
            if consistent and self._branch_and_bound:
                # Admissible upper bound: every still-unscored edge can
                # contribute at most a direct flow (1.0).  Subtrees that
                # cannot reach the acceptance threshold are cut; the small
                # epsilon keeps borderline float sums on the safe side.
                scored = scored_edges + len(newly_ready)
                bound = flow_total + added + (num_edges - scored)
                if bound < self.score_threshold * num_edges - 1e-9:
                    consistent = False
            if consistent:
                for alignment in self._extend(
                        order, position + 1, mapping, candidates,
                        ready_edges, flow_total + added,
                        scored_edges + len(newly_ready), stop_after_first):
                    yield alignment
                    if stop_after_first:
                        del mapping[node.entity_id]
                        return
            del mapping[node.entity_id]

    def _score(self, mapping: dict[str, int]) -> Optional[Alignment]:
        if not self.query_graph.edges:
            return None
        total = 0.0
        for edge in self.query_graph.edges:
            total += self._flow(mapping[edge.source], mapping[edge.target],
                                edge.operations)
        score = total / len(self.query_graph.edges)
        if score < self.score_threshold:
            return None
        names = {entity_id: self.index.node_names.get(node_id, "")
                 for entity_id, node_id in mapping.items()}
        return Alignment(mapping=dict(mapping), score=score,
                         node_names=names)


class FuzzySearcher:
    """ThreatRaptor's fuzzy search mode: exhaustive alignment search."""

    stop_after_first = False

    def __init__(self, store: DualStore,
                 score_threshold: float = ALIGNMENT_SCORE_THRESHOLD,
                 strategy: str = "indexed") -> None:
        if strategy not in FUZZY_STRATEGIES:
            raise ValueError(f"unknown fuzzy strategy: {strategy!r} "
                             f"(expected one of {FUZZY_STRATEGIES})")
        self.store = store
        self.score_threshold = score_threshold
        self.strategy = strategy

    def search(self, query: str | ResolvedQuery) -> FuzzySearchResult:
        """Run the fuzzy search for a TBQL query."""
        resolved = query if isinstance(query, ResolvedQuery) else \
            resolve_query(parse_tbql(query))
        if self.strategy == "indexed":
            # The provenance index builds straight from the in-memory
            # property graph; there is no relational load phase.  When the
            # backends have drifted apart (e.g. an incremental
            # relational-only load), fall back to the relational rows so
            # both strategies always search the same data.
            load_start = time.perf_counter()
            graph = self.store.graph.graph
            in_sync = graph.num_edges() == self.store.relational.count_events()
            rows = None if in_sync else self.store.relational.all_events()
            loading = time.perf_counter() - load_start
            prep_start = time.perf_counter()
            if in_sync:
                index = ProvenanceIndex.from_graph(graph)
            else:
                index = ProvenanceIndex()
                for row in rows:
                    index.add_event(row)
            preprocessing = time.perf_counter() - prep_start
        else:
            load_start = time.perf_counter()
            rows = self.store.relational.all_events()
            loading = time.perf_counter() - load_start
            prep_start = time.perf_counter()
            index = ProvenanceIndex()
            for row in rows:
                index.add_event(row)
            preprocessing = time.perf_counter() - prep_start

        search_start = time.perf_counter()
        query_graph = QueryGraph.from_resolved(resolved)
        aligner = GraphAligner(query_graph, index,
                               score_threshold=self.score_threshold,
                               strategy=self.strategy)
        alignments = list(aligner.alignments(
            stop_after_first=self.stop_after_first))
        searching = time.perf_counter() - search_start
        return FuzzySearchResult(alignments=alignments,
                                 loading_seconds=loading,
                                 preprocessing_seconds=preprocessing,
                                 searching_seconds=searching,
                                 candidate_counts=aligner.candidate_counts())


__all__ = [
    "levenshtein_distance",
    "levenshtein_within",
    "string_similarity",
    "QueryNode",
    "QueryEdge",
    "QueryGraph",
    "ProvenanceIndex",
    "Alignment",
    "FuzzySearchResult",
    "GraphAligner",
    "FuzzySearcher",
    "FUZZY_STRATEGIES",
    "NODE_SIMILARITY_THRESHOLD",
    "ALIGNMENT_SCORE_THRESHOLD",
    "MAX_FLOW_LENGTH",
]
