"""TBQL formatter: turn a parsed query back into canonical TBQL text.

Human-in-the-loop analysis (Section II) revolves around editing synthesized
queries; the formatter supports that workflow by rendering any
:class:`~repro.tbql.ast.TBQLQuery` — parsed, synthesized, or programmatically
built — as canonical, re-parseable TBQL text.
"""

from __future__ import annotations

from ..errors import TBQLError
from .ast import (AttributeComparison, AttributeFilter, AttributeRelation,
                  BareValueFilter, BooleanFilter, EntityDecl, EventPattern,
                  GlobalFilter, MembershipFilter, NegatedFilter,
                  OperationAtom, OperationBoolean, OperationExpr,
                  OperationNegation, OperationPath, PatternRelation,
                  ReturnClause, TBQLQuery, TemporalRelation, TimeWindow)


def _format_value(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def format_attribute_filter(filt: AttributeFilter) -> str:
    """Render an attribute filter expression."""
    if isinstance(filt, BareValueFilter):
        prefix = "!" if filt.negated else ""
        return f"{prefix}{_format_value(filt.value)}"
    if isinstance(filt, AttributeComparison):
        return (f"{filt.attribute} {filt.operator} "
                f"{_format_value(filt.value)}")
    if isinstance(filt, MembershipFilter):
        values = ", ".join(_format_value(value) for value in filt.values)
        keyword = "not in" if filt.negated else "in"
        return f"{filt.attribute} {keyword} {{{values}}}"
    if isinstance(filt, NegatedFilter):
        return f"!({format_attribute_filter(filt.operand)})"
    if isinstance(filt, BooleanFilter):
        joined = f" {filt.operator} ".join(
            format_attribute_filter(operand) for operand in filt.operands)
        return f"({joined})" if len(filt.operands) > 1 else joined
    raise TBQLError(f"cannot format attribute filter: {filt!r}")


def format_operation(expr: OperationExpr) -> str:
    """Render an operation expression."""
    if isinstance(expr, OperationAtom):
        return expr.name
    if isinstance(expr, OperationNegation):
        return f"!{format_operation(expr.operand)}"
    if isinstance(expr, OperationBoolean):
        joined = f" {expr.operator} ".join(format_operation(operand)
                                           for operand in expr.operands)
        return f"({joined})"
    raise TBQLError(f"cannot format operation expression: {expr!r}")


def format_path(path: OperationPath) -> str:
    """Render a variable-length event path operator."""
    arrow = "~>" if path.fuzzy_arrow else "->"
    text = arrow
    if path.fuzzy_arrow and not (path.min_length == 1 and
                                 path.max_length is None):
        minimum = "" if path.min_length == 1 else str(path.min_length)
        maximum = "" if path.max_length is None else str(path.max_length)
        text += f"({minimum}~{maximum})"
    if path.operation is not None:
        text += f"[{format_operation(path.operation)}]"
    return text


def format_entity(entity: EntityDecl) -> str:
    """Render an entity declaration."""
    text = f"{entity.entity_type.value} {entity.entity_id}"
    if entity.attr_filter is not None:
        text += f"[{format_attribute_filter(entity.attr_filter)}]"
    return text


def format_window(window: TimeWindow) -> str:
    """Render a time window."""
    if window.kind == "range":
        return (f'from {_format_value(window.start)} '
                f'to {_format_value(window.end)}')
    if window.kind in ("at", "before", "after"):
        return f"{window.kind} {_format_value(window.start)}"
    if window.kind == "last":
        amount = window.amount
        if isinstance(amount, float) and amount.is_integer():
            amount = int(amount)
        return f"last {amount} {window.unit}"
    raise TBQLError(f"cannot format window: {window!r}")


def format_pattern(pattern: EventPattern) -> str:
    """Render one TBQL pattern (``and not`` prefix for absence patterns)."""
    if pattern.is_path_pattern:
        middle = format_path(pattern.path)
    else:
        middle = format_operation(pattern.operation)
    text = (f"{format_entity(pattern.subject)} {middle} "
            f"{format_entity(pattern.obj)}")
    if pattern.pattern_id:
        text += f" as {pattern.pattern_id}"
        if pattern.pattern_filter is not None:
            text += f"[{format_attribute_filter(pattern.pattern_filter)}]"
    if pattern.window is not None:
        text += f" {format_window(pattern.window)}"
    if pattern.negated:
        text = f"and not {text}"
    return text


def format_relation(relation: PatternRelation) -> str:
    """Render one with-clause relationship."""
    if isinstance(relation, TemporalRelation):
        bound = ""
        if relation.max_gap is not None:
            minimum = relation.min_gap if relation.min_gap is not None else 0
            minimum = int(minimum) if float(minimum).is_integer() else minimum
            maximum = relation.max_gap
            maximum = int(maximum) if float(maximum).is_integer() else maximum
            bound = f"[{minimum}-{maximum} {relation.unit}]"
        return f"{relation.left} {relation.kind}{bound} {relation.right}"
    if isinstance(relation, AttributeRelation):
        return f"{relation.left} {relation.operator} {relation.right}"
    raise TBQLError(f"cannot format relation: {relation!r}")


def format_return(clause: ReturnClause) -> str:
    """Render the return clause (plus ``group by`` / ``top`` lines)."""
    distinct = "distinct " if clause.distinct else ""
    items = ", ".join(item.dotted() for item in clause.items)
    lines = [f"return {distinct}{items}"]
    if clause.group_by:
        keys = ", ".join(item.dotted() for item in clause.group_by)
        lines.append(f"group by {keys}")
    if clause.top_n is not None:
        lines.append(f"top {clause.top_n}")
    return "\n".join(lines)


def format_global_filter(global_filter: GlobalFilter) -> str:
    if global_filter.window is not None:
        return format_window(global_filter.window)
    return format_attribute_filter(global_filter.attr_filter)


def _sequence_prefix(link) -> str:
    """Render the ``then`` connective preceding a sequenced pattern."""
    if link.max_gap is None:
        return "then "
    gap = link.max_gap
    gap = int(gap) if float(gap).is_integer() else gap
    return f"then[{gap} {link.unit}] "


def format_query(query: TBQLQuery) -> str:
    """Render a whole TBQL query as canonical multi-line text."""
    lines: list[str] = []
    for global_filter in query.global_filters:
        lines.append(format_global_filter(global_filter))
    link_by_right = {link.right_index: link
                     for link in query.sequence_links}
    for index, pattern in enumerate(query.patterns):
        link = link_by_right.get(index)
        prefix = _sequence_prefix(link) if link is not None else ""
        lines.append(prefix + format_pattern(pattern))
    if query.relations:
        lines.append("with " + ", ".join(format_relation(relation)
                                         for relation in query.relations))
    if query.return_clause is not None:
        lines.append(format_return(query.return_clause))
    return "\n".join(lines)


__all__ = [
    "format_attribute_filter",
    "format_operation",
    "format_path",
    "format_entity",
    "format_window",
    "format_pattern",
    "format_relation",
    "format_return",
    "format_query",
]
