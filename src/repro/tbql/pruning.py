"""Statistics-driven segment pruning for TBQL pattern scans.

Seal-time segment statistics (:class:`repro.storage.segments.SegmentStats`
— per-column min/max zone maps, distinct value sets for the
low-cardinality interned-string event columns, and the entity types seen
on each side of the stored events) let the executor skip whole segments
*before* any scan task is built: if no stored row could possibly satisfy
a pattern's constraints, the segment contributes nothing to the result.

Everything here is **conservative** by construction:

* a segment without stats (pre-stats manifests, failed stats parses) is
  always scanned;
* only constraints that provably exclude every row prune — a distinct
  set is consulted by running the *same* tri-valued comparison the
  columnar evaluator applies per row (:func:`~repro.tbql.colscan`'s
  ``_eval_comparison`` / ``_eval_membership``), so equality, ``IN``,
  general ``LIKE`` and prefix-``LIKE`` all prune through one rule: *no
  distinct value evaluates to TRUE*.  WHERE keeps only TRUE rows, so a
  column whose every occurring value fails the predicate cannot yield a
  match (NULL cells evaluate to unknown and are filtered anyway);
* numeric zone maps prune range predicates via interval arithmetic and
  never fire for non-numeric literals (affinity corner cases scan);
* anything the walker does not understand — entity-column leaves,
  negations, bare values, future filter nodes — conservatively keeps
  the segment.

The hypothesis conservativeness test pins the contract: a stats-pruned
segment never contains a row the unpruned reference scan returns.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from ..storage.relational.schema import EVENT_ATTRIBUTE_COLUMNS
from ..storage.segments import SegmentInfo, SegmentStats
from .ast import (AttributeComparison, AttributeFilter, BooleanFilter,
                  MembershipFilter)
from .colscan import PatternSpec, _eval_comparison, _eval_membership


def stats_pruning_enabled() -> bool:
    """Stats pruning is on unless ``REPRO_TBQL_STATS_PRUNING=0``."""
    return os.environ.get("REPRO_TBQL_STATS_PRUNING", "").strip() != "0"


def _numeric_may_match(bounds: tuple[float, float], operator: str,
                       value: Any) -> bool:
    """Could any cell inside ``[low, high]`` satisfy the predicate?"""
    if isinstance(value, bool):
        value = int(value)
    if not isinstance(value, (int, float)):
        # Text literals against numeric columns go through SQLite's
        # affinity conversions — let the row scan decide.
        return True
    low, high = bounds
    if operator == "=":
        return low <= value <= high
    if operator == "!=":
        return not (low == high == value)
    if operator == "<":
        return low < value
    if operator == "<=":
        return low <= value
    if operator == ">":
        return high > value
    if operator == ">=":
        return high >= value
    return True


def _filter_may_match(filt: Optional[AttributeFilter],
                      stats: SegmentStats) -> bool:
    """Conservative filter walk: ``False`` only on a provable miss."""
    if filt is None:
        return True
    if isinstance(filt, BooleanFilter):
        if filt.operator == "&&":
            return all(_filter_may_match(operand, stats)
                       for operand in filt.operands)
        return any(_filter_may_match(operand, stats)
                   for operand in filt.operands)
    if isinstance(filt, AttributeComparison):
        column = EVENT_ATTRIBUTE_COLUMNS.get(filt.attribute.split(".")[-1])
        if column is None:
            return True  # entity attribute (or unknown): no event stats
        values = stats.distinct.get(column)
        if values is not None:
            return any(_eval_comparison(value, filt.operator, filt.value,
                                        False) is True
                       for value in values)
        bounds = stats.numeric.get(column)
        if bounds is not None:
            return _numeric_may_match(bounds, filt.operator, filt.value)
        return True
    if isinstance(filt, MembershipFilter):
        column = EVENT_ATTRIBUTE_COLUMNS.get(filt.attribute.split(".")[-1])
        if column is None:
            return True
        values = stats.distinct.get(column)
        if values is not None:
            return any(_eval_membership(value, filt.values, filt.negated,
                                        False) is True
                       for value in values)
        if filt.negated:
            return True  # a zone map cannot disprove "not in"
        bounds = stats.numeric.get(column)
        if bounds is not None:
            return any(_numeric_may_match(bounds, "=", value)
                       for value in filt.values)
        return True
    # NegatedFilter, BareValueFilter, anything newer: keep the segment.
    return True


def segment_may_match(stats: Optional[SegmentStats],
                      spec: PatternSpec) -> bool:
    """Whether a segment with ``stats`` could hold a matching row.

    ``True`` is always safe (the segment is scanned); ``False`` is
    asserted only when the statistics prove every stored row fails the
    pattern's constraints.
    """
    if stats is None:
        return True
    if stats.subject_types is not None and \
            spec.subject_type not in stats.subject_types:
        return False
    if stats.object_types is not None and \
            spec.object_type not in stats.object_types:
        return False
    if spec.operations is not None:
        present = stats.distinct.get("operation")
        if present is not None and \
                not set(spec.operations) & set(present):
            return False
    for filt in (spec.subject_filter, spec.object_filter,
                 spec.pattern_filter):
        if not _filter_may_match(filt, stats):
            return False
    return True


def prune_by_stats(segments: list[SegmentInfo],
                   spec: Optional[PatternSpec]
                   ) -> tuple[list[SegmentInfo], int]:
    """Partition time-surviving segments by the stats verdict.

    Returns ``(survivors, pruned_count)``.  With pruning disabled, no
    spec (sqlite strategy keeps one, but candidates arrive later — the
    caller passes the spec it scans with), or stats-less segments, this
    degrades to "scan everything".
    """
    if spec is None or not stats_pruning_enabled():
        return list(segments), 0
    survivors = [segment for segment in segments
                 if segment_may_match(segment.stats, spec)]
    return survivors, len(segments) - len(survivors)


__all__ = ["stats_pruning_enabled", "segment_may_match", "prune_by_stats"]
