"""Data query scheduling (Section III-F).

Each TBQL pattern compiles into one data query (SQL for event patterns,
Cypher for path patterns).  The scheduler decides the execution order:

* every pattern gets a *pruning score* — the number of constraints it
  declares; variable-length path patterns are additionally penalized by their
  maximum path length (longer searches prune less per unit cost);
* execution starts from the highest-scoring pattern; afterwards, among the
  patterns connected to already-executed ones (sharing an entity ID), the
  highest-scoring is executed next, so that results from selective patterns
  constrain the rest.  Disconnected components fall back to the global
  maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from .semantics import ResolvedPattern, ResolvedQuery


@dataclass(frozen=True)
class ScheduledStep:
    """One step of the execution plan."""

    pattern: ResolvedPattern
    score: float
    #: Entity IDs already bound by earlier steps (candidates can be injected).
    bound_entities: frozenset[str]

    @property
    def candidate_entities(self) -> frozenset[str]:
        """This pattern's entity IDs that earlier steps already bound.

        The executor only considers these entities for candidate pushdown
        into the pattern's data query (whether a restriction is actually
        injected also depends on the candidate-set size cap).
        """
        return frozenset({self.pattern.subject.entity_id,
                          self.pattern.obj.entity_id}) & self.bound_entities


def pruning_score(pattern: ResolvedPattern) -> float:
    """Return the pruning score of one pattern.

    More declared constraints -> higher score.  For variable-length path
    patterns the score is reduced as the maximum path length grows, matching
    the paper's description ("a pattern with a smaller maximum path length
    has a higher score").
    """
    score = float(pattern.constraint_count)
    if pattern.is_path:
        max_length = pattern.max_length or 8
        score += 1.0 / max_length - 0.5
    return score


def schedule(query: ResolvedQuery) -> list[ScheduledStep]:
    """Return the ordered execution plan for ``query``.

    Only positive patterns are scheduled: ``and not`` absence patterns
    never bind candidates or join, so the executor scans them *after*
    every positive step (receiving the accumulated candidate pushdown)
    and applies them as an anti-join.
    """
    remaining = [pattern for pattern in query.patterns
                 if not pattern.negated]
    executed: list[ScheduledStep] = []
    bound: set[str] = set()
    while remaining:
        connected = [pattern for pattern in remaining
                     if {pattern.subject.entity_id,
                         pattern.obj.entity_id} & bound]
        pool = connected if connected else remaining
        best = max(pool, key=lambda pattern: (pruning_score(pattern),
                                              -pattern.index))
        executed.append(ScheduledStep(pattern=best,
                                      score=pruning_score(best),
                                      bound_entities=frozenset(bound)))
        bound.update({best.subject.entity_id, best.obj.entity_id})
        remaining.remove(best)
    return executed


def naive_schedule(query: ResolvedQuery) -> list[ScheduledStep]:
    """Execution plan in declaration order, ignoring pruning scores.

    Used by the scheduler ablation benchmark to quantify what the
    pruning-score ordering contributes.  Absence patterns are excluded
    exactly as in :func:`schedule`.
    """
    steps: list[ScheduledStep] = []
    bound: set[str] = set()
    for pattern in query.patterns:
        if pattern.negated:
            continue
        steps.append(ScheduledStep(pattern=pattern,
                                   score=pruning_score(pattern),
                                   bound_entities=frozenset(bound)))
        bound.update({pattern.subject.entity_id, pattern.obj.entity_id})
    return steps


__all__ = ["ScheduledStep", "pruning_score", "schedule", "naive_schedule"]
