"""TBQL query execution engine (exact search mode).

The engine executes a TBQL query against a :class:`~repro.storage.DualStore`
in three stages:

1. compile every pattern into a data query — SQL for event patterns,
   Cypher for (variable-length) path patterns;
2. execute the data queries in the order chosen by the scheduler, injecting
   entity-candidate constraints from previously executed patterns;
3. join the per-pattern match lists on shared entity IDs, apply temporal and
   attribute relationships from the ``with`` clause, and produce the return
   rows plus the set of matched system events.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ExecutionError
from ..storage.dualstore import DualStore
from .ast import TemporalRelation
from .compiler_cypher import compile_giant_cypher, compile_pattern_cypher
from .compiler_sql import compile_giant_sql, compile_pattern_sql
from .parser import TIME_UNIT_SECONDS, parse_tbql
from .scheduler import ScheduledStep, naive_schedule, schedule
from .semantics import ResolvedPattern, ResolvedQuery, resolve_query


@dataclass(frozen=True)
class PatternMatch:
    """One concrete match of a TBQL pattern against the store."""

    subject_key: str
    object_key: str
    subject_attrs: dict
    object_attrs: dict
    operation: Optional[str]
    start_time: float
    end_time: float
    event_ids: tuple = ()


@dataclass
class QueryResult:
    """The result of executing a TBQL query."""

    rows: list[dict[str, Any]] = field(default_factory=list)
    matched_events: list[dict[str, Any]] = field(default_factory=list)
    plan: list[str] = field(default_factory=list)
    per_pattern_matches: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def matched_event_signatures(self) -> set[tuple[str, str, str]]:
        """(subject name, operation, object name) triples of matched events."""
        return {(event["subject"], event["operation"], event["object"])
                for event in self.matched_events}

    def __len__(self) -> int:
        return len(self.rows)


def _canonical_key(attrs: dict) -> str:
    entity_type = attrs.get("type", "")
    if entity_type == "proc":
        return f"proc:{attrs.get('exename')}:{attrs.get('pid')}"
    if entity_type == "file":
        return f"file:{attrs.get('path') or attrs.get('name')}"
    return (f"ip:{attrs.get('srcip')}:{attrs.get('srcport')}:"
            f"{attrs.get('dstip')}:{attrs.get('dstport')}:"
            f"{attrs.get('protocol')}")


def _display_name(attrs: dict) -> str:
    entity_type = attrs.get("type", "")
    if entity_type == "proc":
        return str(attrs.get("exename"))
    if entity_type == "file":
        return str(attrs.get("name") or attrs.get("path"))
    return str(attrs.get("dstip"))


class TBQLExecutor:
    """Executes TBQL queries against the dual storage backends."""

    def __init__(self, store: DualStore, use_scheduler: bool = True) -> None:
        self.store = store
        self.use_scheduler = use_scheduler
        self._entity_cache: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: str | ResolvedQuery,
                now: Optional[float] = None) -> QueryResult:
        """Execute TBQL text (or an already resolved query)."""
        start = time.perf_counter()
        resolved = self._resolve(query, now)
        steps = schedule(resolved) if self.use_scheduler \
            else naive_schedule(resolved)
        matches_by_pattern: dict[str, list[PatternMatch]] = {}
        candidates: dict[str, set[str]] = {}
        plan: list[str] = []
        for step in steps:
            pattern = step.pattern
            plan.append(pattern.pattern_id)
            matches = self._execute_pattern(pattern, resolved, candidates)
            matches_by_pattern[pattern.pattern_id] = matches
            self._update_candidates(pattern, matches, candidates)
        rows, _joined_events = self._join(resolved, matches_by_pattern)
        # Matched events are counted per pattern (after candidate-constraint
        # propagation), mirroring the paper's per-event precision/recall in
        # Table VI: a pattern that matched nothing does not erase the events
        # the other patterns found.
        matched_events = self._collect_events(matches_by_pattern)
        result = QueryResult(
            rows=rows, matched_events=matched_events, plan=plan,
            per_pattern_matches={pid: len(matches) for pid, matches
                                 in matches_by_pattern.items()},
            elapsed_seconds=time.perf_counter() - start)
        return result

    def execute_giant_sql(self, query: str | ResolvedQuery,
                          now: Optional[float] = None) -> list[dict]:
        """Run the single-statement SQL baseline (RQ4 comparison)."""
        resolved = self._resolve(query, now)
        compiled = compile_giant_sql(resolved)
        return self.store.execute_sql(compiled.sql, compiled.params)

    def execute_giant_cypher(self, query: str | ResolvedQuery,
                             now: Optional[float] = None) -> list[dict]:
        """Run the single-statement Cypher baseline (RQ4 comparison)."""
        resolved = self._resolve(query, now)
        return self.store.execute_cypher(compile_giant_cypher(resolved))

    # ------------------------------------------------------------------
    # resolution / compilation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(query: str | ResolvedQuery, now: Optional[float]
                 ) -> ResolvedQuery:
        if isinstance(query, ResolvedQuery):
            return query
        return resolve_query(parse_tbql(query), now=now)

    # ------------------------------------------------------------------
    # per-pattern execution
    # ------------------------------------------------------------------
    def _execute_pattern(self, pattern: ResolvedPattern,
                         resolved: ResolvedQuery,
                         candidates: dict[str, set[str]]
                         ) -> list[PatternMatch]:
        if pattern.is_path:
            matches = self._execute_cypher_pattern(pattern, resolved)
        else:
            matches = self._execute_sql_pattern(pattern, resolved, candidates)
        # Enforce candidate restrictions produced by earlier patterns (the
        # SQL path also injects them into the query; Cypher matches and any
        # remaining cases are filtered here).
        subject_allowed = candidates.get(pattern.subject.entity_id)
        object_allowed = candidates.get(pattern.obj.entity_id)
        filtered = [match for match in matches
                    if (subject_allowed is None or
                        match.subject_key in subject_allowed) and
                    (object_allowed is None or
                     match.object_key in object_allowed)]
        return filtered

    def _execute_sql_pattern(self, pattern: ResolvedPattern,
                             resolved: ResolvedQuery,
                             candidates: dict[str, set[str]]
                             ) -> list[PatternMatch]:
        compiled = compile_pattern_sql(pattern, resolved)
        rows = self.store.execute_sql(compiled.sql, compiled.params)
        matches = []
        for row in rows:
            subject_attrs = self._entity_attrs(row["subject_id"])
            object_attrs = self._entity_attrs(row["object_id"])
            matches.append(PatternMatch(
                subject_key=_canonical_key(subject_attrs),
                object_key=_canonical_key(object_attrs),
                subject_attrs=subject_attrs, object_attrs=object_attrs,
                operation=row["operation"], start_time=row["start_time"],
                end_time=row["end_time"],
                event_ids=(row["event_id"],)))
        return matches

    def _execute_cypher_pattern(self, pattern: ResolvedPattern,
                                resolved: ResolvedQuery
                                ) -> list[PatternMatch]:
        cypher = compile_pattern_cypher(pattern, resolved)
        rows = self.store.execute_cypher(cypher)
        graph = self.store.graph.graph
        matches = []
        for row in rows:
            subject_attrs = dict(graph.node(row["subject_id"]).properties)
            object_attrs = dict(graph.node(row["object_id"]).properties)
            event_ids = row["event_ids"]
            if isinstance(event_ids, int):
                event_ids = [event_ids]
            final_edge = graph.edge(event_ids[-1]) if event_ids else None
            operation = final_edge.get("operation") if final_edge else None
            matches.append(PatternMatch(
                subject_key=_canonical_key(subject_attrs),
                object_key=_canonical_key(object_attrs),
                subject_attrs=subject_attrs, object_attrs=object_attrs,
                operation=operation,
                start_time=row.get("start_time") or 0.0,
                end_time=row.get("end_time") or 0.0,
                event_ids=tuple(event_ids)))
        return matches

    def _entity_attrs(self, entity_id: int) -> dict:
        cached = self._entity_cache.get(entity_id)
        if cached is not None:
            return cached
        row = self.store.relational.entity_by_id(entity_id)
        if row is None:
            raise ExecutionError(f"dangling entity id {entity_id} in events "
                                 "table")
        attrs = dict(row)
        attrs["group"] = attrs.pop("grp", None)
        self._entity_cache[entity_id] = attrs
        return attrs

    @staticmethod
    def _update_candidates(pattern: ResolvedPattern,
                           matches: list[PatternMatch],
                           candidates: dict[str, set[str]]) -> None:
        for entity_id, keys in (
                (pattern.subject.entity_id,
                 {match.subject_key for match in matches}),
                (pattern.obj.entity_id,
                 {match.object_key for match in matches})):
            if entity_id in candidates:
                candidates[entity_id] &= keys
            else:
                candidates[entity_id] = set(keys)

    @staticmethod
    def _collect_events(matches_by_pattern: dict[str, list[PatternMatch]]
                        ) -> list[dict]:
        events: list[dict] = []
        seen: set[tuple] = set()
        for pattern_id, matches in matches_by_pattern.items():
            for match in matches:
                signature = (match.event_ids, pattern_id)
                if signature in seen:
                    continue
                seen.add(signature)
                events.append({
                    "pattern_id": pattern_id,
                    "subject": _display_name(match.subject_attrs),
                    "operation": match.operation,
                    "object": _display_name(match.object_attrs),
                    "start_time": match.start_time,
                    "end_time": match.end_time,
                    "event_ids": list(match.event_ids),
                })
        return events

    # ------------------------------------------------------------------
    # join
    # ------------------------------------------------------------------
    def _join(self, resolved: ResolvedQuery,
              matches_by_pattern: dict[str, list[PatternMatch]]
              ) -> tuple[list[dict], list[dict]]:
        pattern_order = [pattern.pattern_id for pattern in resolved.patterns]
        # Join in ascending match-list size for efficiency.
        pattern_order.sort(key=lambda pid: len(matches_by_pattern[pid]))
        rows: list[dict] = []
        seen_rows: set[tuple] = set()
        matched_events: list[dict] = []
        seen_events: set[tuple] = set()

        def backtrack(position: int, entity_binding: dict[str, PatternMatch],
                      assignment: dict[str, PatternMatch]) -> None:
            if position == len(pattern_order):
                if not self._relations_hold(resolved, assignment):
                    return
                self._emit(resolved, assignment, rows, seen_rows,
                           matched_events, seen_events)
                return
            pattern_id = pattern_order[position]
            pattern = resolved.pattern_by_id(pattern_id)
            for match in matches_by_pattern[pattern_id]:
                subject_prev = entity_binding.get(pattern.subject.entity_id)
                object_prev = entity_binding.get(pattern.obj.entity_id)
                if subject_prev is not None and \
                        subject_prev != match.subject_key:
                    continue
                if object_prev is not None and \
                        object_prev != match.object_key:
                    continue
                new_binding = dict(entity_binding)
                new_binding[pattern.subject.entity_id] = match.subject_key
                new_binding[pattern.obj.entity_id] = match.object_key
                new_assignment = dict(assignment)
                new_assignment[pattern_id] = match
                backtrack(position + 1, new_binding, new_assignment)

        backtrack(0, {}, {})
        return rows, matched_events

    def _relations_hold(self, resolved: ResolvedQuery,
                        assignment: dict[str, PatternMatch]) -> bool:
        for relation in resolved.temporal_relations:
            if not self._temporal_holds(relation, assignment):
                return False
        for relation in resolved.attribute_relations:
            if not self._attribute_holds(relation, resolved, assignment):
                return False
        return True

    @staticmethod
    def _temporal_holds(relation: TemporalRelation,
                        assignment: dict[str, PatternMatch]) -> bool:
        left = assignment.get(relation.left)
        right = assignment.get(relation.right)
        if left is None or right is None:
            return True
        scale = TIME_UNIT_SECONDS.get(relation.unit or "sec", 1.0)
        if relation.kind == "before":
            if left.end_time > right.start_time:
                return False
            if relation.max_gap is not None and \
                    right.start_time - left.end_time > relation.max_gap * \
                    scale:
                return False
            return True
        if relation.kind == "after":
            return TBQLExecutor._temporal_holds(
                TemporalRelation(left=relation.right, kind="before",
                                 right=relation.left,
                                 min_gap=relation.min_gap,
                                 max_gap=relation.max_gap,
                                 unit=relation.unit), assignment)
        gap = (relation.max_gap or 0.0) * scale
        return abs(left.start_time - right.start_time) <= gap

    def _attribute_holds(self, relation, resolved: ResolvedQuery,
                         assignment: dict[str, PatternMatch]) -> bool:
        left_value = self._relation_value(relation.left, resolved, assignment)
        right_value = self._relation_value(relation.right, resolved,
                                           assignment)
        if left_value is None or right_value is None:
            return True
        operator = relation.operator
        if operator == "=":
            return left_value == right_value
        if operator == "!=":
            return left_value != right_value
        try:
            if operator == "<":
                return left_value < right_value
            if operator == "<=":
                return left_value <= right_value
            if operator == ">":
                return left_value > right_value
            if operator == ">=":
                return left_value >= right_value
        except TypeError:
            return False
        return False

    def _relation_value(self, dotted: str, resolved: ResolvedQuery,
                        assignment: dict[str, PatternMatch]):
        entity_id, attribute = dotted.split(".", 1)
        for pattern in resolved.patterns:
            match = assignment.get(pattern.pattern_id)
            if match is None:
                continue
            if pattern.subject.entity_id == entity_id:
                return match.subject_attrs.get(attribute)
            if pattern.obj.entity_id == entity_id:
                return match.object_attrs.get(attribute)
        return None

    def _emit(self, resolved: ResolvedQuery,
              assignment: dict[str, PatternMatch], rows: list[dict],
              seen_rows: set, matched_events: list[dict],
              seen_events: set) -> None:
        row: dict[str, Any] = {}
        for entity_id, attribute in resolved.return_items:
            row[f"{entity_id}.{attribute}"] = self._relation_value(
                f"{entity_id}.{attribute}", resolved, assignment)
        key = tuple(sorted((name, str(value)) for name, value in row.items()))
        if not resolved.distinct or key not in seen_rows:
            seen_rows.add(key)
            rows.append(row)
        for pattern_id, match in assignment.items():
            signature = (match.event_ids, pattern_id)
            if signature in seen_events:
                continue
            seen_events.add(signature)
            matched_events.append({
                "pattern_id": pattern_id,
                "subject": _display_name(match.subject_attrs),
                "operation": match.operation,
                "object": _display_name(match.object_attrs),
                "start_time": match.start_time,
                "end_time": match.end_time,
                "event_ids": list(match.event_ids),
            })


__all__ = ["PatternMatch", "QueryResult", "TBQLExecutor"]
