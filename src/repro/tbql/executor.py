"""TBQL query execution engine (exact search mode).

The engine executes a TBQL query against a :class:`~repro.storage.DualStore`
in three stages:

1. compile every pattern into a data query — SQL for event patterns,
   Cypher for (variable-length) path patterns;
2. execute the data queries in the order chosen by the scheduler, pushing
   entity-candidate restrictions from previously executed patterns down into
   both backends (``id IN (...)`` lists in SQL, ``var.id IN [...]``
   allowlists in Cypher) and hydrating all entity attributes of a pattern's
   result rows with one batched lookup per pattern;
3. join the per-pattern match lists on shared entity IDs with a pipelined
   hash join — each pattern's matches are indexed by the entity keys already
   bound by earlier join levels and probed instead of enumerated, replacing
   the seed's worst-case ``O(∏|matches_i|)`` cross-product backtracking with
   near-linear multi-way joins — apply temporal and attribute relationships
   from the ``with`` clause incrementally as soon as both sides are bound,
   and produce the return rows plus the set of matched system events.

Execution leaves behind a structured plan: :attr:`QueryResult.plan` is a list
of :class:`PlanStep` objects, one per scheduled pattern, carrying the pruning
score, backend, candidate counts, pushdown decisions, rows in/out, and
per-stage timings.  ``PlanStep`` subclasses :class:`str` (its value is the
pattern id) so existing consumers that treat the plan as a list of pattern
ids keep working unchanged.

Candidate pushdown relies on the dual-store invariant that relational entity
ids and graph node ids coincide (both backends register entities from the
same reduced event stream in the same order); the key-based post-filter is
kept as a correctness backstop, so pushdown can only ever narrow a pattern's
match list, never widen it.

The seed's backtracking join is retained as a reference implementation
(``join_strategy="backtracking"``) for the equivalence test corpus.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ExecutionError
from ..obs.metrics import get_registry
from ..obs.trace import start_span
from ..storage.dualstore import DualStore
from ..storage.relational.schema import ENTITY_ATTRIBUTE_COLUMNS
from ..storage.segments import SegmentView, prune_segments
from .aggregate import (AGGREGATION_STRATEGIES, apply_aggregation,
                        rows_from_counts)
from .ast import TemporalRelation
from .colscan import (AggregateTask, ColumnarTask, build_pattern_spec,
                      unpack_aggregate)
from .compiler_cypher import compile_giant_cypher, compile_pattern_cypher
from .compiler_sql import compile_giant_sql, compile_pattern_sql
from .parser import TIME_UNIT_SECONDS, parse_tbql
from .pruning import prune_by_stats
from .scatter import ScanTask, SegmentScanner
from .scheduler import (ScheduledStep, naive_schedule, pruning_score,
                        schedule)
from .semantics import (ResolvedPattern, ResolvedQuery, effective_window,
                        resolve_query)

#: Largest candidate set pushed down into a data query, per side.  Bigger
#: sets are cheaper to apply as the post-execution key filter than to
#: serialize into an ``IN`` list; the cap also keeps a pattern query with
#: both a subject and an object allowlist (2 x 450 ids plus the pattern's
#: own parameters) under the 999 bound-variable limit of older SQLite
#: builds.
MAX_CANDIDATE_PUSHDOWN = 450

#: Valid ``scan_strategy`` arguments: how scatter-gather workers read a
#: sealed segment.  ``"columnar"`` (default) evaluates the pattern
#: directly against the segment's memory-mapped ``events.col`` columns
#: and falls back to SQLite per segment when that payload is absent
#: (format-v2 snapshots); ``"sqlite"`` always runs the compiled pattern
#: SQL against the segment's database file.  Results are identical by
#: construction — the equivalence corpus pins both paths.
SCAN_STRATEGIES = ("columnar", "sqlite")

#: Valid ``negation_strategy`` arguments: how the anti-join tests a
#: complete positive assignment against an ``and not`` pattern's match
#: list.  ``"hash"`` (default) probes a set of shared-entity key tuples;
#: ``"scan"`` is the naive reference — a linear scan of the match list
#: per assignment — retained for the differential equivalence corpus.
NEGATION_STRATEGIES = ("hash", "scan")


@dataclass(frozen=True)
class PatternMatch:
    """One concrete match of a TBQL pattern against the store."""

    subject_key: str
    object_key: str
    subject_attrs: dict
    object_attrs: dict
    operation: Optional[str]
    start_time: float
    end_time: float
    event_ids: tuple = ()
    #: Backend entity ids (relational row id == graph node id); used for
    #: candidate pushdown into subsequent data queries.
    subject_id: Optional[int] = None
    object_id: Optional[int] = None


class PlanStep(str):
    """Structured report for one scheduled execution step.

    Compares and renders as the pattern id (``str`` value) for backward
    compatibility, while exposing the per-step statistics the benchmarks and
    ``cli.py --explain`` consume.
    """

    pattern_id: str
    backend: str
    score: float
    subject_candidates: Optional[int]
    object_candidates: Optional[int]
    pushed_subject: bool
    pushed_object: bool
    rows_in: int
    rows_out: int
    hydration_queries: int
    #: Sealed segments the pattern scan visited / skipped via manifest
    #: pruning; ``None`` when the store has no segment view (monolithic).
    segments_scanned: Optional[int]
    segments_pruned: Optional[int]
    #: Sealed segments skipped via seal-time statistics (zone maps and
    #: distinct sets) after time pruning; ``None`` on the monolithic
    #: path or when no columnar spec exists (sqlite strategy).
    segments_pruned_by_stats: Optional[int]
    #: Segment scan strategy used ("columnar"/"sqlite"); ``None`` on the
    #: monolithic path, which runs one combined-store query.
    scan_strategy: Optional[str]
    #: True when the step ran as a partial-aggregate pushdown: workers
    #: returned per-segment group counts instead of packed row arrays.
    aggregate_pushdown: bool
    #: True when the scatter pool could not be created and the segment
    #: scans ran serially in-process; ``None`` on the monolithic path.
    pool_fallback: Optional[bool]
    #: True for an ``and not`` absence pattern: scanned after every
    #: positive step and applied as an anti-join, never joined.
    negated: bool
    seconds: dict[str, float]

    def __new__(cls, pattern_id: str, **_stats) -> "PlanStep":
        return super().__new__(cls, pattern_id)

    def __init__(self, pattern_id: str, *, backend: str = "sql",
                 score: float = 0.0,
                 subject_candidates: Optional[int] = None,
                 object_candidates: Optional[int] = None,
                 pushed_subject: bool = False, pushed_object: bool = False,
                 rows_in: int = 0, rows_out: int = 0,
                 hydration_queries: int = 0,
                 segments_scanned: Optional[int] = None,
                 segments_pruned: Optional[int] = None,
                 segments_pruned_by_stats: Optional[int] = None,
                 scan_strategy: Optional[str] = None,
                 aggregate_pushdown: bool = False,
                 pool_fallback: Optional[bool] = None,
                 negated: bool = False,
                 seconds: Optional[dict[str, float]] = None) -> None:
        super().__init__()
        self.pattern_id = pattern_id
        self.negated = negated
        self.backend = backend
        self.score = score
        self.subject_candidates = subject_candidates
        self.object_candidates = object_candidates
        self.pushed_subject = pushed_subject
        self.pushed_object = pushed_object
        self.rows_in = rows_in
        self.rows_out = rows_out
        self.hydration_queries = hydration_queries
        self.segments_scanned = segments_scanned
        self.segments_pruned = segments_pruned
        self.segments_pruned_by_stats = segments_pruned_by_stats
        self.scan_strategy = scan_strategy
        self.aggregate_pushdown = aggregate_pushdown
        self.pool_fallback = pool_fallback
        self.seconds = seconds or {}

    def as_dict(self) -> dict[str, Any]:
        """Plain-data view (for tables, JSON dumps, and assertions)."""
        return {
            "pattern_id": self.pattern_id,
            "backend": self.backend,
            "score": self.score,
            "subject_candidates": self.subject_candidates,
            "object_candidates": self.object_candidates,
            "pushed_subject": self.pushed_subject,
            "pushed_object": self.pushed_object,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "hydration_queries": self.hydration_queries,
            "segments_scanned": self.segments_scanned,
            "segments_pruned": self.segments_pruned,
            "segments_pruned_by_stats": self.segments_pruned_by_stats,
            "scan_strategy": self.scan_strategy,
            "aggregate_pushdown": self.aggregate_pushdown,
            "pool_fallback": self.pool_fallback,
            "negated": self.negated,
            "seconds": dict(self.seconds),
        }


@dataclass
class QueryResult:
    """The result of executing a TBQL query."""

    rows: list[dict[str, Any]] = field(default_factory=list)
    matched_events: list[dict[str, Any]] = field(default_factory=list)
    #: Events that participate in at least one *complete* join assignment
    #: (``matched_events`` counts per-pattern matches even when the join
    #: produced nothing — the paper's per-event recall view).  Standing
    #: detections key their firing on this list: a rule has truly matched
    #: only when every pattern joined.
    joined_events: list[dict[str, Any]] = field(default_factory=list)
    #: Structured per-step execution report; each element is a
    #: :class:`PlanStep` whose string value is the pattern id.
    plan: list[PlanStep] = field(default_factory=list)
    per_pattern_matches: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    join_seconds: float = 0.0

    @property
    def matched_event_signatures(self) -> set[tuple[str, str, str]]:
        """(subject name, operation, object name) triples of matched events."""
        return {(event["subject"], event["operation"], event["object"])
                for event in self.matched_events}

    def __len__(self) -> int:
        return len(self.rows)


def _file_identity(attrs: dict) -> Optional[str]:
    """File identity value: ``path`` first, then ``name``.

    ``path`` is the file entity's unique key at ingestion and ``name``
    defaults to the path, so path-first is the canonical precedence.  The
    join key and the display name must agree on it — otherwise one file
    entity splits into two join keys when only one attribute is set.
    """
    return attrs.get("path") or attrs.get("name")


def _canonical_key(attrs: dict) -> str:
    entity_type = attrs.get("type", "")
    if entity_type == "proc":
        return f"proc:{attrs.get('exename')}:{attrs.get('pid')}"
    if entity_type == "file":
        return f"file:{_file_identity(attrs)}"
    return (f"ip:{attrs.get('srcip')}:{attrs.get('srcport')}:"
            f"{attrs.get('dstip')}:{attrs.get('dstport')}:"
            f"{attrs.get('protocol')}")


def _display_name(attrs: dict) -> str:
    entity_type = attrs.get("type", "")
    if entity_type == "proc":
        return str(attrs.get("exename"))
    if entity_type == "file":
        return str(_file_identity(attrs))
    return str(attrs.get("dstip"))


class TBQLExecutor:
    """Executes TBQL queries against the dual storage backends.

    One executor may serve :meth:`execute` calls from many threads
    concurrently (the query service shares a single instance across all
    request handlers): every piece of per-query state — schedule, candidate
    sets, match lists, plan — lives in locals, and the only cross-query
    instance state is the hydrated-entity cache, whose entries are immutable
    once inserted and whose batch updates happen under a lock.  The cache is
    invalidated automatically when the store's ``data_version`` changes
    (i.e. the stored data was replaced by a new load).

    Args:
        store: the dual relational/graph store to query.
        use_scheduler: order patterns by pruning score (Section III-F)
            instead of declaration order.
        join_strategy: ``"hash"`` (default) for the pipelined hash join, or
            ``"backtracking"`` for the seed's cross-product enumeration,
            kept as the reference implementation for equivalence tests.
        workers: worker processes for the scatter-gather stage over a
            segmented store's sealed segments; ``1`` (default) scans
            serially in-process.  Must be a positive integer.
            Irrelevant on monolithic stores.
        scan_strategy: how scatter workers read sealed segments — one of
            :data:`SCAN_STRATEGIES`.  ``"columnar"`` (default) evaluates
            patterns against each segment's memory-mapped ``events.col``
            payload, falling back to SQLite for segments without one
            (format-v2 snapshots); ``"sqlite"`` always runs the compiled
            pattern SQL.  Irrelevant on monolithic stores.
        negation_strategy: how ``and not`` absence patterns are
            anti-joined — one of :data:`NEGATION_STRATEGIES`.  ``"hash"``
            (default) probes an index of shared-entity key tuples;
            ``"scan"`` is the naive per-assignment linear scan kept as
            the reference implementation for equivalence tests.
        aggregation_strategy: how ``count()``/``group by`` accumulate —
            one of
            :data:`~repro.tbql.aggregate.AGGREGATION_STRATEGIES`.
            ``"hash"`` (default) uses one dict keyed by the group tuple;
            ``"scan"`` is the naive linear-lookup reference.
    """

    def __init__(self, store: DualStore, use_scheduler: bool = True,
                 join_strategy: str = "hash", workers: int = 1,
                 scan_strategy: str = "columnar",
                 negation_strategy: str = "hash",
                 aggregation_strategy: str = "hash") -> None:
        if join_strategy not in ("hash", "backtracking"):
            raise ValueError(f"unknown join strategy: {join_strategy!r}")
        if scan_strategy not in SCAN_STRATEGIES:
            raise ValueError(
                f"unknown scan strategy: {scan_strategy!r} "
                f"(expected one of {', '.join(SCAN_STRATEGIES)})")
        if negation_strategy not in NEGATION_STRATEGIES:
            raise ValueError(
                f"unknown negation strategy: {negation_strategy!r} "
                f"(expected one of {', '.join(NEGATION_STRATEGIES)})")
        if aggregation_strategy not in AGGREGATION_STRATEGIES:
            raise ValueError(
                f"unknown aggregation strategy: {aggregation_strategy!r} "
                f"(expected one of {', '.join(AGGREGATION_STRATEGIES)})")
        workers = int(workers)
        if workers < 1:
            raise ValueError(
                f"workers must be a positive integer, got {workers}")
        self.store = store
        self.use_scheduler = use_scheduler
        self.join_strategy = join_strategy
        self.workers = workers
        self.scan_strategy = scan_strategy
        self.negation_strategy = negation_strategy
        self.aggregation_strategy = aggregation_strategy
        self._scanner = SegmentScanner(self.workers)
        self._entity_cache: dict[int, dict] = {}
        self._cache_lock = threading.Lock()
        self._data_version = getattr(store, "data_version", None)
        self._pruning_lock = threading.Lock()
        self._pruning_counts = {"segments_scanned": 0,
                                "segments_pruned_by_time": 0,
                                "segments_pruned_by_stats": 0}

    @property
    def pool_fallback(self) -> bool:
        """True once scatter pool creation failed and scans run
        serially."""
        return self._scanner.pool_fallback

    @property
    def pruning_totals(self) -> dict[str, int]:
        """Cumulative segment-pruning counters (``GET /stats``)."""
        with self._pruning_lock:
            return dict(self._pruning_counts)

    def _record_pruning(self, scanned: int, time_pruned: int,
                        stats_pruned: int) -> None:
        with self._pruning_lock:
            self._pruning_counts["segments_scanned"] += scanned
            self._pruning_counts["segments_pruned_by_time"] += time_pruned
            self._pruning_counts["segments_pruned_by_stats"] += stats_pruned
        registry = get_registry()
        pruned = registry.counter(
            "repro_tbql_segments_pruned_total",
            "Sealed segments skipped before scanning, by reason: "
            "manifest time bounds ('time') or seal-time statistics "
            "('stats').", labels=("reason",))
        pruned.labels("time").inc(time_pruned)
        pruned.labels("stats").inc(stats_pruned)
        total = scanned + time_pruned + stats_pruned
        if total:
            registry.histogram(
                "repro_tbql_segments_pruned_fraction",
                "Fraction of sealed segments pruned (any reason) per "
                "pattern scan.",
                buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
            ).observe((time_pruned + stats_pruned) / total)

    def close(self) -> None:
        """Release the scatter-gather worker pool (idempotent)."""
        self._scanner.close()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: str | ResolvedQuery,
                now: Optional[float] = None) -> QueryResult:
        """Execute TBQL text (or an already resolved query)."""
        start = time.perf_counter()
        version = getattr(self.store, "data_version", None)
        if version != self._data_version:
            with self._cache_lock:
                self._entity_cache.clear()
                self._data_version = version
        if isinstance(query, str):
            with start_span("parse"):
                resolved = self._resolve(query, now)
        else:
            resolved = self._resolve(query, now)
        pushed = self._try_aggregate_pushdown(resolved, start)
        if pushed is not None:
            return pushed
        with start_span("plan") as plan_span:
            steps = schedule(resolved) if self.use_scheduler \
                else naive_schedule(resolved)
            plan_span.set_attribute("steps", len(steps))
        matches_by_pattern: dict[str, list[PatternMatch]] = {}
        candidate_keys: dict[str, set[str]] = {}
        candidate_ids: dict[str, set[int]] = {}
        plan: list[PlanStep] = []
        for step in steps:
            with start_span("scan",
                            pattern=step.pattern.pattern_id) as span:
                matches, plan_step = self._execute_step(step, resolved,
                                                        candidate_keys,
                                                        candidate_ids)
                span.set_attribute("rows", plan_step.rows_out)
            matches_by_pattern[step.pattern.pattern_id] = matches
            self._update_candidates(step.pattern, matches, candidate_keys,
                                    candidate_ids)
            plan.append(plan_step)
        # Absence patterns scan after every positive step so they receive
        # the accumulated candidate pushdown (sound: the anti-join only
        # ever consults matches whose shared-entity keys coincide with a
        # positive binding).  They never update the candidate sets.
        negated_matches: dict[str, list[PatternMatch]] = {}
        for pattern in resolved.patterns:
            if not pattern.negated:
                continue
            step = ScheduledStep(pattern=pattern,
                                 score=pruning_score(pattern),
                                 bound_entities=frozenset(candidate_keys))
            with start_span("scan", pattern=pattern.pattern_id,
                            negated=True) as span:
                matches, plan_step = self._execute_step(
                    step, resolved, candidate_keys, candidate_ids,
                    negated=True)
                span.set_attribute("rows", plan_step.rows_out)
            negated_matches[pattern.pattern_id] = matches
            plan.append(plan_step)
        join_start = time.perf_counter()
        with start_span("join") as span:
            rows, joined_events = self._join(resolved, matches_by_pattern,
                                             negated_matches)
            span.set_attribute("rows", len(rows))
        if resolved.aggregation is not None:
            with start_span("aggregate") as span:
                rows = apply_aggregation(
                    rows, resolved.aggregation,
                    strategy=self.aggregation_strategy)
                span.set_attribute("rows", len(rows))
        join_seconds = time.perf_counter() - join_start
        # Matched events are counted per pattern (after candidate-constraint
        # propagation), mirroring the paper's per-event precision/recall in
        # Table VI: a pattern that matched nothing does not erase the events
        # the other patterns found.  Absence-pattern matches are evidence
        # *against* the hunt and are excluded.
        matched_events = self._collect_events(matches_by_pattern)
        per_pattern = {pid: len(matches) for pid, matches
                       in matches_by_pattern.items()}
        per_pattern.update({pid: len(matches) for pid, matches
                            in negated_matches.items()})
        result = QueryResult(
            rows=rows, matched_events=matched_events,
            joined_events=joined_events, plan=plan,
            per_pattern_matches=per_pattern,
            elapsed_seconds=time.perf_counter() - start,
            join_seconds=join_seconds)
        return result

    def execute_giant_sql(self, query: str | ResolvedQuery,
                          now: Optional[float] = None) -> list[dict]:
        """Run the single-statement SQL baseline (RQ4 comparison)."""
        resolved = self._resolve(query, now)
        compiled = compile_giant_sql(resolved)
        return self.store.execute_sql(compiled.sql, compiled.params)

    def execute_giant_cypher(self, query: str | ResolvedQuery,
                             now: Optional[float] = None) -> list[dict]:
        """Run the single-statement Cypher baseline (RQ4 comparison)."""
        resolved = self._resolve(query, now)
        return self.store.execute_cypher(compile_giant_cypher(resolved))

    # ------------------------------------------------------------------
    # resolution / compilation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(query: str | ResolvedQuery, now: Optional[float]
                 ) -> ResolvedQuery:
        if isinstance(query, ResolvedQuery):
            return query
        return resolve_query(parse_tbql(query), now=now)

    # ------------------------------------------------------------------
    # per-pattern execution
    # ------------------------------------------------------------------
    @staticmethod
    def _pushdown_ids(entity_id: str, candidate_ids: dict[str, set[int]]
                      ) -> Optional[list[int]]:
        """Candidate ids to inject for ``entity_id``, or None to skip.

        Empty sets are not pushed down (``IN ()`` is not valid SQL); the
        caller skips the data query entirely in that case because the key
        post-filter would reject every row anyway.
        """
        ids = candidate_ids.get(entity_id)
        if not ids or len(ids) > MAX_CANDIDATE_PUSHDOWN:
            return None
        return sorted(ids)

    def _execute_step(self, step: ScheduledStep, resolved: ResolvedQuery,
                      candidate_keys: dict[str, set[str]],
                      candidate_ids: dict[str, set[int]],
                      negated: bool = False
                      ) -> tuple[list[PatternMatch], PlanStep]:
        pattern = step.pattern
        seconds: dict[str, float] = {}
        pushable = step.candidate_entities
        subject_ids = self._pushdown_ids(pattern.subject.entity_id,
                                         candidate_ids) \
            if pattern.subject.entity_id in pushable else None
        object_ids = self._pushdown_ids(pattern.obj.entity_id,
                                        candidate_ids) \
            if pattern.obj.entity_id in pushable else None
        subject_known = candidate_ids.get(pattern.subject.entity_id)
        object_known = candidate_ids.get(pattern.obj.entity_id)
        subject_allowed = candidate_keys.get(pattern.subject.entity_id)
        object_allowed = candidate_keys.get(pattern.obj.entity_id)
        # An empty candidate set means an earlier pattern already proved no
        # entity can match here; the data query cannot return anything the
        # post-filter would keep, so skip the backend round-trip.
        dead = (subject_allowed == set() or object_allowed == set())
        start = time.perf_counter()
        hydration_queries = 0
        segments_scanned: Optional[int] = None
        segments_pruned: Optional[int] = None
        stats_pruned: Optional[int] = None
        if dead:
            matches: list[PatternMatch] = []
        elif pattern.is_path:
            matches = self._execute_cypher_pattern(pattern, resolved,
                                                   subject_ids, object_ids)
        else:
            matches, hydration_queries, segments_scanned, \
                segments_pruned, stats_pruned = self._execute_sql_pattern(
                    pattern, resolved, subject_ids, object_ids)
        seconds["execute"] = time.perf_counter() - start
        rows_in = len(matches)
        # Enforce candidate restrictions produced by earlier patterns: the
        # data queries receive id allowlists when the sets are small enough,
        # and this key-based filter is the backstop for the rest.
        start = time.perf_counter()
        filtered = [match for match in matches
                    if (subject_allowed is None or
                        match.subject_key in subject_allowed) and
                    (object_allowed is None or
                     match.object_key in object_allowed)]
        seconds["filter"] = time.perf_counter() - start
        plan_step = PlanStep(
            pattern.pattern_id,
            backend="cypher" if pattern.is_path else "sql",
            score=step.score,
            subject_candidates=(len(subject_known)
                                if subject_known is not None else None),
            object_candidates=(len(object_known)
                               if object_known is not None else None),
            pushed_subject=subject_ids is not None,
            pushed_object=object_ids is not None,
            rows_in=rows_in, rows_out=len(filtered),
            hydration_queries=hydration_queries,
            segments_scanned=segments_scanned,
            segments_pruned=segments_pruned,
            segments_pruned_by_stats=stats_pruned,
            scan_strategy=(self.scan_strategy
                           if segments_scanned is not None else None),
            pool_fallback=(self._scanner.pool_fallback
                           if segments_scanned is not None else None),
            negated=negated,
            seconds=seconds)
        return filtered, plan_step

    def _segment_view(self) -> Optional[SegmentView]:
        view_of = getattr(self.store, "segment_view", None)
        return view_of() if callable(view_of) else None

    def _scatter_rows(self, pattern: ResolvedPattern,
                      resolved: ResolvedQuery,
                      subject_ids: Optional[list[int]],
                      object_ids: Optional[list[int]],
                      view: SegmentView
                      ) -> tuple[list[dict], int, int, Optional[int]]:
        """Scatter one pattern scan across the store's segments.

        The planner prunes sealed segments whose time bounds cannot
        intersect the pattern's resolved window (same predicate the SQL
        renders, so pruning is sound), then consults seal-time segment
        statistics to drop segments no stored row could match (sound by
        the :mod:`~repro.tbql.pruning` contract; stats-less segments
        always survive).  Survivors fan out through the scanner, the
        active tail — events past the last seal — scans the combined
        store with an id floor, and everything merges back into the
        single ``(start_time, event_id)`` order a monolithic scan would
        have produced.  Returns ``(rows, scanned, time_pruned,
        stats_pruned)``; ``stats_pruned`` is ``None`` under the sqlite
        strategy, the stats-blind reference path.
        """
        compiled = compile_pattern_sql(pattern, resolved,
                                       subject_candidates=subject_ids,
                                       object_candidates=object_ids)
        window = effective_window(pattern, resolved)
        targets = prune_segments(view.sealed, window)
        time_pruned = len(view.sealed) - len(targets)
        spec = (build_pattern_spec(pattern, resolved,
                                   subject_candidates=subject_ids,
                                   object_candidates=object_ids)
                if self.scan_strategy == "columnar" else None)
        stats_pruned: Optional[int] = None
        if spec is not None:
            targets, stats_pruned = prune_by_stats(targets, spec)
        tasks: list[ScanTask] = []
        for segment in targets:
            # Per-segment fallback: format-v2 snapshots restored into a
            # v3 store have no events.col, so those segments scan
            # through SQLite regardless of strategy.
            if spec is not None and segment.has_columnar():
                tasks.append(ColumnarTask(segment.columnar_path, spec))
            else:
                tasks.append((segment.sqlite_path, compiled.sql,
                              tuple(compiled.params)))
        with start_span("scatter", segments=len(targets),
                        pruned=len(view.sealed) - len(targets)) as span:
            rows = self._scanner.scan(tasks)
            if view.active_events:
                active = compile_pattern_sql(
                    pattern, resolved, subject_candidates=subject_ids,
                    object_candidates=object_ids,
                    min_event_id=view.active_first_event_id)
                rows.extend(self.store.execute_sql(active.sql,
                                                   active.params))
            rows.sort(key=lambda row: (row["start_time"],
                                       row["event_id"]))
            span.set_attribute("rows", len(rows))
        self._record_pruning(len(targets), time_pruned, stats_pruned or 0)
        return rows, len(targets), time_pruned, stats_pruned

    def _execute_sql_pattern(self, pattern: ResolvedPattern,
                             resolved: ResolvedQuery,
                             subject_ids: Optional[list[int]] = None,
                             object_ids: Optional[list[int]] = None
                             ) -> tuple[list[PatternMatch], int,
                                        Optional[int], Optional[int],
                                        Optional[int]]:
        view = self._segment_view()
        if view is None:
            compiled = compile_pattern_sql(pattern, resolved,
                                           subject_candidates=subject_ids,
                                           object_candidates=object_ids)
            rows = self.store.execute_sql(compiled.sql, compiled.params)
            scanned: Optional[int] = None
            pruned: Optional[int] = None
            stats_pruned: Optional[int] = None
        else:
            rows, scanned, pruned, stats_pruned = self._scatter_rows(
                pattern, resolved, subject_ids, object_ids, view)
        # Hydrate every subject/object entity of this pattern in one batched
        # query instead of one lookup per result row (the seed's N+1).
        needed = {row["subject_id"] for row in rows} | \
            {row["object_id"] for row in rows}
        with start_span("hydrate", entities=len(needed)) as span:
            hydration_queries = self._hydrate_entities(needed)
            span.set_attribute("queries", hydration_queries)
        matches = []
        for row in rows:
            subject_attrs = self._entity_attrs(row["subject_id"])
            object_attrs = self._entity_attrs(row["object_id"])
            matches.append(PatternMatch(
                subject_key=_canonical_key(subject_attrs),
                object_key=_canonical_key(object_attrs),
                subject_attrs=subject_attrs, object_attrs=object_attrs,
                operation=row["operation"], start_time=row["start_time"],
                end_time=row["end_time"],
                event_ids=(row["event_id"],),
                subject_id=row["subject_id"], object_id=row["object_id"]))
        return matches, hydration_queries, scanned, pruned, stats_pruned

    def _execute_cypher_pattern(self, pattern: ResolvedPattern,
                                resolved: ResolvedQuery,
                                subject_ids: Optional[list[int]] = None,
                                object_ids: Optional[list[int]] = None
                                ) -> list[PatternMatch]:
        cypher = compile_pattern_cypher(pattern, resolved,
                                        subject_candidates=subject_ids,
                                        object_candidates=object_ids)
        rows = self.store.execute_cypher(cypher)
        graph = self.store.graph.graph
        matches = []
        for row in rows:
            subject_attrs = dict(graph.node(row["subject_id"]).properties)
            object_attrs = dict(graph.node(row["object_id"]).properties)
            event_ids = row["event_ids"]
            if isinstance(event_ids, int):
                event_ids = [event_ids]
            final_edge = graph.edge(event_ids[-1]) if event_ids else None
            operation = final_edge.get("operation") if final_edge else None
            # Explicit None checks: a legitimate epoch-0 timestamp must not
            # be conflated with a missing value.
            start_time = row.get("start_time")
            end_time = row.get("end_time")
            matches.append(PatternMatch(
                subject_key=_canonical_key(subject_attrs),
                object_key=_canonical_key(object_attrs),
                subject_attrs=subject_attrs, object_attrs=object_attrs,
                operation=operation,
                start_time=0.0 if start_time is None else start_time,
                end_time=0.0 if end_time is None else end_time,
                event_ids=tuple(event_ids),
                subject_id=row["subject_id"], object_id=row["object_id"]))
        return matches

    def _try_aggregate_pushdown(self, resolved: ResolvedQuery,
                                started: float) -> Optional[QueryResult]:
        """Partial-aggregate pushdown for single-pattern count queries.

        When an aggregated query is one positive event pattern with no
        ``with``-clause relations, per-group counting distributes over
        segments: each scatter worker counts its segment's matches per
        group key and the coordinator merges the partial counts before
        rendering.  Workers then ship one ``(group key, count)`` pair per
        group plus a compact 44-byte packed record per match (for the
        matched events list) instead of the row scatter's 52-byte packed
        rows — display names are hydrated coordinator-side by entity id,
        through the same batched cache the ordinary path uses.

        Byte-identical to the ordinary scan-join-aggregate path by
        construction: per-segment row selection is shared with the
        columnar scan, group keys mirror ``_group_key`` exactly (for
        aggregated queries the resolver makes ``return_items`` equal
        ``group by``, so the emitted row values *are* the entity
        attributes the workers read), and
        :func:`~repro.tbql.aggregate.rows_from_counts` renders merged
        counts under a total order independent of accumulation order.
        Returns ``None`` — the ordinary path runs — whenever any
        precondition fails; the pushdown never changes results, only the
        work distribution.
        """
        aggregation = resolved.aggregation
        if aggregation is None:
            return None
        if os.environ.get("REPRO_TBQL_AGG_PUSHDOWN", "").strip() == "0":
            return None
        if (self.scan_strategy != "columnar"
                or self.join_strategy != "hash"
                or self.aggregation_strategy != "hash"):
            return None  # the reference strategies stay pushdown-free
        if len(resolved.patterns) != 1:
            return None
        pattern = resolved.patterns[0]
        if pattern.negated or pattern.is_path:
            return None
        if resolved.temporal_relations or resolved.attribute_relations:
            return None
        view = self._segment_view()
        if view is None:
            return None
        # Map every group-by pair onto (pattern side, entity column).
        # Subject first: on a self-loop pattern both sides name the same
        # entity and _relation_value resolves subject-first.
        group_sides: list[tuple[bool, str]] = []
        group_columns: list[tuple[bool, str]] = []
        for entity_id, attribute in aggregation.group_by:
            column = ENTITY_ATTRIBUTE_COLUMNS.get(attribute)
            if column is None:
                return None
            if entity_id == pattern.subject.entity_id:
                on_subject = True
            elif entity_id == pattern.obj.entity_id:
                on_subject = False
            else:
                return None
            group_sides.append((on_subject, attribute))
            group_columns.append((on_subject, column))
        spec = build_pattern_spec(pattern, resolved)
        window = effective_window(pattern, resolved)
        targets = prune_segments(view.sealed, window)
        time_pruned = len(view.sealed) - len(targets)
        survivors, stats_pruned = prune_by_stats(targets, spec)
        if any(not segment.has_columnar() for segment in survivors):
            # Format-v2 segments have no events.col; fall back to the
            # ordinary path (before recording pruning — it re-prunes).
            return None
        hydration_queries = 0
        scan_start = time.perf_counter()
        records: list[tuple] = []
        counts: dict[tuple, int] = {}
        with start_span("scatter", segments=len(survivors),
                        pruned=time_pruned + stats_pruned) as span:
            tasks: list[ScanTask] = [
                AggregateTask(segment.columnar_path, spec,
                              tuple(group_columns))
                for segment in survivors]
            for packed in self._scanner.scan_results(tasks):
                part_records, part_counts = unpack_aggregate(packed)
                records.extend(part_records)
                for key, count in part_counts.items():
                    counts[key] = counts.get(key, 0) + count
            if view.active_events:
                active = compile_pattern_sql(
                    pattern, resolved,
                    min_event_id=view.active_first_event_id)
                rows = self.store.execute_sql(active.sql, active.params)
                for row in rows:
                    records.append((row["event_id"], row["start_time"],
                                    row["end_time"], row["operation"],
                                    row["subject_id"], row["object_id"]))
            # Same global order a monolithic scan produces; matched and
            # joined events render in this order on the ordinary path.
            records.sort(key=lambda record: (record[1], record[0]))
            # One batched hydration covers the active-tail group keys
            # and every record's display names — workers ship entity
            # ids, not per-segment string tables.
            needed = {record[4] for record in records} | \
                {record[5] for record in records}
            hydration_queries = self._hydrate_entities(needed)
            if view.active_events:
                for row in rows:
                    subject_attrs = self._entity_attrs(row["subject_id"])
                    object_attrs = self._entity_attrs(row["object_id"])
                    key = tuple(
                        (subject_attrs if on_subject else object_attrs
                         ).get(attribute)
                        for on_subject, attribute in group_sides)
                    counts[key] = counts.get(key, 0) + 1
            names = {entity_id: _display_name(
                self._entity_attrs(entity_id)) for entity_id in needed}
            span.set_attribute("rows", len(records))
        seconds = {"execute": time.perf_counter() - scan_start}
        self._record_pruning(len(survivors), time_pruned, stats_pruned)
        join_start = time.perf_counter()
        with start_span("aggregate") as span:
            out_rows = rows_from_counts(counts, aggregation)
            span.set_attribute("rows", len(out_rows))
        join_seconds = time.perf_counter() - join_start
        matched_events = [{
            "pattern_id": pattern.pattern_id,
            "subject": names[record[4]],
            "operation": record[3],
            "object": names[record[5]],
            "start_time": record[1],
            "end_time": record[2],
            "event_ids": [record[0]],
        } for record in records]
        # Every single-pattern match is a complete join assignment, so
        # the joined list equals the matched list.
        joined_events = [dict(event) for event in matched_events]
        plan_step = PlanStep(
            pattern.pattern_id, backend="sql",
            score=pruning_score(pattern),
            rows_in=len(records), rows_out=len(records),
            hydration_queries=hydration_queries,
            segments_scanned=len(survivors),
            segments_pruned=time_pruned,
            segments_pruned_by_stats=stats_pruned,
            scan_strategy=self.scan_strategy,
            aggregate_pushdown=True,
            pool_fallback=self._scanner.pool_fallback,
            seconds=seconds)
        return QueryResult(
            rows=out_rows, matched_events=matched_events,
            joined_events=joined_events, plan=[plan_step],
            per_pattern_matches={pattern.pattern_id: len(records)},
            elapsed_seconds=time.perf_counter() - started,
            join_seconds=join_seconds)

    def _hydrate_entities(self, entity_ids: set[int]) -> int:
        """Batch-load uncached entity rows; returns the query count.

        The count is the number of SQL statements the store actually issued:
        0 when everything is cached, 1 for one batched ``IN`` list, more
        only when the store chunks an oversized batch.
        """
        missing = [entity_id for entity_id in entity_ids
                   if entity_id not in self._entity_cache]
        if not missing:
            return 0
        rows_by_id, queries = self.store.relational.entity_by_ids(missing)
        hydrated: dict[int, dict] = {}
        for entity_id in missing:
            row = rows_by_id.get(entity_id)
            if row is None:
                raise ExecutionError(f"dangling entity id {entity_id} in "
                                     "events table")
            attrs = dict(row)
            attrs["group"] = attrs.pop("grp", None)
            hydrated[entity_id] = attrs
        # One locked batch update; concurrent hydrations of the same ids
        # write identical values, so last-writer-wins is safe.
        with self._cache_lock:
            self._entity_cache.update(hydrated)
        return queries

    def _entity_attrs(self, entity_id: int) -> dict:
        cached = self._entity_cache.get(entity_id)
        if cached is not None:
            return cached
        self._hydrate_entities({entity_id})
        return self._entity_cache[entity_id]

    @staticmethod
    def _update_candidates(pattern: ResolvedPattern,
                           matches: list[PatternMatch],
                           candidate_keys: dict[str, set[str]],
                           candidate_ids: dict[str, set[int]]) -> None:
        for entity_id, keys, ids in (
                (pattern.subject.entity_id,
                 {match.subject_key for match in matches},
                 {match.subject_id for match in matches
                  if match.subject_id is not None}),
                (pattern.obj.entity_id,
                 {match.object_key for match in matches},
                 {match.object_id for match in matches
                  if match.object_id is not None})):
            if entity_id in candidate_keys:
                candidate_keys[entity_id] &= keys
            else:
                candidate_keys[entity_id] = set(keys)
            if entity_id in candidate_ids:
                candidate_ids[entity_id] &= ids
            else:
                candidate_ids[entity_id] = set(ids)

    @staticmethod
    def _collect_events(matches_by_pattern: dict[str, list[PatternMatch]]
                        ) -> list[dict]:
        events: list[dict] = []
        seen: set[tuple] = set()
        for pattern_id, matches in matches_by_pattern.items():
            for match in matches:
                signature = (match.event_ids, pattern_id)
                if signature in seen:
                    continue
                seen.add(signature)
                events.append({
                    "pattern_id": pattern_id,
                    "subject": _display_name(match.subject_attrs),
                    "operation": match.operation,
                    "object": _display_name(match.object_attrs),
                    "start_time": match.start_time,
                    "end_time": match.end_time,
                    "event_ids": list(match.event_ids),
                })
        return events

    # ------------------------------------------------------------------
    # join
    # ------------------------------------------------------------------
    def _join(self, resolved: ResolvedQuery,
              matches_by_pattern: dict[str, list[PatternMatch]],
              negated_matches: Optional[dict[str, list[PatternMatch]]] = None
              ) -> tuple[list[dict], list[dict]]:
        allows = self._build_negation_checker(resolved, negated_matches or {})
        if self.join_strategy == "backtracking":
            return self._join_backtracking(resolved, matches_by_pattern,
                                           allows)
        return self._join_hash(resolved, matches_by_pattern, allows)

    def _build_negation_checker(
            self, resolved: ResolvedQuery,
            negated_matches: dict[str, list[PatternMatch]]):
        """Compile the anti-join test for complete positive assignments.

        For each ``and not`` pattern the test asks: does any of its
        matches agree with the assignment's entity binding on every
        *shared* entity (an entity also bound by a positive pattern)?
        If yes, the assignment is vetoed.  Entities private to the
        absence pattern are existential — any value witnesses absence
        violation — and an absence pattern sharing no entity at all
        vetoes every assignment as soon as it matches anything.
        """
        positive_entities = {
            entity_id for pattern in resolved.patterns if not pattern.negated
            for entity_id in (pattern.subject.entity_id,
                              pattern.obj.entity_id)}
        specs = []
        for pattern in resolved.patterns:
            if not pattern.negated:
                continue
            matches = negated_matches.get(pattern.pattern_id, [])
            shared: list[tuple[bool, str]] = []
            # Both sides are kept even when they name the same entity id:
            # a self-loop binding then requires subject and object keys to
            # agree with each other, not just one of them.
            if pattern.subject.entity_id in positive_entities:
                shared.append((True, pattern.subject.entity_id))
            if pattern.obj.entity_id in positive_entities:
                shared.append((False, pattern.obj.entity_id))
            if self.negation_strategy == "hash":
                index = {tuple(match.subject_key if is_subject
                               else match.object_key
                               for is_subject, _ in shared)
                         for match in matches}
                specs.append(("hash", shared, index, bool(matches)))
            else:
                specs.append(("scan", shared, matches, bool(matches)))

        if not specs:
            return None

        def allows(entity_binding: dict[str, str]) -> bool:
            for kind, shared, data, has_matches in specs:
                if not shared:
                    if has_matches:
                        return False
                    continue
                wanted = tuple(entity_binding[entity_id]
                               for _, entity_id in shared)
                if kind == "hash":
                    if wanted in data:
                        return False
                else:
                    for match in data:
                        got = tuple(match.subject_key if is_subject
                                    else match.object_key
                                    for is_subject, _ in shared)
                        if got == wanted:
                            return False
            return True

        return allows

    @staticmethod
    def _join_order(resolved: ResolvedQuery,
                    matches_by_pattern: dict[str, list[PatternMatch]]
                    ) -> list[str]:
        """Join in ascending match-list size for efficiency."""
        order = [pattern.pattern_id for pattern in resolved.patterns
                 if not pattern.negated]
        order.sort(key=lambda pid: len(matches_by_pattern[pid]))
        return order

    def _join_hash(self, resolved: ResolvedQuery,
                   matches_by_pattern: dict[str, list[PatternMatch]],
                   negation_allows=None
                   ) -> tuple[list[dict], list[dict]]:
        """Pipelined multi-way hash join over the per-pattern match lists.

        Each join level indexes its pattern's matches by the subject/object
        entity keys already bound at that level and probes the index with the
        partial binding, so compatible matches are found in O(1) instead of
        scanning the whole list.  ``with``-clause relations are applied
        incrementally at the earliest level where their evaluation is
        guaranteed to equal evaluation on the complete assignment, so doomed
        partial joins are discarded as soon as possible.  Enumeration order
        (and therefore row and matched-event order) is identical to the
        reference backtracking join.
        """
        rows: list[dict] = []
        seen_rows: set[tuple] = set()
        matched_events: list[dict] = []
        seen_events: set[tuple] = set()
        order = self._join_order(resolved, matches_by_pattern)
        position_of = {pid: index for index, pid in enumerate(order)}

        # A relation is checked at the first level where every pattern its
        # evaluation reads is assigned.  Temporal relations read their two
        # pattern ids.  Attribute relations read, per side, the
        # first-declared pattern binding the side's entity (that is the one
        # _relation_value resolves against on a complete assignment); a side
        # whose entity no pattern binds makes the relation vacuously true.
        checks: list[list[tuple[str, Any]]] = [[] for _ in order]
        for relation in resolved.temporal_relations:
            trigger = max(position_of[relation.left],
                          position_of[relation.right])
            checks[trigger].append(("temporal", relation))
        for relation in resolved.attribute_relations:
            binder_positions = []
            for side in (relation.left, relation.right):
                entity_id = side.split(".", 1)[0]
                binder = next(
                    (pattern for pattern in resolved.patterns
                     if entity_id in (pattern.subject.entity_id,
                                      pattern.obj.entity_id)), None)
                if binder is None:
                    break
                binder_positions.append(position_of[binder.pattern_id])
            else:
                checks[max(binder_positions)].append(("attribute", relation))

        # Per-level probe structure: which of the pattern's entities are
        # already bound, and its matches indexed by the bound keys.
        levels: list[tuple[ResolvedPattern, bool, bool,
                           dict[tuple, list[PatternMatch]]]] = []
        bound: set[str] = set()
        for pattern_id in order:
            pattern = resolved.pattern_by_id(pattern_id)
            check_subject = pattern.subject.entity_id in bound
            check_object = pattern.obj.entity_id in bound
            index: dict[tuple, list[PatternMatch]] = {}
            for match in matches_by_pattern[pattern_id]:
                key = (match.subject_key if check_subject else None,
                       match.object_key if check_object else None)
                index.setdefault(key, []).append(match)
            levels.append((pattern, check_subject, check_object, index))
            bound.update((pattern.subject.entity_id, pattern.obj.entity_id))

        def extend(position: int, entity_binding: dict[str, str],
                   assignment: dict[str, PatternMatch]) -> None:
            if position == len(order):
                if negation_allows is not None and \
                        not negation_allows(entity_binding):
                    return
                self._emit(resolved, assignment, rows, seen_rows,
                           matched_events, seen_events)
                return
            pattern, check_subject, check_object, index = levels[position]
            probe = (entity_binding[pattern.subject.entity_id]
                     if check_subject else None,
                     entity_binding[pattern.obj.entity_id]
                     if check_object else None)
            for match in index.get(probe, ()):
                new_binding = dict(entity_binding)
                new_binding[pattern.subject.entity_id] = match.subject_key
                new_binding[pattern.obj.entity_id] = match.object_key
                new_assignment = dict(assignment)
                new_assignment[pattern.pattern_id] = match
                satisfied = True
                for kind, relation in checks[position]:
                    if kind == "temporal":
                        if not self._temporal_holds(relation, new_assignment):
                            satisfied = False
                            break
                    elif not self._attribute_holds(relation, resolved,
                                                   new_assignment):
                        satisfied = False
                        break
                if satisfied:
                    extend(position + 1, new_binding, new_assignment)

        extend(0, {}, {})
        return rows, matched_events

    def _join_backtracking(self, resolved: ResolvedQuery,
                           matches_by_pattern: dict[str, list[PatternMatch]],
                           negation_allows=None
                           ) -> tuple[list[dict], list[dict]]:
        """The seed's cross-product backtracking join (reference only).

        Worst-case ``O(∏|matches_i|)``: every level re-scans the pattern's
        full match list against the partial binding.  Kept so equivalence
        tests can assert the hash join produces bit-identical results.
        """
        pattern_order = self._join_order(resolved, matches_by_pattern)
        rows: list[dict] = []
        seen_rows: set[tuple] = set()
        matched_events: list[dict] = []
        seen_events: set[tuple] = set()

        def backtrack(position: int, entity_binding: dict[str, str],
                      assignment: dict[str, PatternMatch]) -> None:
            if position == len(pattern_order):
                if not self._relations_hold(resolved, assignment):
                    return
                if negation_allows is not None and \
                        not negation_allows(entity_binding):
                    return
                self._emit(resolved, assignment, rows, seen_rows,
                           matched_events, seen_events)
                return
            pattern_id = pattern_order[position]
            pattern = resolved.pattern_by_id(pattern_id)
            for match in matches_by_pattern[pattern_id]:
                subject_prev = entity_binding.get(pattern.subject.entity_id)
                object_prev = entity_binding.get(pattern.obj.entity_id)
                if subject_prev is not None and \
                        subject_prev != match.subject_key:
                    continue
                if object_prev is not None and \
                        object_prev != match.object_key:
                    continue
                new_binding = dict(entity_binding)
                new_binding[pattern.subject.entity_id] = match.subject_key
                new_binding[pattern.obj.entity_id] = match.object_key
                new_assignment = dict(assignment)
                new_assignment[pattern_id] = match
                backtrack(position + 1, new_binding, new_assignment)

        backtrack(0, {}, {})
        return rows, matched_events

    def _relations_hold(self, resolved: ResolvedQuery,
                        assignment: dict[str, PatternMatch]) -> bool:
        for relation in resolved.temporal_relations:
            if not self._temporal_holds(relation, assignment):
                return False
        for relation in resolved.attribute_relations:
            if not self._attribute_holds(relation, resolved, assignment):
                return False
        return True

    @staticmethod
    def _temporal_holds(relation: TemporalRelation,
                        assignment: dict[str, PatternMatch]) -> bool:
        left = assignment.get(relation.left)
        right = assignment.get(relation.right)
        if left is None or right is None:
            return True
        scale = TIME_UNIT_SECONDS.get(relation.unit or "sec", 1.0)
        # "then" (the resolved sequence operator) shares the evaluation of
        # a gap-bounded "before": strict ordering plus an optional bound
        # on the gap between left's end and right's start.
        if relation.kind in ("before", "then"):
            if left.end_time > right.start_time:
                return False
            if relation.max_gap is not None and \
                    right.start_time - left.end_time > relation.max_gap * \
                    scale:
                return False
            return True
        if relation.kind == "after":
            return TBQLExecutor._temporal_holds(
                TemporalRelation(left=relation.right, kind="before",
                                 right=relation.left,
                                 min_gap=relation.min_gap,
                                 max_gap=relation.max_gap,
                                 unit=relation.unit), assignment)
        gap = (relation.max_gap or 0.0) * scale
        return abs(left.start_time - right.start_time) <= gap

    def _attribute_holds(self, relation, resolved: ResolvedQuery,
                         assignment: dict[str, PatternMatch]) -> bool:
        left_value = self._relation_value(relation.left, resolved, assignment)
        right_value = self._relation_value(relation.right, resolved,
                                           assignment)
        if left_value is None or right_value is None:
            return True
        operator = relation.operator
        if operator == "=":
            return left_value == right_value
        if operator == "!=":
            return left_value != right_value
        try:
            if operator == "<":
                return left_value < right_value
            if operator == "<=":
                return left_value <= right_value
            if operator == ">":
                return left_value > right_value
            if operator == ">=":
                return left_value >= right_value
        except TypeError:
            return False
        return False

    def _relation_value(self, dotted: str, resolved: ResolvedQuery,
                        assignment: dict[str, PatternMatch]):
        entity_id, attribute = dotted.split(".", 1)
        for pattern in resolved.patterns:
            match = assignment.get(pattern.pattern_id)
            if match is None:
                continue
            if pattern.subject.entity_id == entity_id:
                return match.subject_attrs.get(attribute)
            if pattern.obj.entity_id == entity_id:
                return match.object_attrs.get(attribute)
        return None

    def _emit(self, resolved: ResolvedQuery,
              assignment: dict[str, PatternMatch], rows: list[dict],
              seen_rows: set, matched_events: list[dict],
              seen_events: set) -> None:
        row: dict[str, Any] = {}
        for entity_id, attribute in resolved.return_items:
            row[f"{entity_id}.{attribute}"] = self._relation_value(
                f"{entity_id}.{attribute}", resolved, assignment)
        key = tuple(sorted((name, str(value)) for name, value in row.items()))
        if not resolved.distinct or key not in seen_rows:
            seen_rows.add(key)
            rows.append(row)
        for pattern_id, match in assignment.items():
            signature = (match.event_ids, pattern_id)
            if signature in seen_events:
                continue
            seen_events.add(signature)
            matched_events.append({
                "pattern_id": pattern_id,
                "subject": _display_name(match.subject_attrs),
                "operation": match.operation,
                "object": _display_name(match.object_attrs),
                "start_time": match.start_time,
                "end_time": match.end_time,
                "event_ids": list(match.event_ids),
            })


__all__ = ["PatternMatch", "PlanStep", "QueryResult", "TBQLExecutor",
           "MAX_CANDIDATE_PUSHDOWN", "SCAN_STRATEGIES",
           "NEGATION_STRATEGIES"]
