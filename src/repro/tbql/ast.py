"""Abstract syntax tree for TBQL (Grammar 1 of the paper).

A TBQL query consists of optional global filters, one or more TBQL patterns
(event patterns or variable-length event path patterns), an optional ``with``
clause describing relationships between patterns, and a ``return`` clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..audit.entities import EntityType

# --------------------------------------------------------------------------
# attribute filter expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AttributeComparison:
    """``attr bop value`` — e.g. ``pid = 1`` or ``exename = "%chrome%"``."""

    attribute: str
    operator: str
    value: object


@dataclass(frozen=True)
class BareValueFilter:
    """``"%/bin/tar%"`` — a value whose attribute is the entity default."""

    value: object
    negated: bool = False


@dataclass(frozen=True)
class MembershipFilter:
    """``attr [not] in { v1, v2, ... }``."""

    attribute: str
    values: tuple
    negated: bool = False


@dataclass(frozen=True)
class BooleanFilter:
    """``&&`` / ``||`` over sub-filters."""

    operator: str                      # "&&" or "||"
    operands: tuple["AttributeFilter", ...]


@dataclass(frozen=True)
class NegatedFilter:
    operand: "AttributeFilter"


AttributeFilter = Union[AttributeComparison, BareValueFilter,
                        MembershipFilter, BooleanFilter, NegatedFilter]


# --------------------------------------------------------------------------
# operations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class OperationAtom:
    """A single operation name such as ``read``."""

    name: str


@dataclass(frozen=True)
class OperationBoolean:
    """``read || write``, ``read && !write``."""

    operator: str                      # "&&" or "||"
    operands: tuple["OperationExpr", ...]


@dataclass(frozen=True)
class OperationNegation:
    operand: "OperationExpr"


OperationExpr = Union[OperationAtom, OperationBoolean, OperationNegation]


@dataclass(frozen=True)
class OperationPath:
    """A variable-length event path ``~>(min~max)[op_expr]`` or ``->[op]``.

    ``fuzzy_arrow`` distinguishes ``~>`` (arbitrary-length path) from ``->``
    (length-1 path executed on the graph backend).
    """

    fuzzy_arrow: bool = True
    min_length: int = 1
    max_length: Optional[int] = None
    operation: Optional[OperationExpr] = None


# --------------------------------------------------------------------------
# entities, windows, patterns
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EntityDecl:
    """``proc p1["%/bin/tar%"]`` — type, ID, optional attribute filter."""

    entity_type: EntityType
    entity_id: str
    attr_filter: Optional[AttributeFilter] = None


@dataclass(frozen=True)
class TimeWindow:
    """A ``from..to``, ``at|before|after ..``, or ``last N unit`` window."""

    kind: str                      # "range", "at", "before", "after", "last"
    start: Optional[str] = None
    end: Optional[str] = None
    amount: Optional[float] = None
    unit: Optional[str] = None


@dataclass(frozen=True)
class EventPattern:
    """One TBQL pattern: subject entity, operation (or path), object entity.

    ``negated`` marks an absence pattern (``and not <pattern>``): the query
    matches only when no event satisfies the pattern alongside the positive
    bindings (an anti-join against the candidate set).
    """

    subject: EntityDecl
    obj: EntityDecl
    operation: Optional[OperationExpr] = None
    path: Optional[OperationPath] = None
    pattern_id: Optional[str] = None
    pattern_filter: Optional[AttributeFilter] = None
    window: Optional[TimeWindow] = None
    negated: bool = False

    @property
    def is_path_pattern(self) -> bool:
        return self.path is not None


@dataclass(frozen=True)
class SequenceLink:
    """``<pattern> then[30 sec] <pattern>`` — a temporal sequence edge.

    Recorded by pattern *index* at parse time (pattern ids may still be
    auto-assigned); semantic resolution rewrites it into a ``then``
    :class:`TemporalRelation` between the resolved pattern ids.  ``max_gap``
    (in ``unit``) bounds the gap between the left pattern's end and the
    right pattern's start; ``None`` means ordered with no gap bound.
    """

    left_index: int
    right_index: int
    max_gap: Optional[float] = None
    unit: Optional[str] = None


# --------------------------------------------------------------------------
# pattern relationships and return clause
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TemporalRelation:
    """``with evt1 before[0-5 min] evt2`` style temporal constraint.

    ``kind == "then"`` is the resolved form of a :class:`SequenceLink`:
    strict ordering (left ends no later than right starts) with an
    optional ``max_gap`` bound — strictly stronger than a shared window.
    """

    left: str
    kind: str                          # "before", "after", "within", "then"
    right: str
    min_gap: Optional[float] = None
    max_gap: Optional[float] = None
    unit: Optional[str] = None


@dataclass(frozen=True)
class AttributeRelation:
    """``with p1.pid = p2.pid`` style attribute constraint."""

    left: str                          # dotted reference "p1.pid"
    operator: str
    right: str


PatternRelation = Union[TemporalRelation, AttributeRelation]


@dataclass(frozen=True)
class ReturnItem:
    """A return item: ``p1``, ``p1.exename``, or the aggregate ``count()``.

    ``aggregate == "count"`` marks a ``count()`` item; its ``entity_id``
    is ``None``.
    """

    entity_id: Optional[str]
    attribute: Optional[str] = None
    aggregate: Optional[str] = None

    def dotted(self) -> str:
        if self.aggregate is not None:
            return f"{self.aggregate}()"
        return f"{self.entity_id}.{self.attribute}" if self.attribute \
            else self.entity_id


@dataclass(frozen=True)
class ReturnClause:
    """``return [distinct] items [group by items] [top N]``.

    ``group_by`` names the grouping keys of an aggregating return clause
    (empty when the clause has no explicit ``group by``); ``top_n`` keeps
    only the N most frequent groups.
    """

    items: tuple[ReturnItem, ...]
    distinct: bool = False
    group_by: tuple[ReturnItem, ...] = ()
    top_n: Optional[int] = None


@dataclass(frozen=True)
class GlobalFilter:
    """A global attribute filter or time window applying to every pattern."""

    attr_filter: Optional[AttributeFilter] = None
    window: Optional[TimeWindow] = None


@dataclass
class TBQLQuery:
    """A parsed TBQL query."""

    patterns: list[EventPattern] = field(default_factory=list)
    relations: list[PatternRelation] = field(default_factory=list)
    return_clause: Optional[ReturnClause] = None
    global_filters: list[GlobalFilter] = field(default_factory=list)
    #: ``then`` edges between adjacent patterns, by pattern index.
    sequence_links: list[SequenceLink] = field(default_factory=list)

    def pattern_ids(self) -> list[str]:
        return [pattern.pattern_id for pattern in self.patterns
                if pattern.pattern_id]

    def entity_ids(self) -> list[str]:
        """Every distinct entity ID, in first-appearance order."""
        seen: list[str] = []
        for pattern in self.patterns:
            for entity in (pattern.subject, pattern.obj):
                if entity.entity_id not in seen:
                    seen.append(entity.entity_id)
        return seen


__all__ = [
    "AttributeComparison",
    "BareValueFilter",
    "MembershipFilter",
    "BooleanFilter",
    "NegatedFilter",
    "AttributeFilter",
    "OperationAtom",
    "OperationBoolean",
    "OperationNegation",
    "OperationExpr",
    "OperationPath",
    "EntityDecl",
    "TimeWindow",
    "EventPattern",
    "SequenceLink",
    "TemporalRelation",
    "AttributeRelation",
    "PatternRelation",
    "ReturnItem",
    "ReturnClause",
    "GlobalFilter",
    "TBQLQuery",
]
