"""Abstract syntax tree for TBQL (Grammar 1 of the paper).

A TBQL query consists of optional global filters, one or more TBQL patterns
(event patterns or variable-length event path patterns), an optional ``with``
clause describing relationships between patterns, and a ``return`` clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..audit.entities import EntityType

# --------------------------------------------------------------------------
# attribute filter expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AttributeComparison:
    """``attr bop value`` — e.g. ``pid = 1`` or ``exename = "%chrome%"``."""

    attribute: str
    operator: str
    value: object


@dataclass(frozen=True)
class BareValueFilter:
    """``"%/bin/tar%"`` — a value whose attribute is the entity default."""

    value: object
    negated: bool = False


@dataclass(frozen=True)
class MembershipFilter:
    """``attr [not] in { v1, v2, ... }``."""

    attribute: str
    values: tuple
    negated: bool = False


@dataclass(frozen=True)
class BooleanFilter:
    """``&&`` / ``||`` over sub-filters."""

    operator: str                      # "&&" or "||"
    operands: tuple["AttributeFilter", ...]


@dataclass(frozen=True)
class NegatedFilter:
    operand: "AttributeFilter"


AttributeFilter = Union[AttributeComparison, BareValueFilter,
                        MembershipFilter, BooleanFilter, NegatedFilter]


# --------------------------------------------------------------------------
# operations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class OperationAtom:
    """A single operation name such as ``read``."""

    name: str


@dataclass(frozen=True)
class OperationBoolean:
    """``read || write``, ``read && !write``."""

    operator: str                      # "&&" or "||"
    operands: tuple["OperationExpr", ...]


@dataclass(frozen=True)
class OperationNegation:
    operand: "OperationExpr"


OperationExpr = Union[OperationAtom, OperationBoolean, OperationNegation]


@dataclass(frozen=True)
class OperationPath:
    """A variable-length event path ``~>(min~max)[op_expr]`` or ``->[op]``.

    ``fuzzy_arrow`` distinguishes ``~>`` (arbitrary-length path) from ``->``
    (length-1 path executed on the graph backend).
    """

    fuzzy_arrow: bool = True
    min_length: int = 1
    max_length: Optional[int] = None
    operation: Optional[OperationExpr] = None


# --------------------------------------------------------------------------
# entities, windows, patterns
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EntityDecl:
    """``proc p1["%/bin/tar%"]`` — type, ID, optional attribute filter."""

    entity_type: EntityType
    entity_id: str
    attr_filter: Optional[AttributeFilter] = None


@dataclass(frozen=True)
class TimeWindow:
    """A ``from..to``, ``at|before|after ..``, or ``last N unit`` window."""

    kind: str                      # "range", "at", "before", "after", "last"
    start: Optional[str] = None
    end: Optional[str] = None
    amount: Optional[float] = None
    unit: Optional[str] = None


@dataclass(frozen=True)
class EventPattern:
    """One TBQL pattern: subject entity, operation (or path), object entity."""

    subject: EntityDecl
    obj: EntityDecl
    operation: Optional[OperationExpr] = None
    path: Optional[OperationPath] = None
    pattern_id: Optional[str] = None
    pattern_filter: Optional[AttributeFilter] = None
    window: Optional[TimeWindow] = None

    @property
    def is_path_pattern(self) -> bool:
        return self.path is not None


# --------------------------------------------------------------------------
# pattern relationships and return clause
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TemporalRelation:
    """``with evt1 before[0-5 min] evt2`` style temporal constraint."""

    left: str
    kind: str                          # "before", "after", "within"
    right: str
    min_gap: Optional[float] = None
    max_gap: Optional[float] = None
    unit: Optional[str] = None


@dataclass(frozen=True)
class AttributeRelation:
    """``with p1.pid = p2.pid`` style attribute constraint."""

    left: str                          # dotted reference "p1.pid"
    operator: str
    right: str


PatternRelation = Union[TemporalRelation, AttributeRelation]


@dataclass(frozen=True)
class ReturnItem:
    """A return item: ``p1`` (default attribute) or ``p1.exename``."""

    entity_id: str
    attribute: Optional[str] = None

    def dotted(self) -> str:
        return f"{self.entity_id}.{self.attribute}" if self.attribute \
            else self.entity_id


@dataclass(frozen=True)
class ReturnClause:
    items: tuple[ReturnItem, ...]
    distinct: bool = False


@dataclass(frozen=True)
class GlobalFilter:
    """A global attribute filter or time window applying to every pattern."""

    attr_filter: Optional[AttributeFilter] = None
    window: Optional[TimeWindow] = None


@dataclass
class TBQLQuery:
    """A parsed TBQL query."""

    patterns: list[EventPattern] = field(default_factory=list)
    relations: list[PatternRelation] = field(default_factory=list)
    return_clause: Optional[ReturnClause] = None
    global_filters: list[GlobalFilter] = field(default_factory=list)

    def pattern_ids(self) -> list[str]:
        return [pattern.pattern_id for pattern in self.patterns
                if pattern.pattern_id]

    def entity_ids(self) -> list[str]:
        """Every distinct entity ID, in first-appearance order."""
        seen: list[str] = []
        for pattern in self.patterns:
            for entity in (pattern.subject, pattern.obj):
                if entity.entity_id not in seen:
                    seen.append(entity.entity_id)
        return seen


__all__ = [
    "AttributeComparison",
    "BareValueFilter",
    "MembershipFilter",
    "BooleanFilter",
    "NegatedFilter",
    "AttributeFilter",
    "OperationAtom",
    "OperationBoolean",
    "OperationNegation",
    "OperationExpr",
    "OperationPath",
    "EntityDecl",
    "TimeWindow",
    "EventPattern",
    "TemporalRelation",
    "AttributeRelation",
    "PatternRelation",
    "ReturnItem",
    "ReturnClause",
    "GlobalFilter",
    "TBQLQuery",
]
