"""TBQL -> SQL compilation.

Two code paths, matching the evaluation setup of RQ4:

* :func:`compile_pattern_sql` — one small *data query* per event pattern,
  executed by the scheduler (this is how ThreatRaptor runs TBQL);
* :func:`compile_giant_sql` — a single SQL statement that weaves every
  pattern's joins and constraints together (the hand-written SQL baseline).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..audit.entities import EntityType
from ..errors import TBQLSemanticError
from ..storage.relational.schema import (ENTITY_ATTRIBUTE_COLUMNS,
                                         EVENT_ATTRIBUTE_COLUMNS)
from ..storage.relational.sqlgen import SQLQuery, comparison, in_list
from .ast import (AttributeComparison, AttributeFilter, BareValueFilter,
                  BooleanFilter, MembershipFilter, NegatedFilter,
                  TemporalRelation)
from .semantics import ResolvedPattern, ResolvedQuery, effective_window

_ENTITY_TYPE_VALUE = {EntityType.FILE: "file", EntityType.PROCESS: "proc",
                      EntityType.NETWORK: "ip"}


def _column_for(alias: str, attribute: str) -> str:
    name = attribute.split(".")[-1]
    if name in ENTITY_ATTRIBUTE_COLUMNS:
        return f"{alias}.{ENTITY_ATTRIBUTE_COLUMNS[name]}"
    raise TBQLSemanticError(f"attribute {attribute!r} has no relational "
                            "column")


def _event_column_for(alias: str, attribute: str) -> str:
    name = attribute.split(".")[-1]
    if name in EVENT_ATTRIBUTE_COLUMNS:
        return f"{alias}.{EVENT_ATTRIBUTE_COLUMNS[name]}"
    raise TBQLSemanticError(f"event attribute {attribute!r} has no "
                            "relational column")


def render_filter(filt: Optional[AttributeFilter], entity_alias: str,
                  event_alias: str, params: list[Any]) -> Optional[str]:
    """Render an attribute filter into a SQL boolean expression."""
    if filt is None:
        return None
    if isinstance(filt, AttributeComparison):
        name = filt.attribute.split(".")[-1]
        if name in EVENT_ATTRIBUTE_COLUMNS:
            column = _event_column_for(event_alias, name)
        else:
            column = _column_for(entity_alias, name)
        return comparison(column, filt.operator, filt.value, params)
    if isinstance(filt, BareValueFilter):
        raise TBQLSemanticError("bare value filters must be expanded before "
                                "compilation")
    if isinstance(filt, MembershipFilter):
        name = filt.attribute.split(".")[-1]
        if name in EVENT_ATTRIBUTE_COLUMNS:
            column = _event_column_for(event_alias, name)
        else:
            column = _column_for(entity_alias, name)
        return in_list(column, list(filt.values), filt.negated, params)
    if isinstance(filt, NegatedFilter):
        inner = render_filter(filt.operand, entity_alias, event_alias, params)
        return f"NOT ({inner})"
    if isinstance(filt, BooleanFilter):
        keyword = " AND " if filt.operator == "&&" else " OR "
        rendered = [render_filter(operand, entity_alias, event_alias, params)
                    for operand in filt.operands]
        return "(" + keyword.join(part for part in rendered if part) + ")"
    raise TBQLSemanticError(f"unknown attribute filter: {filt!r}")


def _pattern_clauses(pattern: ResolvedPattern, query: ResolvedQuery,
                     event_alias: str, subject_alias: str, object_alias: str,
                     params: list[Any]) -> list[str]:
    """Shared WHERE clauses for one pattern (used by both code paths)."""
    clauses = [
        f"{subject_alias}.type = ?",
        f"{object_alias}.type = ?",
    ]
    params.extend([_ENTITY_TYPE_VALUE[pattern.subject.entity_type],
                   _ENTITY_TYPE_VALUE[pattern.obj.entity_type]])
    if pattern.operations is not None:
        clauses.append(in_list(f"{event_alias}.operation",
                               sorted(pattern.operations), False, params))
    subject_clause = render_filter(pattern.subject.attr_filter, subject_alias,
                                   event_alias, params)
    if subject_clause:
        clauses.append(subject_clause)
    object_clause = render_filter(pattern.obj.attr_filter, object_alias,
                                  event_alias, params)
    if object_clause:
        clauses.append(object_clause)
    pattern_clause = render_filter(pattern.pattern_filter, object_alias,
                                   event_alias, params)
    if pattern_clause:
        clauses.append(pattern_clause)
    window = effective_window(pattern, query)
    if window is not None:
        earliest, latest = window
        if earliest is not None:
            clauses.append(f"{event_alias}.start_time >= ?")
            params.append(earliest)
        if latest is not None:
            clauses.append(f"{event_alias}.end_time <= ?")
            params.append(latest)
    return clauses


def compile_pattern_sql(pattern: ResolvedPattern, query: ResolvedQuery,
                        subject_candidates: Sequence[int] | None = None,
                        object_candidates: Sequence[int] | None = None,
                        min_event_id: int | None = None) -> SQLQuery:
    """Compile one event pattern into a small SQL data query.

    ``subject_candidates`` / ``object_candidates`` are entity-row-id
    restrictions injected by the scheduler from previously executed
    patterns.  ``min_event_id`` restricts the scan to events at or above
    that id — how the scatter-gather executor scans only the *active*
    (not yet sealed) tail of a segmented store, whose earlier events the
    per-segment scans already covered.
    """
    params: list[Any] = []
    clauses = _pattern_clauses(pattern, query, "e", "s", "o", params)
    if subject_candidates is not None:
        clauses.append(in_list("s.id", list(subject_candidates), False,
                               params))
    if object_candidates is not None:
        clauses.append(in_list("o.id", list(object_candidates), False,
                               params))
    if min_event_id is not None:
        clauses.append("e.id >= ?")
        params.append(min_event_id)
    sql = (
        "SELECT e.id AS event_id, e.operation, e.start_time, e.end_time, "
        "e.data_amount, s.id AS subject_id, o.id AS object_id "
        "FROM events e "
        "JOIN entities s ON e.subject_id = s.id "
        "JOIN entities o ON e.object_id = o.id "
        "WHERE " + " AND ".join(clauses) +
        " ORDER BY e.start_time, e.id"
    )
    return SQLQuery(sql=sql, params=params)


def compile_giant_sql(query: ResolvedQuery) -> SQLQuery:
    """Compile the whole query into one SQL statement (the RQ4 baseline).

    ``and not`` absence patterns become correlated ``NOT EXISTS``
    subqueries; ``count()`` / ``group by`` / ``top`` become
    ``GROUP BY`` / ``COUNT(*)`` / ``ORDER BY .. LIMIT``.
    """
    params: list[Any] = []
    from_parts: list[str] = []
    clauses: list[str] = []
    alias_of_entity: dict[str, str] = {}
    for pattern in query.patterns:
        if pattern.negated:
            continue
        index = pattern.index + 1
        event_alias, subject_alias, object_alias = (f"e{index}", f"s{index}",
                                                    f"o{index}")
        from_parts += [f"events {event_alias}", f"entities {subject_alias}",
                       f"entities {object_alias}"]
        clauses += [f"{event_alias}.subject_id = {subject_alias}.id",
                    f"{event_alias}.object_id = {object_alias}.id"]
        clauses += _pattern_clauses(pattern, query, event_alias,
                                    subject_alias, object_alias, params)
        for entity, alias in ((pattern.subject, subject_alias),
                              (pattern.obj, object_alias)):
            existing = alias_of_entity.get(entity.entity_id)
            if existing is None:
                alias_of_entity[entity.entity_id] = alias
            else:
                clauses.append(f"{existing}.id = {alias}.id")
    for pattern in query.patterns:
        if pattern.negated:
            clauses.append(_negation_clause(pattern, query, alias_of_entity,
                                            params))
    clauses.extend(_temporal_clauses(query))
    clauses.extend(_attribute_relation_clauses(query, alias_of_entity))
    select_items = []
    for entity_id, attribute in query.return_items:
        alias = alias_of_entity[entity_id]
        select_items.append(
            f"{_column_for(alias, attribute)} AS "
            f"{entity_id}_{attribute}")
    if query.aggregation is not None:
        group_cols = ", ".join(
            _column_for(alias_of_entity[entity_id], attribute)
            for entity_id, attribute in query.aggregation.group_by)
        select = select_items + ["COUNT(*) AS count"]
        sql = ("SELECT " + ", ".join(select) +
               " FROM " + ", ".join(from_parts) +
               " WHERE " + " AND ".join(clauses))
        if group_cols:
            sql += (f" GROUP BY {group_cols}"
                    f" ORDER BY count DESC, {group_cols}")
        if query.aggregation.top_n is not None:
            sql += f" LIMIT {query.aggregation.top_n}"
        return SQLQuery(sql=sql, params=params)
    distinct = "DISTINCT " if query.distinct else ""
    sql = (f"SELECT {distinct}" + ", ".join(select_items) +
           " FROM " + ", ".join(from_parts) +
           " WHERE " + " AND ".join(clauses))
    return SQLQuery(sql=sql, params=params)


def _negation_clause(pattern: ResolvedPattern, query: ResolvedQuery,
                     alias_of_entity: dict[str, str],
                     params: list[Any]) -> str:
    """Render one ``and not`` pattern as a correlated NOT EXISTS."""
    index = pattern.index + 1
    event_alias, subject_alias, object_alias = (f"ne{index}", f"ns{index}",
                                                f"no{index}")
    inner = _pattern_clauses(pattern, query, event_alias, subject_alias,
                             object_alias, params)
    for entity, alias in ((pattern.subject, subject_alias),
                          (pattern.obj, object_alias)):
        outer = alias_of_entity.get(entity.entity_id)
        if outer is not None:
            inner.append(f"{alias}.id = {outer}.id")
    return ("NOT EXISTS (SELECT 1 "
            f"FROM events {event_alias} "
            f"JOIN entities {subject_alias} "
            f"ON {event_alias}.subject_id = {subject_alias}.id "
            f"JOIN entities {object_alias} "
            f"ON {event_alias}.object_id = {object_alias}.id "
            "WHERE " + " AND ".join(inner) + ")")


def _temporal_clauses(query: ResolvedQuery) -> list[str]:
    clauses = []
    for relation in query.temporal_relations:
        left_alias = f"e{query.pattern_by_id(relation.left).index + 1}"
        right_alias = f"e{query.pattern_by_id(relation.right).index + 1}"
        clauses.append(_temporal_sql(relation, left_alias, right_alias))
    return clauses


def _temporal_sql(relation: TemporalRelation, left_alias: str,
                  right_alias: str) -> str:
    from .parser import TIME_UNIT_SECONDS
    # "then" (resolved sequence operator) evaluates as a gap-bounded
    # "before": strict ordering plus an optional bound on the gap.
    if relation.kind in ("before", "then"):
        clause = f"{left_alias}.end_time <= {right_alias}.start_time"
        if relation.max_gap is not None:
            scale = TIME_UNIT_SECONDS[relation.unit]
            clause += (f" AND {right_alias}.start_time - "
                       f"{left_alias}.end_time <= {relation.max_gap * scale}")
        return clause
    if relation.kind == "after":
        return _temporal_sql(TemporalRelation(left=relation.right,
                                              kind="before",
                                              right=relation.left,
                                              min_gap=relation.min_gap,
                                              max_gap=relation.max_gap,
                                              unit=relation.unit),
                             right_alias, left_alias)
    # within: events overlap within a bounded gap of each other
    scale = TIME_UNIT_SECONDS[relation.unit] if relation.unit else 1.0
    gap = (relation.max_gap or 0.0) * scale
    return (f"ABS({left_alias}.start_time - {right_alias}.start_time) "
            f"<= {gap}")


def _attribute_relation_clauses(query: ResolvedQuery,
                                alias_of_entity: dict[str, str]) -> list[str]:
    clauses = []
    for relation in query.attribute_relations:
        left_entity, left_attr = relation.left.split(".", 1)
        right_entity, right_attr = relation.right.split(".", 1)
        left = _column_for(alias_of_entity[left_entity], left_attr)
        right = _column_for(alias_of_entity[right_entity], right_attr)
        operator = "<>" if relation.operator == "!=" else relation.operator
        clauses.append(f"{left} {operator} {right}")
    return clauses


__all__ = ["compile_pattern_sql", "compile_giant_sql", "render_filter"]
