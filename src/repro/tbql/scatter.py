"""Scatter-gather scanning of sealed store segments.

The segmented dual store partitions the event history into immutable
segment files (:mod:`repro.storage.segments`); per-pattern candidate
retrieval then becomes a scatter-gather stage: the same compiled pattern
SQL runs against every surviving segment file and the per-segment rows
are merged (and re-sorted) before the global hash join.

:class:`SegmentScanner` owns the execution strategy:

* ``workers > 1`` — a lazily created :mod:`multiprocessing` pool fans
  the segment scans out across worker processes, each opening its
  segment's SQLite file read-only.  Segments are immutable, so workers
  share nothing with the parent but a file path; this sidesteps the GIL
  entirely (the ROADMAP's "truly parallel backend work").
* ``workers == 1`` (or pool creation fails — restricted platforms,
  missing semaphores) — the scans run serially in-process through the
  exact same task function, so results are identical by construction.

Worker-side read-only connections are cached per (process, thread,
path).  Segment paths are never reused by the store (the segment name
counter is monotonic), so a cached connection can never see stale data.
"""

from __future__ import annotations

import multiprocessing
import sqlite3
import threading
from pathlib import Path
from typing import Any, Optional, Sequence

from ..errors import StorageError

#: One scatter task: ``(segment sqlite path, sql, params)``.
ScanTask = tuple[str, str, tuple]

#: Cached read-only connections are dropped once the cache grows past
#: this many distinct segment files (compaction replaces paths, so a
#: long-lived worker would otherwise accumulate dead handles).
_CONNECTION_CACHE_LIMIT = 128

_local = threading.local()


def _connection_for(path: str) -> sqlite3.Connection:
    cache = getattr(_local, "connections", None)
    if cache is None:
        cache = _local.connections = {}
    connection = cache.get(path)
    if connection is None:
        if len(cache) >= _CONNECTION_CACHE_LIMIT:
            for stale in cache.values():
                stale.close()
            cache.clear()
        uri = Path(path).resolve().as_uri() + "?mode=ro"
        try:
            connection = sqlite3.connect(uri, uri=True)
        except sqlite3.Error as exc:
            raise StorageError(
                f"cannot open segment {path} read-only: {exc}") from exc
        connection.row_factory = sqlite3.Row
        cache[path] = connection
    return connection


def scan_segment(task: ScanTask) -> list[dict[str, Any]]:
    """Run one compiled pattern query against one segment file.

    Module-level (and dependency-light) so it pickles into pool workers
    under any multiprocessing start method.  Returns plain row dicts —
    the shape :meth:`RelationalStore.execute` produces — so gathered
    rows are indistinguishable from a combined-store scan.
    """
    path, sql, params = task
    try:
        rows = _connection_for(path).execute(sql, tuple(params)).fetchall()
    except sqlite3.Error as exc:
        raise StorageError(
            f"segment scan failed on {path}: {exc}\n{sql}") from exc
    return [dict(row) for row in rows]


class SegmentScanner:
    """Runs segment-scan tasks, in parallel when workers allow it.

    The process pool is created lazily on the first multi-segment scan
    and reused for the scanner's lifetime; creation failure downgrades
    to the serial path permanently (graceful fallback, never an error).
    ``scan`` preserves task order, so gathered results are deterministic
    regardless of worker count.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self._pool: Optional[Any] = None
        self._pool_failed = False
        self._lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        """Whether scans may actually fan out across processes."""
        return self.workers > 1 and not self._pool_failed

    def _ensure_pool(self) -> Optional[Any]:
        with self._lock:
            if self._pool is None and not self._pool_failed:
                try:
                    methods = multiprocessing.get_all_start_methods()
                    # Fork shares the parent's imports for free; spawn
                    # works too (scan_segment is importable and light)
                    # but pays an interpreter start per worker.
                    method = "fork" if "fork" in methods else None
                    context = multiprocessing.get_context(method)
                    self._pool = context.Pool(processes=self.workers)
                except (OSError, ValueError, ImportError):
                    self._pool_failed = True
            return self._pool

    def scan(self, tasks: Sequence[ScanTask]) -> list[dict[str, Any]]:
        """Execute every task; returns the concatenated rows in task
        order."""
        if not tasks:
            return []
        if self.workers > 1 and len(tasks) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                per_segment = pool.map(scan_segment, tasks)
                return [row for rows in per_segment for row in rows]
        gathered: list[dict[str, Any]] = []
        for task in tasks:
            gathered.extend(scan_segment(task))
        return gathered

    def close(self) -> None:
        """Tear the worker pool down (idempotent)."""
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


__all__ = ["ScanTask", "SegmentScanner", "scan_segment"]
