"""Scatter-gather scanning of sealed store segments.

The segmented dual store partitions the event history into immutable
segment files (:mod:`repro.storage.segments`); per-pattern candidate
retrieval then becomes a scatter-gather stage: one scan task per
surviving segment, with the per-segment rows merged (and re-sorted)
before the global hash join.

Two task shapes flow through the same scanner:

* :data:`SqlScanTask` — ``(segment sqlite path, sql, params)``; the
  worker runs the compiled pattern SQL against its segment's SQLite
  file and returns pickled row dicts (``scan_strategy="sqlite"``).
* :class:`~repro.tbql.colscan.ColumnarTask` — a
  :class:`~repro.tbql.colscan.PatternSpec` evaluated directly against
  the segment's memory-mapped ``events.col`` columns
  (``scan_strategy="columnar"``); the worker returns one packed tuple
  of machine-typed byte strings, which the gather side re-inflates via
  :func:`~repro.tbql.colscan.unpack_rows`.  Workers share the payload's
  read-only pages through the OS page cache instead of materializing
  and pickling per-row tuples.

:class:`SegmentScanner` owns the execution strategy:

* ``workers > 1`` — a lazily created :mod:`multiprocessing` pool fans
  the segment scans out across worker processes.  Segments are
  immutable, so workers share nothing with the parent but a file path;
  this sidesteps the GIL entirely (the ROADMAP's "truly parallel
  backend work").
* ``workers == 1`` (or pool creation fails — restricted platforms,
  missing semaphores) — the scans run serially in-process through the
  exact same task function, so results are identical by construction.
  Pool-creation failure is logged as a warning and surfaced via
  :attr:`SegmentScanner.pool_fallback` (visible in ``GET /stats`` and
  ``repro query --explain``).

Worker-side read-only SQLite connections are cached per (process,
thread, path); columnar segment mappings are cached process-wide.
Segment paths are never reused by the store (the segment name counter
is monotonic), so a cached handle can never see stale data.
"""

from __future__ import annotations

import logging
import multiprocessing
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from ..errors import StorageError
from ..obs.metrics import get_registry
from ..obs.trace import current_span
from .colscan import (AggregateTask, ColumnarTask, scan_segment_aggregate,
                      scan_segment_columnar, unpack_rows)

logger = logging.getLogger(__name__)

# Pool-creation failure is worth exactly one warning per process — every
# scanner after the first would otherwise repeat it on every query.
_pool_warning_emitted = False

#: One SQLite scatter task: ``(segment sqlite path, sql, params)``.
SqlScanTask = tuple[str, str, tuple]

#: Any scatter task the scanner accepts.  :class:`AggregateTask` flows
#: through :meth:`SegmentScanner.scan_results` only — its payload is
#: per-segment group counts, not mergeable rows.
ScanTask = Union[SqlScanTask, ColumnarTask, AggregateTask]

#: Cached read-only connections are dropped once the cache grows past
#: this many distinct segment files (compaction replaces paths, so a
#: long-lived worker would otherwise accumulate dead handles).
_CONNECTION_CACHE_LIMIT = 128

_local = threading.local()


def _connection_for(path: str) -> sqlite3.Connection:
    cache = getattr(_local, "connections", None)
    if cache is None:
        cache = _local.connections = {}
    connection = cache.get(path)
    if connection is None:
        if len(cache) >= _CONNECTION_CACHE_LIMIT:
            for stale in cache.values():
                stale.close()
            cache.clear()
        uri = Path(path).resolve().as_uri() + "?mode=ro"
        try:
            connection = sqlite3.connect(uri, uri=True)
        except sqlite3.Error as exc:
            raise StorageError(
                f"cannot open segment {path} read-only: {exc}") from exc
        connection.row_factory = sqlite3.Row
        cache[path] = connection
    return connection


def scan_segment(task: SqlScanTask) -> list[dict[str, Any]]:
    """Run one compiled pattern query against one segment file.

    Module-level (and dependency-light) so it pickles into pool workers
    under any multiprocessing start method.  Returns plain row dicts —
    the shape :meth:`RelationalStore.execute` produces — so gathered
    rows are indistinguishable from a combined-store scan.
    """
    path, sql, params = task
    try:
        rows = _connection_for(path).execute(sql, tuple(params)).fetchall()
    except sqlite3.Error as exc:
        raise StorageError(
            f"segment scan failed on {path}: {exc}\n{sql}") from exc
    return [dict(row) for row in rows]


def run_scan_task(task: ScanTask) -> Any:
    """Worker entry point dispatching on the task shape."""
    if isinstance(task, ColumnarTask):
        return scan_segment_columnar(task)
    if isinstance(task, AggregateTask):
        return scan_segment_aggregate(task)
    return scan_segment(task)


def run_scan_task_traced(task: ScanTask) -> tuple[Any, dict[str, Any]]:
    """Worker entry that also times the scan for span attachment.

    Worker processes cannot share the parent's trace context, so the
    span travels as a plain metadata dict piggybacked on the payload;
    the gather side grafts it into the live trace tree.  Row results
    are byte-identical to :func:`run_scan_task`.
    """
    start = time.perf_counter()
    result = run_scan_task(task)
    duration_ms = (time.perf_counter() - start) * 1000.0
    if isinstance(task, ColumnarTask):
        path, strategy, rows = task.path, "columnar", result[0]
    elif isinstance(task, AggregateTask):
        path, strategy, rows = task.path, "aggregate", result[0]
    else:
        path, strategy, rows = task[0], "sqlite", len(result)
    # The task path points at the payload file inside the segment
    # directory (events.col / relational.sqlite); the directory is the
    # segment's identity.
    meta = {"segment": Path(path).parent.name, "strategy": strategy,
            "rows": rows, "duration_ms": duration_ms}
    return result, meta


class SegmentScanner:
    """Runs segment-scan tasks, in parallel when workers allow it.

    The process pool is created lazily on the first multi-segment scan
    and reused for the scanner's lifetime; creation failure downgrades
    to the serial path permanently (graceful fallback, never an error,
    but logged and flagged via :attr:`pool_fallback`).  ``scan``
    preserves task order, so gathered results are deterministic
    regardless of worker count.
    """

    def __init__(self, workers: int = 1) -> None:
        workers = int(workers)
        if workers < 1:
            raise ValueError(
                f"workers must be a positive integer, got {workers}")
        self.workers = workers
        self._pool: Optional[Any] = None
        self._pool_failed = False
        self._lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        """Whether scans may actually fan out across processes."""
        return self.workers > 1 and not self._pool_failed

    @property
    def pool_fallback(self) -> bool:
        """True once pool creation failed and scans run serially."""
        return self._pool_failed

    def _ensure_pool(self) -> Optional[Any]:
        global _pool_warning_emitted
        with self._lock:
            if self._pool is None and not self._pool_failed:
                try:
                    methods = multiprocessing.get_all_start_methods()
                    # Fork shares the parent's imports for free; spawn
                    # works too (the task functions are importable and
                    # light) but pays an interpreter start per worker.
                    method = "fork" if "fork" in methods else None
                    context = multiprocessing.get_context(method)
                    self._pool = context.Pool(processes=self.workers)
                except (OSError, ValueError, ImportError) as exc:
                    self._pool_failed = True
                    get_registry().counter(
                        "repro_scatter_pool_failures_total",
                        "Scatter pool creations that failed and "
                        "downgraded the scanner to serial scans.").inc()
                    if not _pool_warning_emitted:
                        _pool_warning_emitted = True
                        logger.warning(
                            "scatter-gather pool creation failed "
                            "(%s: %s); falling back to serial "
                            "in-process segment scans",
                            type(exc).__name__, exc)
            return self._pool

    @staticmethod
    def _gather(results: Sequence[Any]) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for result in results:
            if isinstance(result, list):
                rows.extend(result)
            else:
                rows.extend(unpack_rows(result))
        return rows

    def scan(self, tasks: Sequence[ScanTask]) -> list[dict[str, Any]]:
        """Execute every task; returns the concatenated rows in task
        order."""
        if not tasks:
            return []
        span = current_span()
        if self.workers > 1 and len(tasks) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                if span is not None:
                    return self._gather_traced(
                        pool.map(run_scan_task_traced, tasks), span)
                return self._gather(pool.map(run_scan_task, tasks))
            get_registry().counter(
                "repro_scatter_fallback_scans_total",
                "Multi-segment scans forced onto the serial path "
                "because the worker pool is unavailable.").inc()
        if span is not None:
            return self._gather_traced(
                [run_scan_task_traced(task) for task in tasks], span)
        return self._gather([run_scan_task(task) for task in tasks])

    def scan_results(self, tasks: Sequence[ScanTask]) -> list[Any]:
        """Execute every task; returns the raw per-task payloads in
        task order (no row gathering — aggregate pushdown merges the
        per-segment partials itself).  Pool/serial/traced behavior
        mirrors :meth:`scan` exactly.
        """
        if not tasks:
            return []
        span = current_span()
        if self.workers > 1 and len(tasks) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                if span is not None:
                    return self._payloads_traced(
                        pool.map(run_scan_task_traced, tasks), span)
                return pool.map(run_scan_task, tasks)
            get_registry().counter(
                "repro_scatter_fallback_scans_total",
                "Multi-segment scans forced onto the serial path "
                "because the worker pool is unavailable.").inc()
        if span is not None:
            return self._payloads_traced(
                [run_scan_task_traced(task) for task in tasks], span)
        return [run_scan_task(task) for task in tasks]

    @staticmethod
    def _payloads_traced(results: Sequence[tuple[Any, dict[str, Any]]],
                         span: Any) -> list[Any]:
        payloads = []
        for payload, meta in results:
            span.attach("segment_scan", meta["duration_ms"],
                        {key: meta[key]
                         for key in ("segment", "strategy", "rows")})
            payloads.append(payload)
        return payloads

    @staticmethod
    def _gather_traced(results: Sequence[tuple[Any, dict[str, Any]]],
                       span: Any) -> list[dict[str, Any]]:
        return SegmentScanner._gather(
            SegmentScanner._payloads_traced(results, span))

    def close(self) -> None:
        """Tear the worker pool down (idempotent)."""
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


__all__ = ["ScanTask", "SqlScanTask", "SegmentScanner", "scan_segment",
           "run_scan_task", "run_scan_task_traced"]
