"""Query conciseness metrics (RQ5, Table X).

The paper compares the number of characters (excluding spaces and comments)
and the number of words of semantically equivalent TBQL, SQL, TBQL-length-1-
path, and Cypher queries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_COMMENT_RE = re.compile(r"(//[^\n]*|#[^\n]*|--[^\n]*|/\*.*?\*/)", re.DOTALL)


@dataclass(frozen=True)
class ConcisenessMetrics:
    """Character and word counts for one query string."""

    characters: int
    words: int

    def ratio_to(self, other: "ConcisenessMetrics") -> float:
        """How many times more concise ``self`` is than ``other`` (chars)."""
        if self.characters == 0:
            return float("inf")
        return other.characters / self.characters


def strip_comments(query: str) -> str:
    """Remove SQL/Cypher/TBQL comments from a query string."""
    return _COMMENT_RE.sub(" ", query)


def measure_conciseness(query: str) -> ConcisenessMetrics:
    """Count characters (excluding whitespace and comments) and words."""
    cleaned = strip_comments(query)
    characters = sum(1 for char in cleaned if not char.isspace())
    words = len([word for word in cleaned.split() if word])
    return ConcisenessMetrics(characters=characters, words=words)


def compare_conciseness(queries: dict[str, str]
                        ) -> dict[str, ConcisenessMetrics]:
    """Measure a set of named query strings (e.g. TBQL / SQL / Cypher)."""
    return {name: measure_conciseness(text) for name, text in queries.items()}


__all__ = ["ConcisenessMetrics", "strip_comments", "measure_conciseness",
           "compare_conciseness"]
