"""Relational schema for system entities and events.

ThreatRaptor stores entities and events in separate tables (Section III-B)
with indexes on the key attributes used by threat hunting filters (file name,
process executable name, source/destination IP, operation type, and the
subject/object foreign keys used by joins).

The reproduction uses SQLite as the relational engine standing in for
PostgreSQL; the schema and the compiled SQL are engine-agnostic.
"""

from __future__ import annotations

#: DDL for the entity table.  One row per unique system entity; attribute
#: columns that do not apply to a given entity type are NULL.
ENTITY_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS entities (
    id          INTEGER PRIMARY KEY,
    type        TEXT NOT NULL,
    name        TEXT,
    path        TEXT,
    exename     TEXT,
    pid         INTEGER,
    user        TEXT,
    grp         TEXT,
    cmdline     TEXT,
    srcip       TEXT,
    srcport     INTEGER,
    dstip       TEXT,
    dstport     INTEGER,
    protocol    TEXT
)
"""

#: DDL for the event table.  One row per (possibly reduced) system event.
EVENT_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS events (
    id           INTEGER PRIMARY KEY,
    subject_id   INTEGER NOT NULL REFERENCES entities(id),
    object_id    INTEGER NOT NULL REFERENCES entities(id),
    operation    TEXT NOT NULL,
    category     TEXT NOT NULL,
    start_time   REAL NOT NULL,
    end_time     REAL NOT NULL,
    duration     REAL NOT NULL,
    data_amount  INTEGER NOT NULL DEFAULT 0,
    failure_code INTEGER NOT NULL DEFAULT 0,
    host         TEXT NOT NULL DEFAULT 'host-0'
)
"""

#: Indexes on key attributes (Section III-B): file name, process executable
#: name, source/destination IP, plus the join/filter columns on events.
INDEX_DDL = [
    "CREATE INDEX IF NOT EXISTS idx_entities_type ON entities(type)",
    "CREATE INDEX IF NOT EXISTS idx_entities_name ON entities(name)",
    "CREATE INDEX IF NOT EXISTS idx_entities_exename ON entities(exename)",
    "CREATE INDEX IF NOT EXISTS idx_entities_dstip ON entities(dstip)",
    "CREATE INDEX IF NOT EXISTS idx_entities_srcip ON entities(srcip)",
    "CREATE INDEX IF NOT EXISTS idx_events_operation ON events(operation)",
    "CREATE INDEX IF NOT EXISTS idx_events_subject ON events(subject_id)",
    "CREATE INDEX IF NOT EXISTS idx_events_object ON events(object_id)",
    "CREATE INDEX IF NOT EXISTS idx_events_start ON events(start_time)",
]

#: Names of the indexes in :data:`INDEX_DDL` (so bulk loads can drop and
#: rebuild them around large inserts).
INDEX_NAMES = [ddl.split(" ON ")[0].rsplit(" ", 1)[-1] for ddl in INDEX_DDL]

#: Columns accepted by the entity table, in insertion order.
ENTITY_COLUMNS = [
    "id", "type", "name", "path", "exename", "pid", "user", "grp",
    "cmdline", "srcip", "srcport", "dstip", "dstport", "protocol",
]

#: Columns accepted by the event table, in insertion order.
EVENT_COLUMNS = [
    "id", "subject_id", "object_id", "operation", "category", "start_time",
    "end_time", "duration", "data_amount", "failure_code", "host",
]

#: Attributes a TBQL query may reference per entity type, mapped to the
#: relational column that stores them.  ``group`` is renamed because GROUP is
#: an SQL keyword.
ENTITY_ATTRIBUTE_COLUMNS = {
    "name": "name",
    "path": "path",
    "exename": "exename",
    "pid": "pid",
    "user": "user",
    "group": "grp",
    "cmdline": "cmdline",
    "srcip": "srcip",
    "srcport": "srcport",
    "dstip": "dstip",
    "dstport": "dstport",
    "protocol": "protocol",
    "type": "type",
}

#: Event-level attributes a TBQL query may reference.
EVENT_ATTRIBUTE_COLUMNS = {
    "operation": "operation",
    "start_time": "start_time",
    "end_time": "end_time",
    "duration": "duration",
    "data_amount": "data_amount",
    "failure_code": "failure_code",
    "host": "host",
    "category": "category",
}


def all_ddl() -> list[str]:
    """Return every DDL statement needed to create the schema."""
    return [ENTITY_TABLE_DDL, EVENT_TABLE_DDL, *INDEX_DDL]


def all_ddl_for(schema: str | None = None) -> list[str]:
    """DDL statements targeting an ATTACHed database schema.

    SQLite qualifies the *created object's* name with the schema (the
    ``ON events`` table reference of an index resolves inside that same
    schema), so prefixing the name after ``IF NOT EXISTS`` retargets
    every statement.  With ``schema=None`` this is :func:`all_ddl`.
    Used by the segment export path, which materializes a time-bounded
    slice of the store into a separate database file.
    """
    if not schema:
        return all_ddl()
    return [ddl.replace("IF NOT EXISTS ", f"IF NOT EXISTS {schema}.", 1)
            for ddl in all_ddl()]


__all__ = [
    "ENTITY_TABLE_DDL",
    "EVENT_TABLE_DDL",
    "INDEX_DDL",
    "INDEX_NAMES",
    "ENTITY_COLUMNS",
    "EVENT_COLUMNS",
    "ENTITY_ATTRIBUTE_COLUMNS",
    "EVENT_ATTRIBUTE_COLUMNS",
    "all_ddl",
    "all_ddl_for",
]
