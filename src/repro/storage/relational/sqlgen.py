"""SQL text helpers shared by the TBQL compiler and the benchmark suite.

Two kinds of SQL are produced in the reproduction, matching the paper's
RQ4/RQ5 comparison:

* *data queries*: small per-pattern SELECTs emitted by the TBQL compiler and
  executed by the scheduler (Section III-F), and
* *giant queries*: a single SELECT that joins one event-table alias plus two
  entity-table aliases per pattern, used as the hand-written SQL baseline.

Only string-building lives here; execution goes through
:class:`repro.storage.relational.RelationalStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class SQLQuery:
    """A SQL statement plus its bound parameters."""

    sql: str
    params: list[Any] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.sql


def like_escape(pattern: str) -> str:
    """Return a SQL LIKE pattern from a TBQL wildcard string.

    TBQL uses ``%`` as the wildcard already, so the value passes through;
    underscores are escaped because they are single-character wildcards in
    SQL but literal characters in TBQL identifiers such as file names.
    """
    return pattern.replace("_", "\\_")


def comparison(column: str, op: str, value: Any,
               params: list[Any]) -> str:
    """Render one comparison, appending the bound value to ``params``.

    String equality against a value containing ``%`` becomes a LIKE with an
    explicit escape character, which is how TBQL wildcard filters map to SQL.
    """
    if op == "=" and isinstance(value, str) and "%" in value:
        params.append(like_escape(value))
        return f"{column} LIKE ? ESCAPE '\\'"
    if op == "!=" and isinstance(value, str) and "%" in value:
        params.append(like_escape(value))
        return f"{column} NOT LIKE ? ESCAPE '\\'"
    sql_op = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">",
              ">=": ">="}.get(op)
    if sql_op is None:
        raise ValueError(f"unsupported comparison operator: {op!r}")
    params.append(value)
    return f"{column} {sql_op} ?"


def in_list(column: str, values: list[Any], negated: bool,
            params: list[Any]) -> str:
    """Render an IN / NOT IN membership test."""
    placeholders = ", ".join("?" for _ in values)
    params.extend(values)
    keyword = "NOT IN" if negated else "IN"
    return f"{column} {keyword} ({placeholders})"


def event_pattern_select(event_alias: str, subject_alias: str,
                         object_alias: str, where_clauses: list[str]
                         ) -> str:
    """Build the FROM/JOIN skeleton for one event pattern."""
    select = (
        f"SELECT {event_alias}.id AS event_id, "
        f"{event_alias}.operation, {event_alias}.start_time, "
        f"{event_alias}.end_time, {event_alias}.data_amount, "
        f"{subject_alias}.id AS subject_id, {object_alias}.id AS object_id "
        f"FROM events {event_alias} "
        f"JOIN entities {subject_alias} "
        f"ON {event_alias}.subject_id = {subject_alias}.id "
        f"JOIN entities {object_alias} "
        f"ON {event_alias}.object_id = {object_alias}.id"
    )
    if where_clauses:
        select += " WHERE " + " AND ".join(where_clauses)
    return select


def giant_join_select(pattern_aliases: list[tuple[str, str, str]],
                      where_clauses: list[str],
                      return_columns: list[str]) -> str:
    """Build a single SELECT that joins every pattern's three tables.

    ``pattern_aliases`` holds (event_alias, subject_alias, object_alias) per
    pattern.  This is the "giant SQL query" baseline of RQ4: all joins and
    constraints are woven into one statement and left to the engine's
    optimizer.
    """
    from_parts = []
    for event_alias, subject_alias, object_alias in pattern_aliases:
        from_parts.append(f"events {event_alias}")
        from_parts.append(f"entities {subject_alias}")
        from_parts.append(f"entities {object_alias}")
        where_clauses = where_clauses + [
            f"{event_alias}.subject_id = {subject_alias}.id",
            f"{event_alias}.object_id = {object_alias}.id",
        ]
    sql = "SELECT DISTINCT " + ", ".join(return_columns)
    sql += " FROM " + ", ".join(from_parts)
    if where_clauses:
        sql += " WHERE " + " AND ".join(where_clauses)
    return sql


__all__ = [
    "SQLQuery",
    "like_escape",
    "comparison",
    "in_list",
    "event_pattern_select",
    "giant_join_select",
]
