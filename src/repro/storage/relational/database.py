"""SQLite-backed relational store (PostgreSQL stand-in).

The store keeps one row per unique system entity and one row per (reduced)
system event, with indexes on the attributes threat-hunting filters touch.
It exposes a thin, explicit API:

* :meth:`RelationalStore.load_events` - bulk-load an event stream,
* :meth:`RelationalStore.execute` - run a parameterized SQL query,
* :meth:`RelationalStore.query_events` - convenience filtered event lookup
  used by the TBQL execution engine.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Any, Iterable, Sequence

from ...audit.entities import (EntityType, FileEntity, NetworkEntity,
                               ProcessEntity, SystemEntity, SystemEvent)
from ...errors import StorageError
from .schema import (ENTITY_COLUMNS, EVENT_COLUMNS, INDEX_DDL, INDEX_NAMES,
                     all_ddl, all_ddl_for)
from .sqlgen import in_list


def entity_row(entity_id: int, entity: SystemEntity) -> tuple:
    """Flatten a system entity into a row for the entities table.

    Column order matches :data:`ENTITY_COLUMNS`:
    ``(id, type, name, path, exename, pid, user, grp, cmdline, srcip,
    srcport, dstip, dstport, protocol)``.  The per-type tuples are spelled
    out directly — this runs once per unique entity on the ingestion path.
    """
    if isinstance(entity, FileEntity):
        return (entity_id, "file", entity.name, entity.path, None, None,
                entity.user, entity.group, None, None, None, None, None,
                None)
    if isinstance(entity, ProcessEntity):
        exename = entity.exename
        return (entity_id, "proc", exename, None, exename, entity.pid,
                entity.user, entity.group, entity.cmdline or exename, None,
                None, None, None, None)
    if isinstance(entity, NetworkEntity):
        dstip = entity.dstip
        return (entity_id, "ip", dstip, None, None, None, None, None, None,
                entity.srcip, entity.srcport, dstip, entity.dstport,
                entity.protocol)
    raise StorageError(f"unsupported entity class: {type(entity)!r}")


class RelationalStore:
    """Relational storage backend for system audit logging data.

    Concurrency model: one *primary* connection owns every write (all writes
    happen under an internal lock), while read queries issued from other
    threads run on lazily opened per-thread **read-only** connections when
    the store is file-backed — the arrangement the query service relies on
    to execute TBQL concurrently over one shared store.  In-memory stores
    have no file for readers to attach to, so their reads share the primary
    connection under the same lock.  On-disk stores are created in WAL
    journal mode so concurrent readers never block (and are never blocked
    by) the writer.
    """

    def __init__(self, path: str | Path | None = None,
                 read_only: bool = False) -> None:
        """Open (or create) the store.

        Args:
            path: database file path; ``None`` uses an in-memory database.
            read_only: open an existing on-disk database for queries only;
                every mutating method raises :class:`StorageError`.
        """
        self._database = str(path) if path is not None else ":memory:"
        self._is_memory = path is None
        self._read_only = read_only
        self._lock = threading.RLock()
        self._owner_thread = threading.get_ident()
        self._thread_local = threading.local()
        self._reader_connections: list[sqlite3.Connection] = []
        self._readers_guard = threading.Lock()
        self._closed = False
        if read_only:
            if self._is_memory:
                raise StorageError(
                    "read-only mode requires an on-disk database file")
            try:
                self._connection = sqlite3.connect(
                    self._read_only_uri(), uri=True, check_same_thread=False)
            except sqlite3.Error as exc:
                raise StorageError(
                    f"cannot open {self._database} read-only: {exc}") from exc
        else:
            self._connection = sqlite3.connect(self._database,
                                               check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        self._entity_ids: dict[tuple, int] = {}
        self._next_entity_id = 1
        self._next_event_id = 1
        if not read_only:
            if not self._is_memory:
                # WAL lets later read-only reader connections proceed
                # without blocking on (or being blocked by) the writer.
                self._connection.execute("PRAGMA journal_mode=WAL")
            self._create_schema()

    # ------------------------------------------------------------------
    # schema / lifecycle
    # ------------------------------------------------------------------
    @property
    def read_only(self) -> bool:
        """True when the store was opened for queries only."""
        return self._read_only

    @property
    def database_path(self) -> str:
        """The backing database file path (``":memory:"`` if unbacked)."""
        return self._database

    def _read_only_uri(self) -> str:
        return Path(self._database).resolve().as_uri() + "?mode=ro"

    def _assert_writable(self) -> None:
        if self._read_only:
            raise StorageError(
                "store is read-only (opened from a snapshot)")

    def _reader_connection(self) -> sqlite3.Connection | None:
        """Per-thread read-only connection, or None to use the primary.

        Only file-backed stores can hand out extra connections; reads from
        the owning thread stay on the primary connection so they observe
        rows the current load pass has not committed yet.
        """
        if self._is_memory:
            return None
        connection = getattr(self._thread_local, "connection", None)
        if connection is not None:
            return connection
        if threading.get_ident() == self._owner_thread:
            return None
        connection = sqlite3.connect(self._read_only_uri(), uri=True,
                                     check_same_thread=False)
        connection.row_factory = sqlite3.Row
        self._thread_local.connection = connection
        with self._readers_guard:
            self._reader_connections.append(connection)
        return connection

    def _create_schema(self) -> None:
        with self._lock:
            cursor = self._connection.cursor()
            for statement in all_ddl():
                cursor.execute(statement)
            self._connection.commit()

    def save_to(self, path: str | Path) -> None:
        """Persist the current contents into an on-disk SQLite file.

        Uses the SQLite backup API (a consistent point-in-time copy even of
        an in-memory database) and leaves the target in WAL journal mode so
        a later read-only open serves concurrent readers.  Any existing
        file at ``path`` is replaced.
        """
        target_path = Path(path)
        for stale in (target_path, target_path.with_name(target_path.name +
                                                         "-wal"),
                      target_path.with_name(target_path.name + "-shm")):
            if stale.exists():
                stale.unlink()
        target = sqlite3.connect(str(target_path))
        try:
            with self._lock:
                self._connection.commit()
                self._connection.backup(target)
            target.execute("PRAGMA journal_mode=WAL")
            target.commit()
        except sqlite3.Error as exc:
            raise StorageError(
                f"snapshot save to {target_path} failed: {exc}") from exc
        finally:
            target.close()

    def export_segment(self, path: str | Path, first_event_id: int,
                       last_event_id: int) -> int:
        """Materialize an event-id slice into a standalone database file.

        Writes the full schema plus the event rows with ids in
        ``[first_event_id, last_event_id]`` and exactly the entity rows
        those events reference (a segment's joins never leave the file)
        into a fresh SQLite database at ``path``, via ``ATTACH`` on the
        primary connection — one SQL-level copy, no Python row shuttling.
        The source tables are untouched; returns the exported event count.
        """
        target = Path(path)
        if target.exists():
            target.unlink()
        bounds = (first_event_id, last_event_id)
        with self._lock:
            self._connection.commit()
            cursor = self._connection.cursor()
            try:
                cursor.execute("ATTACH DATABASE ? AS segment",
                               (str(target),))
            except sqlite3.Error as exc:
                raise StorageError(
                    f"cannot create segment database {target}: "
                    f"{exc}") from exc
            try:
                for statement in all_ddl_for("segment"):
                    cursor.execute(statement)
                cursor.execute(
                    "INSERT INTO segment.events "
                    "SELECT * FROM events WHERE id BETWEEN ? AND ?",
                    bounds)
                cursor.execute(
                    "INSERT INTO segment.entities "
                    "SELECT * FROM entities WHERE id IN ("
                    "SELECT subject_id FROM events WHERE id BETWEEN ? AND ? "
                    "UNION "
                    "SELECT object_id FROM events WHERE id BETWEEN ? AND ?)",
                    bounds + bounds)
                exported = cursor.execute(
                    "SELECT COUNT(*) FROM segment.events").fetchone()[0]
                self._connection.commit()
            except sqlite3.Error as exc:
                raise StorageError(
                    f"segment export to {target} failed: {exc}") from exc
            finally:
                # A failed statement above leaves an open transaction in
                # which DETACH would itself fail ("database segment is
                # locked") — masking the real error and leaving the
                # schema attached, which would break every later export
                # on this connection.  Rolling back first is a no-op on
                # the committed success path.
                self._connection.rollback()
                cursor.execute("DETACH DATABASE segment")
        return int(exported)

    def close(self) -> None:
        """Close the primary and every per-thread reader connection."""
        if self._closed:
            return
        self._closed = True
        with self._readers_guard:
            readers = list(self._reader_connections)
            self._reader_connections.clear()
        for connection in readers:
            connection.close()
        self._connection.close()

    def __enter__(self) -> "RelationalStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def clear(self) -> None:
        """Remove all stored entities and events."""
        self._assert_writable()
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute("DELETE FROM events")
            cursor.execute("DELETE FROM entities")
            self._connection.commit()
        self._entity_ids.clear()
        self._next_entity_id = 1
        self._next_event_id = 1

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def entity_id_for(self, entity: SystemEntity) -> int:
        """Return the stored id for ``entity``, registering it if new."""
        self._assert_writable()
        key = entity.unique_key
        existing = self._entity_ids.get(key)
        if existing is not None:
            return existing
        entity_id = self._next_entity_id
        self._next_entity_id += 1
        self._entity_ids[key] = entity_id
        placeholders = ", ".join("?" for _ in ENTITY_COLUMNS)
        with self._lock:
            self._connection.execute(
                f"INSERT INTO entities ({', '.join(ENTITY_COLUMNS)}) "
                f"VALUES ({placeholders})",
                entity_row(entity_id, entity))
        return entity_id

    #: Rows per ``executemany`` call on the bulk-load path.  Bounds the
    #: per-call row buffer without giving up the amortized statement reuse.
    INSERT_CHUNK_SIZE = 10_000

    def load_events(self, events: Iterable[SystemEvent]) -> int:
        """Bulk-load events (and their entities); returns events inserted.

        New entity rows are collected and inserted with chunked
        ``executemany`` alongside the event rows (one statement per
        :attr:`INSERT_CHUNK_SIZE` rows) instead of one ``INSERT`` per new
        entity; see :meth:`load_events_rowwise` for the retained row-at-a-time
        reference path.
        """
        self._assert_writable()
        entity_ids = self._entity_ids
        entity_rows: list[tuple] = []
        event_rows: list[tuple] = []
        next_entity_id = self._next_entity_id
        event_id = self._next_event_id
        for event in events:
            endpoint_ids = []
            for entity in (event.subject, event.obj):
                key = entity.unique_key
                entity_id = entity_ids.get(key)
                if entity_id is None:
                    entity_id = next_entity_id
                    next_entity_id += 1
                    entity_ids[key] = entity_id
                    entity_rows.append(entity_row(entity_id, entity))
                endpoint_ids.append(entity_id)
            event_rows.append((event_id, endpoint_ids[0], endpoint_ids[1],
                               event.operation.value, event.category.value,
                               event.start_time, event.end_time,
                               event.duration, event.data_amount,
                               event.failure_code, event.host))
            event_id += 1
        self._next_entity_id = next_entity_id
        self._next_event_id = event_id
        self.insert_rows(entity_rows, event_rows)
        return len(event_rows)

    def insert_rows(self, entity_rows: Sequence[tuple],
                    event_rows: Sequence[tuple]) -> int:
        """Insert pre-flattened entity/event rows; returns batches issued.

        Rows must match :data:`ENTITY_COLUMNS` / :data:`EVENT_COLUMNS` and
        carry ids consistent with the store's id bookkeeping (callers that
        assign ids themselves register them via :meth:`adopt_entity_ids`).
        Each table is written with chunked ``executemany`` and the whole load
        commits once.
        """
        self._assert_writable()
        batches = 0
        chunk_size = self.INSERT_CHUNK_SIZE
        with self._lock:
            for table, columns, rows in (
                    ("entities", ENTITY_COLUMNS, entity_rows),
                    ("events", EVENT_COLUMNS, event_rows)):
                if not rows:
                    continue
                statement = (f"INSERT INTO {table} ({', '.join(columns)}) "
                             f"VALUES ({', '.join('?' for _ in columns)})")
                for start in range(0, len(rows), chunk_size):
                    self._connection.executemany(
                        statement, rows[start:start + chunk_size])
                    batches += 1
            self._connection.commit()
        return batches

    def reload_rows(self, entity_rows: Sequence[tuple],
                    event_rows: Sequence[tuple]) -> int:
        """Replace the stored tables with pre-flattened rows; returns batches.

        The replace-semantics bulk load: secondary indexes are dropped up
        front so both the ``DELETE`` of the old rows and the inserts run
        index-free, then the indexes are rebuilt once over the final table —
        substantially cheaper than maintaining every index row-by-row.  Rows
        are written with multi-row ``VALUES`` statements
        (:attr:`MULTIROW_CHUNK` rows per statement, staying under SQLite's
        bound-variable limit), which roughly halves the per-row statement
        stepping cost of plain ``executemany``.  Id bookkeeping is *not*
        touched; callers follow up with :meth:`adopt_entity_ids`.
        """
        self._assert_writable()
        with self._lock:
            cursor = self._connection.cursor()
            for index_name in INDEX_NAMES:
                cursor.execute(f"DROP INDEX IF EXISTS {index_name}")
            cursor.execute("DELETE FROM events")
            cursor.execute("DELETE FROM entities")
            batches = 0
            for table, columns, rows in (
                    ("entities", ENTITY_COLUMNS, entity_rows),
                    ("events", EVENT_COLUMNS, event_rows)):
                batches += self._insert_multirow(cursor, table, columns,
                                                 rows)
            for ddl in INDEX_DDL:
                cursor.execute(ddl)
            self._connection.commit()
        return batches

    #: Rows per multi-row ``VALUES`` statement on the replace-load path;
    #: sized so even the 14-column entity table stays well below SQLite's
    #: default 999 bound-variable limit (14 * 64 = 896).
    MULTIROW_CHUNK = 64

    def _insert_multirow(self, cursor, table: str, columns: Sequence[str],
                         rows: Sequence[tuple]) -> int:
        """Insert rows as chunked multi-row VALUES statements."""
        if not rows:
            return 0
        chunk = self.MULTIROW_CHUNK
        row_sql = f"({', '.join('?' for _ in columns)})"
        prefix = f"INSERT INTO {table} ({', '.join(columns)}) VALUES "
        statement = prefix + ", ".join([row_sql] * chunk)
        batches = 0
        full = len(rows) // chunk
        for index in range(full):
            block = rows[index * chunk:(index + 1) * chunk]
            cursor.execute(statement,
                           [value for row in block for value in row])
            batches += 1
        remainder = rows[full * chunk:]
        if remainder:
            cursor.execute(
                prefix + ", ".join([row_sql] * len(remainder)),
                [value for row in remainder for value in row])
            batches += 1
        return batches

    def append_rows(self, entity_rows: Sequence[tuple],
                    event_rows: Sequence[tuple]) -> int:
        """Append pre-flattened rows to the live tables; returns batches.

        The incremental-ingestion write path: unlike :meth:`reload_rows`
        nothing is deleted and the secondary indexes stay in place — the
        engine maintains them incrementally as the multi-row ``VALUES``
        statements land, which is the right trade-off for deltas that are
        small next to the stored tables.  Rows must carry ids continuing
        the store's id spaces (callers register them via
        :meth:`adopt_entity_ids`).  The whole batch commits once.
        """
        self._assert_writable()
        with self._lock:
            cursor = self._connection.cursor()
            batches = 0
            for table, columns, rows in (
                    ("entities", ENTITY_COLUMNS, entity_rows),
                    ("events", EVENT_COLUMNS, event_rows)):
                batches += self._insert_multirow(cursor, table, columns,
                                                 rows)
            self._connection.commit()
        return batches

    def id_state(self) -> tuple[dict[tuple, int], int, int]:
        """Current id bookkeeping: (unique_key map, next entity/event id).

        The mapping is the live dictionary (not a copy); the dual store's
        append path shares it so both sides assign consistent ids.
        """
        return self._entity_ids, self._next_entity_id, self._next_event_id

    def rebuild_id_state(self) -> None:
        """Reconstruct the id bookkeeping from the stored rows.

        Needed when a store is (re)attached to an existing database — a
        writable snapshot reopen — where the in-memory ``unique_key -> id``
        map was never built.  Unique keys follow Section III-A exactly as
        :func:`entity_row` flattened them.
        """
        self._assert_writable()
        mapping: dict[tuple, int] = {}
        max_entity_id = 0
        for row in self.execute("SELECT * FROM entities"):
            kind = row["type"]
            if kind == "file":
                key: tuple = (EntityType.FILE, row["path"])
            elif kind == "proc":
                key = (EntityType.PROCESS, row["exename"], row["pid"])
            elif kind == "ip":
                key = (EntityType.NETWORK, row["srcip"], row["srcport"],
                       row["dstip"], row["dstport"], row["protocol"])
            else:
                raise StorageError(f"unknown entity type in store: {kind!r}")
            mapping[key] = row["id"]
            if row["id"] > max_entity_id:
                max_entity_id = row["id"]
        self._entity_ids = mapping
        self._next_entity_id = max_entity_id + 1
        max_event = self.execute(
            "SELECT MAX(id) AS n FROM events")[0]["n"]
        self._next_event_id = (max_event or 0) + 1

    @classmethod
    def from_snapshot(cls, snapshot_path: str | Path,
                      path: str | Path | None = None) -> "RelationalStore":
        """Restore a snapshot database into a fresh *writable* store.

        The snapshot file is copied via the SQLite backup API into a new
        store at ``path`` (in memory when ``None``), so the snapshot itself
        is never written to; the id bookkeeping is rebuilt from the copied
        rows so incremental loads continue where the snapshot left off.
        """
        source_path = Path(snapshot_path)
        store = cls(path)
        try:
            source = sqlite3.connect(
                source_path.resolve().as_uri() + "?mode=ro", uri=True)
        except sqlite3.Error as exc:
            raise StorageError(
                f"cannot open snapshot {source_path}: {exc}") from exc
        try:
            with store._lock:
                source.backup(store._connection)
        except sqlite3.Error as exc:
            store.close()
            raise StorageError(
                f"snapshot restore from {source_path} failed: "
                f"{exc}") from exc
        finally:
            source.close()
        if not store._is_memory:
            # The backup copies the source's journal mode; re-assert WAL so
            # later reader connections never block the writer.
            store._connection.execute("PRAGMA journal_mode=WAL")
            store._connection.commit()
        store.rebuild_id_state()
        return store

    def adopt_entity_ids(self, entity_ids: dict[tuple, int],
                         next_event_id: int,
                         next_entity_id: int | None = None) -> None:
        """Adopt an externally-built ``unique_key -> id`` assignment.

        Used by the dual store's loaders, which dedup entities once for
        both backends and hand the resulting mapping over so later
        incremental :meth:`load_events` / :meth:`entity_id_for` calls keep
        allocating ids after the adopted ones.  Callers that already track
        the next free entity id pass it via ``next_entity_id`` — the
        streaming append path adopts once per flush, and rescanning the
        whole (ever-growing) mapping there would be O(total entities) per
        batch.
        """
        self._assert_writable()
        self._entity_ids = entity_ids
        self._next_entity_id = next_entity_id if next_entity_id is not None \
            else max(entity_ids.values(), default=0) + 1
        self._next_event_id = next_event_id

    def load_events_rowwise(self, events: Iterable[SystemEvent]) -> int:
        """Row-at-a-time reference loader (the pre-batching seed path).

        Kept as the baseline the ingestion benchmark compares against: one
        ``INSERT`` statement per new entity via :meth:`entity_id_for`, one
        ``executemany`` for the event rows.
        """
        self._assert_writable()
        rows = []
        for event in events:
            subject_id = self.entity_id_for(event.subject)
            object_id = self.entity_id_for(event.obj)
            event_id = self._next_event_id
            self._next_event_id += 1
            rows.append((event_id, subject_id, object_id,
                         event.operation.value, event.category.value,
                         event.start_time, event.end_time, event.duration,
                         event.data_amount, event.failure_code, event.host))
        with self._lock:
            if rows:
                placeholders = ", ".join("?" for _ in EVENT_COLUMNS)
                self._connection.executemany(
                    f"INSERT INTO events ({', '.join(EVENT_COLUMNS)}) "
                    f"VALUES ({placeholders})", rows)
            self._connection.commit()
        return len(rows)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> list[dict]:
        """Execute a SQL query and return rows as plain dictionaries.

        Safe to call from any thread: file-backed stores give each reading
        thread its own read-only connection, in-memory stores serialize on
        the primary connection's lock.

        Raises:
            StorageError: when the SQL statement is invalid.
        """
        connection = self._reader_connection()
        try:
            if connection is None:
                with self._lock:
                    rows = self._connection.execute(
                        sql, tuple(params)).fetchall()
            else:
                rows = connection.execute(sql, tuple(params)).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"SQL execution failed: {exc}\n{sql}") from exc
        return [dict(row) for row in rows]

    def explain(self, sql: str, params: Sequence[Any] = ()) -> list[str]:
        """Return the engine's query plan lines (useful for diagnostics)."""
        rows = self.execute(f"EXPLAIN QUERY PLAN {sql}", params)
        return [str(row.get("detail", row)) for row in rows]

    def count_entities(self) -> int:
        return self.execute("SELECT COUNT(*) AS n FROM entities")[0]["n"]

    def count_events(self) -> int:
        return self.execute("SELECT COUNT(*) AS n FROM events")[0]["n"]

    def entity_by_id(self, entity_id: int) -> dict | None:
        rows = self.execute("SELECT * FROM entities WHERE id = ?",
                            (entity_id,))
        return rows[0] if rows else None

    #: Maximum ids per batched ``IN`` list; stays well below SQLite's bound
    #: variable limit (999 in older builds).
    BATCH_CHUNK_SIZE = 900

    def entity_by_ids(self, entity_ids: Iterable[int]
                      ) -> tuple[dict[int, dict], int]:
        """Fetch many entity rows in one query (batched hydration).

        Returns ``(rows_by_id, statements)``: a mapping ``id -> row``
        containing only the ids that exist (duplicates in the input are
        collapsed), plus the number of SQL statements issued.  Inputs larger
        than :attr:`BATCH_CHUNK_SIZE` are split into multiple ``IN`` lists,
        so one logical batch never exceeds the engine's bound-variable
        limit; the statement count reports that chunking to callers (the
        execution plan shows it per pattern).
        """
        unique_ids = sorted(set(entity_ids))
        rows_by_id: dict[int, dict] = {}
        statements = 0
        for start in range(0, len(unique_ids), self.BATCH_CHUNK_SIZE):
            chunk = unique_ids[start:start + self.BATCH_CHUNK_SIZE]
            params: list[Any] = []
            clause = in_list("id", chunk, False, params)
            rows = self.execute(
                f"SELECT * FROM entities WHERE {clause}", params)
            statements += 1
            for row in rows:
                rows_by_id[row["id"]] = row
        return rows_by_id, statements

    def entities_matching(self, entity_type: EntityType | None = None,
                          where_sql: str = "", params: Sequence[Any] = ()
                          ) -> list[dict]:
        """Return entity rows matching an optional type and WHERE fragment."""
        clauses = []
        bound: list[Any] = []
        if entity_type is not None:
            clauses.append("type = ?")
            bound.append(entity_type.value)
        if where_sql:
            clauses.append(f"({where_sql})")
            bound.extend(params)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return self.execute(f"SELECT * FROM entities{where}", bound)

    def query_events(self, where_sql: str = "", params: Sequence[Any] = (),
                     limit: int | None = None) -> list[dict]:
        """Return joined event rows with subject/object attributes inlined.

        The result rows expose event columns plus ``subject_*`` and
        ``object_*`` prefixed entity columns; this is the shape the TBQL
        execution engine consumes.
        """
        sql = (
            "SELECT e.id AS event_id, e.operation, e.category, e.start_time, "
            "e.end_time, e.duration, e.data_amount, e.failure_code, e.host, "
            "s.id AS subject_id, s.type AS subject_type, s.name AS "
            "subject_name, s.path AS subject_path, s.exename AS "
            "subject_exename, s.pid AS subject_pid, s.user AS subject_user, "
            "s.grp AS subject_group, s.cmdline AS subject_cmdline, "
            "o.id AS object_id, o.type AS object_type, o.name AS object_name, "
            "o.path AS object_path, o.exename AS object_exename, o.pid AS "
            "object_pid, o.user AS object_user, o.grp AS object_group, "
            "o.cmdline AS object_cmdline, o.srcip AS object_srcip, o.srcport "
            "AS object_srcport, o.dstip AS object_dstip, o.dstport AS "
            "object_dstport, o.protocol AS object_protocol "
            "FROM events e "
            "JOIN entities s ON e.subject_id = s.id "
            "JOIN entities o ON e.object_id = o.id"
        )
        if where_sql:
            sql += f" WHERE {where_sql}"
        sql += " ORDER BY e.start_time, e.id"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return self.execute(sql, params)

    def all_events(self) -> list[dict]:
        """Return every stored event row with inlined entity attributes."""
        return self.query_events()


__all__ = ["RelationalStore"]
