"""SQLite-backed relational store (PostgreSQL stand-in).

The store keeps one row per unique system entity and one row per (reduced)
system event, with indexes on the attributes threat-hunting filters touch.
It exposes a thin, explicit API:

* :meth:`RelationalStore.load_events` - bulk-load an event stream,
* :meth:`RelationalStore.execute` - run a parameterized SQL query,
* :meth:`RelationalStore.query_events` - convenience filtered event lookup
  used by the TBQL execution engine.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Any, Iterable, Sequence

from ...audit.entities import (EntityType, FileEntity, NetworkEntity,
                               ProcessEntity, SystemEntity, SystemEvent)
from ...errors import StorageError
from .schema import ENTITY_COLUMNS, EVENT_COLUMNS, all_ddl
from .sqlgen import in_list


def _entity_row(entity_id: int, entity: SystemEntity) -> tuple:
    """Flatten a system entity into a row for the entities table."""
    row = {column: None for column in ENTITY_COLUMNS}
    row["id"] = entity_id
    row["type"] = entity.entity_type.value
    if isinstance(entity, FileEntity):
        row.update(name=entity.name, path=entity.path, user=entity.user,
                   grp=entity.group)
    elif isinstance(entity, ProcessEntity):
        row.update(name=entity.exename, exename=entity.exename,
                   pid=entity.pid, user=entity.user, grp=entity.group,
                   cmdline=entity.cmdline or entity.exename)
    elif isinstance(entity, NetworkEntity):
        row.update(name=entity.dstip, srcip=entity.srcip,
                   srcport=entity.srcport, dstip=entity.dstip,
                   dstport=entity.dstport, protocol=entity.protocol)
    else:  # pragma: no cover - defensive, the union is closed
        raise StorageError(f"unsupported entity class: {type(entity)!r}")
    return tuple(row[column] for column in ENTITY_COLUMNS)


class RelationalStore:
    """Relational storage backend for system audit logging data."""

    def __init__(self, path: str | Path | None = None) -> None:
        """Open (or create) the store.

        Args:
            path: database file path; ``None`` uses an in-memory database.
        """
        self._database = str(path) if path is not None else ":memory:"
        self._connection = sqlite3.connect(self._database)
        self._connection.row_factory = sqlite3.Row
        self._entity_ids: dict[tuple, int] = {}
        self._next_entity_id = 1
        self._next_event_id = 1
        self._create_schema()

    # ------------------------------------------------------------------
    # schema / lifecycle
    # ------------------------------------------------------------------
    def _create_schema(self) -> None:
        cursor = self._connection.cursor()
        for statement in all_ddl():
            cursor.execute(statement)
        self._connection.commit()

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "RelationalStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def clear(self) -> None:
        """Remove all stored entities and events."""
        cursor = self._connection.cursor()
        cursor.execute("DELETE FROM events")
        cursor.execute("DELETE FROM entities")
        self._connection.commit()
        self._entity_ids.clear()
        self._next_entity_id = 1
        self._next_event_id = 1

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def entity_id_for(self, entity: SystemEntity) -> int:
        """Return the stored id for ``entity``, registering it if new."""
        key = entity.unique_key
        existing = self._entity_ids.get(key)
        if existing is not None:
            return existing
        entity_id = self._next_entity_id
        self._next_entity_id += 1
        self._entity_ids[key] = entity_id
        placeholders = ", ".join("?" for _ in ENTITY_COLUMNS)
        self._connection.execute(
            f"INSERT INTO entities ({', '.join(ENTITY_COLUMNS)}) "
            f"VALUES ({placeholders})",
            _entity_row(entity_id, entity))
        return entity_id

    def load_events(self, events: Iterable[SystemEvent]) -> int:
        """Bulk-load events (and their entities); returns events inserted."""
        rows = []
        for event in events:
            subject_id = self.entity_id_for(event.subject)
            object_id = self.entity_id_for(event.obj)
            event_id = self._next_event_id
            self._next_event_id += 1
            rows.append((event_id, subject_id, object_id,
                         event.operation.value, event.category.value,
                         event.start_time, event.end_time, event.duration,
                         event.data_amount, event.failure_code, event.host))
        if rows:
            placeholders = ", ".join("?" for _ in EVENT_COLUMNS)
            self._connection.executemany(
                f"INSERT INTO events ({', '.join(EVENT_COLUMNS)}) "
                f"VALUES ({placeholders})", rows)
        self._connection.commit()
        return len(rows)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()) -> list[dict]:
        """Execute a SQL query and return rows as plain dictionaries.

        Raises:
            StorageError: when the SQL statement is invalid.
        """
        try:
            cursor = self._connection.execute(sql, tuple(params))
        except sqlite3.Error as exc:
            raise StorageError(f"SQL execution failed: {exc}\n{sql}") from exc
        return [dict(row) for row in cursor.fetchall()]

    def explain(self, sql: str, params: Sequence[Any] = ()) -> list[str]:
        """Return the engine's query plan lines (useful for diagnostics)."""
        rows = self.execute(f"EXPLAIN QUERY PLAN {sql}", params)
        return [str(row.get("detail", row)) for row in rows]

    def count_entities(self) -> int:
        return self.execute("SELECT COUNT(*) AS n FROM entities")[0]["n"]

    def count_events(self) -> int:
        return self.execute("SELECT COUNT(*) AS n FROM events")[0]["n"]

    def entity_by_id(self, entity_id: int) -> dict | None:
        rows = self.execute("SELECT * FROM entities WHERE id = ?",
                            (entity_id,))
        return rows[0] if rows else None

    #: Maximum ids per batched ``IN`` list; stays well below SQLite's bound
    #: variable limit (999 in older builds).
    BATCH_CHUNK_SIZE = 900

    def entity_by_ids(self, entity_ids: Iterable[int]
                      ) -> tuple[dict[int, dict], int]:
        """Fetch many entity rows in one query (batched hydration).

        Returns ``(rows_by_id, statements)``: a mapping ``id -> row``
        containing only the ids that exist (duplicates in the input are
        collapsed), plus the number of SQL statements issued.  Inputs larger
        than :attr:`BATCH_CHUNK_SIZE` are split into multiple ``IN`` lists,
        so one logical batch never exceeds the engine's bound-variable
        limit; the statement count reports that chunking to callers (the
        execution plan shows it per pattern).
        """
        unique_ids = sorted(set(entity_ids))
        rows_by_id: dict[int, dict] = {}
        statements = 0
        for start in range(0, len(unique_ids), self.BATCH_CHUNK_SIZE):
            chunk = unique_ids[start:start + self.BATCH_CHUNK_SIZE]
            params: list[Any] = []
            clause = in_list("id", chunk, False, params)
            rows = self.execute(
                f"SELECT * FROM entities WHERE {clause}", params)
            statements += 1
            for row in rows:
                rows_by_id[row["id"]] = row
        return rows_by_id, statements

    def entities_matching(self, entity_type: EntityType | None = None,
                          where_sql: str = "", params: Sequence[Any] = ()
                          ) -> list[dict]:
        """Return entity rows matching an optional type and WHERE fragment."""
        clauses = []
        bound: list[Any] = []
        if entity_type is not None:
            clauses.append("type = ?")
            bound.append(entity_type.value)
        if where_sql:
            clauses.append(f"({where_sql})")
            bound.extend(params)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return self.execute(f"SELECT * FROM entities{where}", bound)

    def query_events(self, where_sql: str = "", params: Sequence[Any] = (),
                     limit: int | None = None) -> list[dict]:
        """Return joined event rows with subject/object attributes inlined.

        The result rows expose event columns plus ``subject_*`` and
        ``object_*`` prefixed entity columns; this is the shape the TBQL
        execution engine consumes.
        """
        sql = (
            "SELECT e.id AS event_id, e.operation, e.category, e.start_time, "
            "e.end_time, e.duration, e.data_amount, e.failure_code, e.host, "
            "s.id AS subject_id, s.type AS subject_type, s.name AS "
            "subject_name, s.path AS subject_path, s.exename AS "
            "subject_exename, s.pid AS subject_pid, s.user AS subject_user, "
            "s.grp AS subject_group, s.cmdline AS subject_cmdline, "
            "o.id AS object_id, o.type AS object_type, o.name AS object_name, "
            "o.path AS object_path, o.exename AS object_exename, o.pid AS "
            "object_pid, o.user AS object_user, o.grp AS object_group, "
            "o.cmdline AS object_cmdline, o.srcip AS object_srcip, o.srcport "
            "AS object_srcport, o.dstip AS object_dstip, o.dstport AS "
            "object_dstport, o.protocol AS object_protocol "
            "FROM events e "
            "JOIN entities s ON e.subject_id = s.id "
            "JOIN entities o ON e.object_id = o.id"
        )
        if where_sql:
            sql += f" WHERE {where_sql}"
        sql += " ORDER BY e.start_time, e.id"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return self.execute(sql, params)

    def all_events(self) -> list[dict]:
        """Return every stored event row with inlined entity attributes."""
        return self.query_events()


__all__ = ["RelationalStore"]
