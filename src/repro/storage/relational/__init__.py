"""Relational storage backend (SQLite stand-in for PostgreSQL)."""

from .database import RelationalStore
from .schema import (ENTITY_ATTRIBUTE_COLUMNS, ENTITY_COLUMNS,
                     EVENT_ATTRIBUTE_COLUMNS, EVENT_COLUMNS, all_ddl)
from .sqlgen import (SQLQuery, comparison, event_pattern_select,
                     giant_join_select, in_list, like_escape)

__all__ = [
    "RelationalStore",
    "ENTITY_ATTRIBUTE_COLUMNS",
    "ENTITY_COLUMNS",
    "EVENT_ATTRIBUTE_COLUMNS",
    "EVENT_COLUMNS",
    "all_ddl",
    "SQLQuery",
    "comparison",
    "event_pattern_select",
    "giant_join_select",
    "in_list",
    "like_escape",
]
