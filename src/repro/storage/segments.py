"""Time-partitioned segment bookkeeping for the dual store.

A *segment* is a sealed, immutable slice of the stored event history:

* ``relational.sqlite`` — the segment's event rows plus exactly the
  entity rows those events reference, a standalone queryable database
  (worker processes of the scatter-gather executor open it read-only);
* ``events.col`` — the struct-packed columnar payload of the same
  event rows (:mod:`repro.storage.columnar`), memory-mapped by workers
  under ``scan_strategy="columnar"``; optional for backwards
  compatibility with format-v2 snapshots, whose segments never wrote
  one (such segments scan through SQLite regardless of strategy);
* ``graph.bin`` — the matching provenance-graph slice (the segment's
  edges, their endpoint nodes, and the entities first interned in the
  segment), in the versioned container of :meth:`PropertyGraph.save`;
* ``segment.json`` — the per-segment manifest: event-id range, newly
  interned entity-id range, and the ``[min, max]`` start/end time bounds
  the query planner prunes against.

Segments partition the event-id space contiguously (segment *k+1* starts
at segment *k*'s ``last_event_id + 1``); everything past the last sealed
segment is the *active* write segment, which lives only in the combined
store until :meth:`DualStore.flush_appends` or a snapshot save seals it.

Pruning contract: the SQL compiler renders a resolved TBQL time window
as ``start_time >= earliest AND end_time <= latest``, so a segment can
be skipped exactly when no stored event could satisfy that predicate —
see :meth:`SegmentInfo.overlaps_window`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from ..errors import StorageError
from .columnar import ColumnarSegment

#: File names inside a segment directory.
SEGMENT_MANIFEST = "segment.json"
SEGMENT_RELATIONAL = "relational.sqlite"
SEGMENT_GRAPH = "graph.bin"
SEGMENT_COLUMNAR = "events.col"

#: Manifest fields serialized for each segment (order is cosmetic).
#: ``stats`` is deliberately NOT part of this tuple: it is an optional,
#: versioned extra key so pre-stats manifests keep loading unchanged.
_MANIFEST_FIELDS = ("name", "first_event_id", "last_event_id",
                    "event_count", "first_new_entity_id",
                    "last_new_entity_id", "new_entity_count",
                    "min_start_time", "max_start_time", "min_end_time",
                    "max_end_time")

#: Version of the optional per-segment statistics block.
SEGMENT_STATS_VERSION = 1
#: Numeric event columns that get min/max zone maps.
STATS_NUMERIC_COLUMNS = ("start_time", "end_time", "duration",
                         "data_amount", "failure_code")
#: Interned-string event columns that get distinct value sets.
STATS_DISTINCT_COLUMNS = ("operation", "category", "host")
#: Distinct sets larger than this are dropped (the column is then
#: unprunable for that segment — high cardinality makes presence checks
#: both expensive to store and unlikely to prune anything).
STATS_DISTINCT_CAP = 64


@dataclass(frozen=True)
class SegmentStats:
    """Seal-time statistics a scan can prune against.

    All fields are *conservative summaries* of the segment's event rows:
    a value absent from a distinct set provably does not occur in that
    column, and a numeric column's values all lie inside its zone map.
    Columns may be missing from either mapping (empty segment, distinct
    cardinality over the cap, future schema drift) — consumers must
    treat a missing column as "anything may occur".
    """

    #: ``column -> (min, max)`` over the segment's event rows.
    numeric: Mapping[str, tuple[float, float]] = field(default_factory=dict)
    #: ``column -> sorted tuple of every distinct value`` (NULL omitted).
    distinct: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    #: Entity types occurring as event subjects / objects (``None`` when
    #: unknown — e.g. a stats version that predates the field).
    subject_types: Optional[tuple[str, ...]] = None
    object_types: Optional[tuple[str, ...]] = None

    def as_entry(self) -> dict[str, Any]:
        """JSON view stored under the manifest's ``stats`` key."""
        return {
            "version": SEGMENT_STATS_VERSION,
            "numeric": {column: [low, high]
                        for column, (low, high) in self.numeric.items()},
            "distinct": {column: list(values)
                         for column, values in self.distinct.items()},
            "subject_types": (None if self.subject_types is None
                              else list(self.subject_types)),
            "object_types": (None if self.object_types is None
                             else list(self.object_types)),
        }

    @classmethod
    def from_entry(cls, entry: Any) -> Optional["SegmentStats"]:
        """Tolerant parse: anything malformed or from the future yields
        ``None`` (the segment simply never prunes), never an error."""
        if not isinstance(entry, dict):
            return None
        version = entry.get("version")
        if not isinstance(version, int) or version < 1 or \
                version > SEGMENT_STATS_VERSION:
            return None
        try:
            numeric = {
                str(column): (float(bounds[0]), float(bounds[1]))
                for column, bounds in dict(entry.get("numeric") or {}
                                           ).items()}
            distinct = {
                str(column): tuple(str(value) for value in values)
                for column, values in dict(entry.get("distinct") or {}
                                           ).items()}
            subject_types = entry.get("subject_types")
            if subject_types is not None:
                subject_types = tuple(str(value)
                                      for value in subject_types)
            object_types = entry.get("object_types")
            if object_types is not None:
                object_types = tuple(str(value) for value in object_types)
        except (TypeError, ValueError, IndexError, KeyError):
            return None
        return cls(numeric=numeric, distinct=distinct,
                   subject_types=subject_types, object_types=object_types)


def collect_segment_stats(columnar_path: str | Path
                          ) -> Optional[SegmentStats]:
    """Compute seal-time stats from a freshly written ``events.col``.

    Returns ``None`` when the payload is unreadable — sealing must
    never fail because of the optional stats block.
    """
    try:
        segment = ColumnarSegment(columnar_path)
    except StorageError:
        return None
    try:
        numeric: dict[str, tuple[float, float]] = {}
        distinct: dict[str, tuple[str, ...]] = {}
        if segment.event_count:
            for column in STATS_NUMERIC_COLUMNS:
                values = segment.column(f"event.{column}")
                numeric[column] = (min(values), max(values))
            strings = segment.strings
            for column in STATS_DISTINCT_COLUMNS:
                codes = set(segment.column(f"event.{column}"))
                codes.discard(0)
                if len(codes) <= STATS_DISTINCT_CAP:
                    distinct[column] = tuple(
                        sorted(strings[code] for code in codes))
        types = segment.column("entity.type")
        strings = segment.strings

        def _side_types(column: str) -> tuple[str, ...]:
            codes = {types[segment.entity_index(entity_id)]
                     for entity_id in set(segment.column(column))}
            codes.discard(0)
            return tuple(sorted(strings[code] for code in codes))

        return SegmentStats(numeric=numeric, distinct=distinct,
                            subject_types=_side_types("event.subject_id"),
                            object_types=_side_types("event.object_id"))
    except (StorageError, ValueError, TypeError):
        return None
    finally:
        segment.close()


@dataclass(frozen=True)
class SegmentInfo:
    """Manifest of one sealed, immutable store segment."""

    name: str
    #: Absolute directory holding the segment files (not serialized into
    #: snapshot manifests — there the location is implied by the name).
    directory: str
    first_event_id: int
    last_event_id: int
    event_count: int
    #: Id range of entities first interned while this segment was the
    #: active one (0/-1 when the segment introduced no new entities).
    first_new_entity_id: int
    last_new_entity_id: int
    new_entity_count: int
    min_start_time: float
    max_start_time: float
    min_end_time: float
    max_end_time: float
    #: Optional seal-time statistics (``None`` for segments sealed by
    #: pre-stats builds or whose stats block failed to parse — such
    #: segments are always scanned, never pruned by stats).
    stats: Optional[SegmentStats] = None

    @property
    def sqlite_path(self) -> str:
        return str(Path(self.directory) / SEGMENT_RELATIONAL)

    @property
    def graph_path(self) -> str:
        return str(Path(self.directory) / SEGMENT_GRAPH)

    @property
    def columnar_path(self) -> str:
        return str(Path(self.directory) / SEGMENT_COLUMNAR)

    @property
    def manifest_path(self) -> str:
        return str(Path(self.directory) / SEGMENT_MANIFEST)

    def has_columnar(self) -> bool:
        """Whether the optional ``events.col`` payload exists on disk."""
        return Path(self.columnar_path).is_file()

    def overlaps_window(self, window: Optional[tuple[Optional[float],
                                                     Optional[float]]]
                        ) -> bool:
        """Could any event here satisfy the compiled window predicate?

        Mirrors the SQL the compiler emits — ``start_time >= earliest``
        and ``end_time <= latest`` — so pruning is conservative: a
        segment is skipped only when *every* stored event provably fails
        the predicate.  ``None`` bounds are unbounded.
        """
        if window is None:
            return True
        earliest, latest = window
        if earliest is not None and self.max_start_time < earliest:
            return False
        if latest is not None and self.min_end_time > latest:
            return False
        return True

    def as_manifest_entry(self) -> dict[str, Any]:
        """The JSON view stored in segment/snapshot manifests."""
        entry: dict[str, Any] = {name: getattr(self, name)
                                 for name in _MANIFEST_FIELDS}
        if self.stats is not None:
            entry["stats"] = self.stats.as_entry()
        return entry

    @classmethod
    def from_manifest_entry(cls, entry: dict[str, Any],
                            directory: str | Path) -> "SegmentInfo":
        try:
            fields = {name: entry[name] for name in _MANIFEST_FIELDS}
        except KeyError as exc:
            raise StorageError(
                f"segment manifest entry missing field {exc}") from exc
        return cls(directory=str(directory),
                   stats=SegmentStats.from_entry(entry.get("stats")),
                   **fields)

    def write_manifest(self) -> None:
        Path(self.manifest_path).write_text(
            json.dumps(self.as_manifest_entry(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")

    def verify_files(self) -> None:
        """Raise :class:`StorageError` when a segment file is missing.

        ``events.col`` is deliberately not checked: it is absent from
        segments restored out of format-v2 snapshots, which must keep
        opening (they fall back to SQLite scans per segment).
        """
        for path in (self.sqlite_path, self.graph_path):
            if not Path(path).is_file():
                raise StorageError(
                    f"segment {self.name} is missing {path}")


@dataclass(frozen=True)
class SegmentView:
    """A point-in-time view of the store's partitioning for execution.

    ``sealed`` lists the immutable segments in event-id order; events
    with ids at or above ``active_first_event_id`` (there are
    ``active_events`` of them) live only in the combined store and are
    scanned there.
    """

    sealed: tuple[SegmentInfo, ...]
    active_first_event_id: int
    active_events: int

    @property
    def sealed_events(self) -> int:
        return sum(segment.event_count for segment in self.sealed)


def prune_segments(segments: tuple[SegmentInfo, ...] | list[SegmentInfo],
                   window: Optional[tuple[Optional[float],
                                          Optional[float]]]
                   ) -> list[SegmentInfo]:
    """The segments a windowed scan must visit (manifest-level pruning)."""
    return [segment for segment in segments
            if segment.overlaps_window(window)]


def merge_infos(members: list[SegmentInfo], name: str,
                directory: str | Path) -> SegmentInfo:
    """Manifest of a compaction merge of adjacent ``members``.

    Members must be contiguous in event-id order (the caller walks the
    sealed list in order, so this holds by construction); the merged
    bounds are pure min/max folds — no data scan needed.
    """
    if not members:
        raise StorageError("cannot merge zero segments")
    for left, right in zip(members, members[1:]):
        if right.first_event_id != left.last_event_id + 1:
            raise StorageError(
                f"segments {left.name} and {right.name} are not adjacent "
                f"(event ids {left.last_event_id} .. "
                f"{right.first_event_id})")
    with_entities = [m for m in members if m.new_entity_count > 0]
    return SegmentInfo(
        name=name, directory=str(directory),
        first_event_id=members[0].first_event_id,
        last_event_id=members[-1].last_event_id,
        event_count=sum(m.event_count for m in members),
        first_new_entity_id=(min(m.first_new_entity_id
                                 for m in with_entities)
                             if with_entities else 0),
        last_new_entity_id=(max(m.last_new_entity_id
                                for m in with_entities)
                            if with_entities else -1),
        new_entity_count=sum(m.new_entity_count for m in members),
        min_start_time=min(m.min_start_time for m in members),
        max_start_time=max(m.max_start_time for m in members),
        min_end_time=min(m.min_end_time for m in members),
        max_end_time=max(m.max_end_time for m in members))


def plan_compaction(segments: list[SegmentInfo],
                    min_events: int) -> list[list[SegmentInfo]]:
    """Group adjacent undersized segments into merge runs.

    Greedy left-to-right: segments smaller than ``min_events`` accumulate
    into a run until the run reaches ``min_events``; segments already at
    or above the threshold act as barriers.  Only runs of two or more
    segments are returned (merging a single segment is a no-op).
    """
    runs: list[list[SegmentInfo]] = []
    current: list[SegmentInfo] = []
    current_events = 0
    for segment in segments:
        if segment.event_count >= min_events:
            if len(current) > 1:
                runs.append(current)
            current = []
            current_events = 0
            continue
        current.append(segment)
        current_events += segment.event_count
        if current_events >= min_events:
            if len(current) > 1:
                runs.append(current)
            current = []
            current_events = 0
    if len(current) > 1:
        runs.append(current)
    return runs


__all__ = ["SegmentInfo", "SegmentStats", "SegmentView",
           "collect_segment_stats", "prune_segments", "merge_infos",
           "plan_compaction", "SEGMENT_MANIFEST", "SEGMENT_RELATIONAL",
           "SEGMENT_GRAPH", "SEGMENT_COLUMNAR", "SEGMENT_STATS_VERSION",
           "STATS_NUMERIC_COLUMNS", "STATS_DISTINCT_COLUMNS",
           "STATS_DISTINCT_CAP"]
