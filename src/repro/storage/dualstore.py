"""Dual storage facade: replicated relational + graph backends.

Section III-B: data is replicated across PostgreSQL and Neo4j so that event
patterns can run as SQL and variable-length path patterns can run as Cypher.
The :class:`DualStore` mirrors that arrangement — one load call populates both
backends (optionally applying data reduction first) and exposes both query
interfaces.

Loading runs a *single pass* over the (streamed, reduced) events: entity
deduplication happens once, producing the relational row batches and the
graph node/edge batches together, which are then bulk-inserted into each
backend.  The pre-batching loader (batch reduction, row-at-a-time entity
inserts, item-wise graph construction) is retained as
``strategy="rowwise"`` — the reference the ingestion benchmark and the
equivalence tests compare against.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import shutil
import tempfile
import time
from collections import deque
from operator import attrgetter
from pathlib import Path
from typing import Iterable, Optional

from ..audit.entities import SystemEvent
from ..audit.reduction import DEFAULT_MERGE_THRESHOLD, ReductionStats, \
    reduce_events
from ..errors import StorageError
from ..obs.metrics import get_registry
from .columnar import EventColumns, write_columnar, write_columnar_from_sqlite
from .graph import GraphStore
from .graph.graphdb import PropertyGraph
from .relational import RelationalStore
from .relational.database import entity_row
from .relational.schema import ENTITY_COLUMNS
from .segments import (SEGMENT_COLUMNAR, SEGMENT_GRAPH, SEGMENT_MANIFEST,
                       SEGMENT_RELATIONAL, SegmentInfo, SegmentView,
                       collect_segment_stats, merge_infos, plan_compaction)

#: Valid ``strategy`` arguments for :meth:`DualStore.load_events`.
LOAD_STRATEGIES = ("batched", "rowwise")

#: Valid ``layout`` arguments for :class:`DualStore`: ``"monolithic"``
#: keeps the whole history in one relational database + one graph;
#: ``"segmented"`` additionally seals the history into immutable
#: time-bounded segments the TBQL executor can prune and scan in
#: parallel (see :mod:`repro.storage.segments`).
STORE_LAYOUTS = ("monolithic", "segmented")

#: Default compaction threshold: sealed segments smaller than this are
#: merged with their neighbours by :meth:`DualStore.compact`.
DEFAULT_COMPACT_MIN_EVENTS = 5000

#: Version of the on-disk dual-store snapshot layout.  Bump when the
#: directory layout or manifest contract changes; :meth:`DualStore.open`
#: rejects snapshots written by newer versions.  Version history:
#: v1 — single relational.sqlite + graph.bin + manifest;
#: v2 — adds ``layout`` and the multi-segment manifest (``segments``
#: entries + a ``segments/<name>/`` directory per sealed segment);
#: v3 — each sealed segment additionally carries a struct-packed
#: columnar payload (``events.col``, :mod:`repro.storage.columnar`)
#: that scatter-gather workers memory-map under
#: ``scan_strategy="columnar"``.
#: v1 snapshots remain readable (they open as monolithic stores), and
#: v2 snapshots open with their columnar payloads simply absent — such
#: segments scan through SQLite regardless of the requested strategy.
SNAPSHOT_FORMAT_VERSION = 3
#: File names inside a snapshot directory.
SNAPSHOT_MANIFEST = "manifest.json"
SNAPSHOT_RELATIONAL = "relational.sqlite"
SNAPSHOT_GRAPH = "graph.bin"
#: Subdirectory of a v2 snapshot holding one directory per segment.
SNAPSHOT_SEGMENTS_DIR = "segments"


def _file_size(path: str | Path) -> int:
    """On-disk size in bytes, 0 when the file is absent."""
    try:
        return Path(path).stat().st_size
    except OSError:
        return 0


class IngestStats(int):
    """Stored-event count enriched with ingestion statistics.

    Instances *are* the stored event count (an ``int`` subclass), so every
    caller that treated :meth:`DualStore.load_events`'s return value as a
    plain count keeps working; the extra attributes carry the load telemetry
    surfaced by ``repro ingest --stats``.
    """

    #: Events read before reduction.
    input_events: int
    #: Events stored after reduction (== ``int(self)``).
    events: int
    #: Unique entities registered.
    entities: int
    #: ``executemany`` batches issued by the relational backend.
    relational_batches: int
    #: Seconds per stage: ``reduce``, ``build``, ``relational``, ``graph``.
    seconds: dict[str, float]
    #: Load strategy used ("batched" or "rowwise").
    strategy: str

    def __new__(cls, events: int, *, input_events: int, entities: int,
                relational_batches: int, seconds: dict[str, float],
                strategy: str) -> "IngestStats":
        self = super().__new__(cls, events)
        self.events = events
        self.input_events = input_events
        self.entities = entities
        self.relational_batches = relational_batches
        self.seconds = seconds
        self.strategy = strategy
        return self

    @property
    def total_seconds(self) -> float:
        """Sum of the per-stage timings."""
        return sum(self.seconds.values())

    def observe(self) -> "IngestStats":
        """Record this ingest into the metrics registry; returns self."""
        registry = get_registry()
        registry.counter(
            "repro_ingest_events_total",
            "Events stored across full loads and streaming appends.",
        ).inc(self.events)
        stage_hist = registry.histogram(
            "repro_ingest_stage_seconds",
            "Per-stage ingest durations (reduce, build, relational, "
            "graph), in seconds.", labels=("stage",))
        for stage, elapsed in self.seconds.items():
            stage_hist.labels(stage).observe(elapsed)
        return self

    def as_dict(self) -> dict:
        """Plain-dict view for programmatic consumers (logging, JSON)."""
        return {
            "strategy": self.strategy,
            "input_events": self.input_events,
            "events": self.events,
            "entities": self.entities,
            "relational_batches": self.relational_batches,
            "seconds": dict(self.seconds),
            "total_seconds": self.total_seconds,
        }

    def __str__(self) -> str:
        # int defines no __str__ of its own, so without this the custom
        # __repr__ would leak into f-strings printing the event count.
        return str(int(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IngestStats(events={self.events}, "
                f"input_events={self.input_events}, "
                f"entities={self.entities}, "
                f"total_seconds={self.total_seconds:.4f})")


class _BuildBatches:
    """The fused build pass of the batched loader.

    One scan over the (sorted) input events interleaves three jobs the
    rowwise reference performs as separate passes:

    * *streaming reduction* — merge-run state is accumulated per
      ``(subject, object, operation)`` key and evicted as soon as a run
      closes (the :class:`StreamingReducer` discipline, inlined);
    * *entity interning* — each entity resolves to its store id once, via an
      object-identity fast path backed by the unique-key map, emitting the
      relational row and graph node on first sight;
    * *row building* — each evicted run materializes its merged event and
      appends its fields *column-wise* into :class:`EventColumns` (plus the
      graph edge).  Emitting columns instead of row tuples is what makes
      sealing a segment cheap: the columnar payload (``events.col``) packs
      each accumulated column into one contiguous array — an O(columns)
      slice — while the SQLite insert path zips the same columns back into
      tuples via :meth:`EventColumns.row_tuples`.

    Entity and event ids are assigned in first-appearance order from 1,
    matching both the rowwise loader's assignment and the node ids
    ``add_nodes_bulk`` hands out on a fresh graph.

    The pass also powers *incremental* loading: the merge-run state and the
    id assignment survive across :meth:`consume_reducing` calls, so a log
    appended batch-by-batch builds exactly the rows one big call would have
    built (runs that span a batch boundary keep merging).  Constructor
    arguments seed the continuation — an existing ``unique_key -> id`` map
    and the next free entity/event ids — and :meth:`drain` hands the rows
    accumulated since the last drain to the caller while the interning and
    run state stay live.  :meth:`flush_runs` closes the still-open runs
    (end of stream or an explicit seal).
    """

    def __init__(self, merge_threshold: float,
                 entity_ids: dict[tuple, int] | None = None,
                 next_entity_id: int = 1, next_event_id: int = 1) -> None:
        self.merge_threshold = merge_threshold
        self.entity_ids: dict[tuple, int] = \
            entity_ids if entity_ids is not None else {}
        self._ids_by_object: dict[int, int] = {}
        self.entity_rows: list[tuple] = []
        self.event_columns = EventColumns()
        self.nodes: list[tuple[str, dict]] = []
        self.edges: list[tuple[int, int, str, dict]] = []
        self.reduced: list[SystemEvent] = []
        self.next_entity_id = next_entity_id
        self.next_event_id = next_event_id
        # Merge-run continuation state (persists across consume calls).
        self._open_runs: dict[tuple, list] = {}
        self._run_queue: deque[tuple[tuple, list]] = deque()
        self.input_events = 0
        self.output_events = 0
        self.merged_events = 0

    @property
    def open_runs(self) -> int:
        """Merge runs still buffered (not yet emitted as rows)."""
        return len(self._run_queue)

    @property
    def reduction_stats(self) -> ReductionStats:
        """Cumulative reduction statistics (open runs counted as output)."""
        return ReductionStats(input_events=self.input_events,
                              output_events=self.output_events +
                              len(self._run_queue),
                              merged_events=self.merged_events)

    def drain(self) -> tuple[list[tuple], EventColumns,
                             list[tuple[str, dict]],
                             list[tuple[int, int, str, dict]],
                             list[SystemEvent]]:
        """Hand over the rows built since the last drain, keeping state.

        Returns ``(entity_rows, event_columns, nodes, edges, reduced)``.
        The interning map, id counters, and open merge runs stay live so
        the next batch continues exactly where this one left off.  The
        object-identity fast path is reset: between batches an entity
        object may be garbage collected and its address reused, so only
        the unique-key map may carry over.
        """
        drained = (self.entity_rows, self.event_columns, self.nodes,
                   self.edges, self.reduced)
        self.entity_rows = []
        self.event_columns = EventColumns()
        self.nodes = []
        self.edges = []
        self.reduced = []
        self._ids_by_object = {}
        return drained

    def _intern(self, entity) -> int:
        # Object-identity fast path: collectors reuse entity instances
        # across events, so most lookups never hash the unique key.
        marker = id(entity)
        entity_id = self._ids_by_object.get(marker)
        if entity_id is None:
            key = entity.unique_key
            entity_id = self.entity_ids.get(key)
            if entity_id is None:
                entity_id = self.next_entity_id
                self.next_entity_id = entity_id + 1
                self.entity_ids[key] = entity_id
                self.entity_rows.append(entity_row(entity_id, entity))
                self.nodes.append((entity.entity_type.value,
                                   entity.attributes()))
            self._ids_by_object[marker] = entity_id
        return entity_id

    def _emit(self, event: SystemEvent, subject_id: int,
              object_id: int) -> None:
        # The edge adopts the event's cached attribute dict (no copy): the
        # graph never mutates edge properties and SystemEvent.attributes()
        # is documented read-only, so the two views may share one dict.
        attrs = event.attributes()
        event_id = self.next_event_id
        self.next_event_id = event_id + 1
        self.event_columns.append(
            event_id, subject_id, object_id,
            attrs["operation"], attrs["category"], event.start_time,
            event.end_time, attrs["duration"], event.data_amount,
            event.failure_code, event.host)
        self.edges.append((subject_id, object_id, "EVENT", attrs))
        self.reduced.append(event)
        self.output_events += 1

    def _emit_run(self, cell: list) -> None:
        first = cell[0]
        if cell[3]:
            merged = first.with_merged_span(cell[1], cell[2])
            # Derive the merged event's attribute cache from the first
            # event's instead of rebuilding it field by field — only the
            # span-dependent entries change.
            attrs = dict(first.attributes())
            attrs["end_time"] = cell[1]
            attrs["duration"] = cell[1] - first.start_time
            attrs["data_amount"] = cell[2]
            merged.__dict__["_attributes"] = attrs
            first = merged
        self._emit(first, cell[5], cell[6])

    def consume(self, event_list: list[SystemEvent]) -> None:
        """Build batches without reduction (events in given order)."""
        intern = self._intern
        self.input_events += len(event_list)
        for event in event_list:
            self._emit(event, intern(event.subject), intern(event.obj))

    def consume_reducing(self, event_list: list[SystemEvent]) -> None:
        """Build batches with streaming reduction (events must be sorted).

        Runs that are still open when the list ends stay buffered; the
        next call keeps merging into them, and :meth:`flush_runs` closes
        them at end of stream.  An event older than an open run's window
        simply opens a new run (out-of-order input degrades reduction,
        never correctness).
        """
        # Run cells: [first_event, end_time, data_amount, merge_count,
        # closed, subject_id, object_id]; evicted in first-appearance order,
        # exactly like StreamingReducer/reduce_events.  The merge key uses
        # id(operation): enum members are singletons, so identity equals
        # equality without the descriptor lookups.
        threshold = self.merge_threshold
        identity_ids = self._ids_by_object
        intern = self._intern
        open_runs = self._open_runs
        run_queue = self._run_queue
        self.input_events += len(event_list)
        for event in event_list:
            subject = event.subject
            subject_id = identity_ids.get(id(subject))
            if subject_id is None:
                subject_id = intern(subject)
            obj = event.obj
            object_id = identity_ids.get(id(obj))
            if object_id is None:
                object_id = intern(obj)
            start = event.start_time
            key = (subject_id, object_id, id(event.operation))
            cell = open_runs.get(key)
            if cell is not None and not cell[4] and \
                    0 <= start - cell[1] <= threshold:
                cell[1] = event.end_time
                cell[2] += event.data_amount
                cell[3] += 1
                self.merged_events += 1
            else:
                if cell is not None:
                    cell[4] = True
                cell = [event, event.end_time, event.data_amount, 0,
                        False, subject_id, object_id]
                open_runs[key] = cell
                run_queue.append((key, cell))
            while run_queue:
                head_key, head = run_queue[0]
                if not head[4] and head[1] + threshold >= start:
                    break
                run_queue.popleft()
                if open_runs.get(head_key) is head:
                    del open_runs[head_key]
                self._emit_run(head)

    def flush_runs(self) -> int:
        """Close and emit every still-open merge run; returns the count."""
        run_queue = self._run_queue
        self._run_queue = deque()
        self._open_runs = {}
        count = 0
        for _key, cell in run_queue:
            self._emit_run(cell)
            count += 1
        return count


class DualStore:
    """Replicated storage across the relational and graph backends."""

    def __init__(self, relational_path: str | Path | None = None,
                 reduce: bool = True,
                 merge_threshold: float = DEFAULT_MERGE_THRESHOLD,
                 retain_events: bool = True,
                 layout: str = "monolithic",
                 segment_dir: str | Path | None = None) -> None:
        """Create the dual store.

        Args:
            relational_path: optional on-disk path for the relational store.
            reduce: apply the Section III-B data reduction before storing.
            merge_threshold: merge-gap threshold in seconds.
            retain_events: keep the (reduced) :class:`SystemEvent` objects
                in memory for :meth:`events`.  Turn off for long-running
                streaming stores — both query backends hold the data, and
                retaining a third in-memory copy grows without bound under
                continuous :meth:`append_events`.
            layout: ``"monolithic"`` (default) or ``"segmented"``; the
                segmented layout seals immutable time-bounded segments on
                :meth:`flush_appends`/:meth:`save`, enabling segment
                pruning and parallel scatter-gather pattern scans.
            segment_dir: with ``layout="segmented"``: directory for the
                sealed segment files; a private temporary directory
                (removed on :meth:`close`) when omitted.
        """
        if layout not in STORE_LAYOUTS:
            raise ValueError(f"unknown store layout: {layout!r} "
                             f"(expected one of {STORE_LAYOUTS})")
        self.relational = RelationalStore(relational_path)
        self.graph = GraphStore()
        self.reduce = reduce
        self.merge_threshold = merge_threshold
        self.retain_events = retain_events
        self.last_reduction: ReductionStats | None = None
        self.last_ingest: IngestStats | None = None
        self._events: list[SystemEvent] = []
        #: Bumped on every (re)load and on every stored append batch;
        #: executors watch it to drop caches keyed by entity id when the
        #: stored data changes.
        self.data_version = 0
        #: Continuation state of the incremental append path (lazy).
        self._stream: _BuildBatches | None = None
        self.layout = layout
        self._init_segment_state(segmented=(layout == "segmented"),
                                 segment_dir=segment_dir)

    # ------------------------------------------------------------------
    # segment bookkeeping (layout="segmented")
    # ------------------------------------------------------------------
    def _init_segment_state(self, segmented: bool,
                            segment_dir: str | Path | None = None) -> None:
        self._segmented = segmented
        self._segments: list[SegmentInfo] = []
        #: Monotonic per-store counter so segment names (and therefore
        #: file paths) are never reused, even across reloads — read-only
        #: scanner connections may still be cached on an old path.
        self._segment_seq = 1
        self._owns_segment_home = False
        self._segment_home: Path | None = None
        if segmented:
            if segment_dir is None:
                self._segment_home = Path(
                    tempfile.mkdtemp(prefix="repro-segments-"))
                self._owns_segment_home = True
            else:
                self._segment_home = Path(segment_dir)
                self._segment_home.mkdir(parents=True, exist_ok=True)
        self._reset_active_tracking(first_event_id=1, first_entity_id=1)

    def _reset_active_tracking(self, first_event_id: int,
                               first_entity_id: int) -> None:
        self._active_first_event_id = first_event_id
        self._active_first_entity_id = first_entity_id
        self._active_events = 0
        self._active_min_start: Optional[float] = None
        self._active_max_start: Optional[float] = None
        self._active_min_end: Optional[float] = None
        self._active_max_end: Optional[float] = None
        #: Column-major buffer of the active segment's stored event rows
        #: — the seal-time fast path packs these lists straight into the
        #: ``events.col`` payload.  ``None`` when the rows didn't flow
        #: through the columnar builder (rowwise loads); sealing then
        #: falls back to re-reading the exported SQLite file.
        self._active_columns: EventColumns | None = (
            EventColumns() if self._segmented else None)

    def _track_active_bounds(self, times: Iterable[tuple[float, float]],
                             count: int) -> None:
        """Fold stored ``(start_time, end_time)`` pairs into the active
        segment's manifest-to-be."""
        if not self._segmented or count == 0:
            return
        min_start = self._active_min_start
        max_start = self._active_max_start
        min_end = self._active_min_end
        max_end = self._active_max_end
        for start, end in times:
            if min_start is None or start < min_start:
                min_start = start
            if max_start is None or start > max_start:
                max_start = start
            if min_end is None or end < min_end:
                min_end = end
            if max_end is None or end > max_end:
                max_end = end
        self._active_min_start = min_start
        self._active_max_start = max_start
        self._active_min_end = min_end
        self._active_max_end = max_end
        self._active_events += count

    def _track_active_rows(self, event_columns: EventColumns) -> None:
        self._track_active_bounds(event_columns.time_pairs(),
                                  len(event_columns))
        if self._segmented and self._active_columns is not None and \
                len(event_columns):
            self._active_columns.extend(event_columns)

    def _drop_segments(self) -> None:
        """Forget every sealed segment (a reload replaces the history)."""
        for info in self._segments:
            self._discard_segment_files(info)
        self._segments = []
        self._reset_active_tracking(first_event_id=1, first_entity_id=1)

    def _discard_segment_files(self, info: SegmentInfo) -> None:
        home = self._segment_home
        if home is None or not self._owns_segment_home:
            return
        directory = Path(info.directory)
        try:
            if directory.resolve().is_relative_to(home.resolve()):
                shutil.rmtree(directory, ignore_errors=True)
        except (OSError, ValueError):  # pragma: no cover - best effort
            pass

    def load_events(self, events: Iterable[SystemEvent],
                    strategy: str = "batched") -> IngestStats:
        """Load events into both backends; returns ingestion statistics.

        The return value is an :class:`IngestStats` — an ``int`` holding the
        stored event count, annotated with per-stage timings and batch
        counts.

        Loading *replaces* the stored data: the graph backend rebuilds from
        scratch on every load, so the relational backend is cleared first to
        keep both id spaces aligned (relational entity id == graph node id,
        the invariant candidate pushdown relies on).  Without the clear, a
        second load would leave the relational store counting entity ids
        past the rebuilt graph's, and pushed-down id allowlists would
        silently select the wrong nodes.

        Args:
            events: the system events to store.
            strategy: ``"batched"`` (default) streams the reduction and
                bulk-loads both backends from one build pass;
                ``"rowwise"`` is the retained pre-batching reference path.
        """
        if strategy not in LOAD_STRATEGIES:
            raise ValueError(f"unknown load strategy: {strategy!r} "
                             f"(expected one of {LOAD_STRATEGIES})")
        if self.read_only:
            raise StorageError(
                "store is read-only (opened from a snapshot); ingest into "
                "a writable DualStore and save() a new snapshot instead")
        loader = self._load_batched if strategy == "batched" else \
            self._load_rowwise
        self._stream = None     # a reload invalidates append continuation
        if self._segmented:
            self._drop_segments()
        stats = loader(events).observe()
        self.last_ingest = stats
        self.data_version += 1
        return stats

    # ------------------------------------------------------------------
    # incremental append path (live streaming ingestion)
    # ------------------------------------------------------------------
    def append_events(self, events: Iterable[SystemEvent]) -> IngestStats:
        """Append a batch of events to both backends without a rebuild.

        The same fused reduction/interning/row-building pass as the batched
        loader runs on the delta only: new entities get the next free ids
        (relational row id == graph node id stays invariant), event rows are
        appended with multi-row inserts under incremental index maintenance,
        and the graph grows via the bulk node/edge appends.  Merge runs that
        are still open when the batch ends stay buffered so a run spanning
        two appends merges exactly as a one-shot load would; they are stored
        when a later event closes them or when :meth:`flush_appends` seals
        the stream.  ``data_version`` is bumped once per batch that stores
        anything, so executor/plan/result caches invalidate correctly.

        The batch is sorted internally; events that arrive older than
        already-appended data are stored correctly but cannot merge into
        runs that earlier batches closed (late data degrades reduction,
        never correctness).

        Returns per-batch :class:`IngestStats` whose count is the number of
        events *stored* by this call (buffered open runs are excluded).
        """
        if self.read_only:
            raise StorageError(
                "store is read-only (opened from a snapshot); reopen with "
                "DualStore.open(path, read_only=False) to append")
        stream = self._ensure_stream()
        reduce_start = time.perf_counter()
        event_list = list(events)
        input_count = len(event_list)
        if self.reduce:
            event_list.sort(key=attrgetter("start_time", "event_id"))
        reduce_seconds = time.perf_counter() - reduce_start

        build_start = time.perf_counter()
        if self.reduce:
            stream.consume_reducing(event_list)
        else:
            stream.consume(event_list)
        build_seconds = time.perf_counter() - build_start
        return self._store_stream_delta(
            stream, input_count,
            {"reduce": reduce_seconds, "build": build_seconds})

    def flush_appends(self, seal_segment: bool = True) -> IngestStats:
        """Seal the append stream: store every still-open merge run.

        Call at end of stream (or before a checkpoint snapshot) so events
        buffered in open merge runs become queryable.  A no-op when nothing
        is buffered.  On a segmented store this also seals the active
        write segment (when it holds any events), making the stored tail
        an immutable, independently scannable segment — pass
        ``seal_segment=False`` to flush the merge runs without cutting a
        segment (the streaming engine does this for per-request ingest
        seals, where cutting one tiny segment per HTTP request would
        drown the store in scatter tasks; its ``seal_every`` policy and
        checkpoint saves decide when segments actually close).
        """
        stats = self._flush_stream()
        if seal_segment and self._segmented and not self.read_only:
            self._seal_active()
        return stats

    def _flush_stream(self) -> IngestStats:
        stream = self._stream
        if stream is None:
            return IngestStats(0, input_events=0, entities=0,
                               relational_batches=0, seconds={},
                               strategy="append")
        build_start = time.perf_counter()
        stream.flush_runs()
        build_seconds = time.perf_counter() - build_start
        return self._store_stream_delta(
            stream, 0, {"reduce": 0.0, "build": build_seconds})

    # ------------------------------------------------------------------
    # segmented layout: sealing, compaction, execution view
    # ------------------------------------------------------------------
    def seal_active_segment(self) -> SegmentInfo | None:
        """Flush open merge runs and seal the active write segment.

        Returns the new segment's manifest, or ``None`` when the active
        segment held no stored events.  Only valid on a writable store
        with ``layout="segmented"``.
        """
        if not self._segmented:
            raise StorageError(
                "this store has no segments (layout='monolithic'); "
                "construct it with layout='segmented' to seal")
        if self.read_only:
            raise StorageError("store is read-only (opened from a "
                               "snapshot); segments cannot be sealed")
        self._flush_stream()
        return self._seal_active()

    def _seal_active(self) -> SegmentInfo | None:
        if self._active_events == 0:
            return None
        assert self._segment_home is not None
        name = f"seg-{self._segment_seq:06d}"
        self._segment_seq += 1
        directory = self._segment_home / name
        directory.mkdir(parents=True, exist_ok=True)
        first_event = self._active_first_event_id
        last_event = first_event + self._active_events - 1
        first_entity = self._active_first_entity_id
        last_entity = self.relational.id_state()[1] - 1
        new_entities = max(0, last_entity - first_entity + 1)
        info = SegmentInfo(
            name=name, directory=str(directory),
            first_event_id=first_event, last_event_id=last_event,
            event_count=self._active_events,
            first_new_entity_id=first_entity if new_entities else 0,
            last_new_entity_id=last_entity if new_entities else -1,
            new_entity_count=new_entities,
            min_start_time=float(self._active_min_start or 0.0),
            max_start_time=float(self._active_max_start or 0.0),
            min_end_time=float(self._active_min_end or 0.0),
            max_end_time=float(self._active_max_end or 0.0))
        columns = self._active_columns
        covered = (columns is not None and len(columns) == info.event_count
                   and columns.first_id == info.first_event_id)
        info = self._write_segment_files(
            info, event_columns=columns if covered else None)
        self._segments.append(info)
        self._reset_active_tracking(first_event_id=last_event + 1,
                                    first_entity_id=last_entity + 1)
        return info

    def _write_segment_files(self, info: SegmentInfo,
                             event_columns: EventColumns | None = None
                             ) -> SegmentInfo:
        self.relational.export_segment(Path(info.sqlite_path),
                                       info.first_event_id,
                                       info.last_event_id)
        self.graph.graph.save_slice(
            Path(info.graph_path), info.first_event_id,
            info.last_event_id,
            info.first_new_entity_id if info.new_entity_count else 0,
            info.last_new_entity_id if info.new_entity_count else -1)
        if event_columns is not None:
            # Fast path: the active segment's rows are already buffered
            # column-wise, so packing the payload is an O(columns) slice;
            # the entity side is one ordered scan of the (small, dense)
            # entity table, a superset of the referenced rows.
            write_columnar(Path(info.columnar_path), event_columns,
                           self._all_entity_rows())
        else:
            # Fallback (compaction merges, rowwise loads): rebuild the
            # payload from the segment's just-exported SQLite file.
            write_columnar_from_sqlite(info.sqlite_path, info.columnar_path)
        # Stats ride along in the manifest; a None result (unreadable
        # payload) just leaves the segment permanently unpruned.
        stats = collect_segment_stats(info.columnar_path)
        if stats is not None:
            info = dataclasses.replace(info, stats=stats)
        info.write_manifest()
        return info

    def _all_entity_rows(self) -> list[tuple]:
        rows = self.relational.execute("SELECT * FROM entities ORDER BY id")
        return [tuple(row[column] for column in ENTITY_COLUMNS)
                for row in rows]

    def compact(self, min_events: int = DEFAULT_COMPACT_MIN_EVENTS) -> dict:
        """Merge adjacent undersized segments into bigger ones.

        Streaming seals produce many small segments; each one costs a
        scatter task (and a file handle) per pattern scan.  Compaction
        re-exports every run of adjacent segments smaller than
        ``min_events`` as one merged segment — the event-id space stays
        contiguous, stored data is untouched, and the replaced segment
        files are deleted when this store owns them.  Returns a report:
        ``{"merged_runs", "segments_before", "segments_after", "created"}``.
        """
        if not self._segmented:
            raise StorageError(
                "this store has no segments (layout='monolithic')")
        if self.read_only:
            raise StorageError(
                "store is read-only (opened from a snapshot); reopen "
                "writable (or 'repro compact' into a new snapshot)")
        before = len(self._segments)
        runs = plan_compaction(self._segments, min_events)
        created: list[str] = []
        for run in runs:
            assert self._segment_home is not None
            name = f"seg-{self._segment_seq:06d}"
            self._segment_seq += 1
            directory = self._segment_home / name
            directory.mkdir(parents=True, exist_ok=True)
            merged = merge_infos(run, name, directory)
            merged = self._write_segment_files(merged)
            index = self._segments.index(run[0])
            self._segments[index:index + len(run)] = [merged]
            created.append(name)
            for old in run:
                self._discard_segment_files(old)
        return {"merged_runs": len(runs), "segments_before": before,
                "segments_after": len(self._segments), "created": created}

    def segment_view(self) -> SegmentView | None:
        """Execution-time view of the partitioning, or ``None``.

        ``None`` means "no sealed segments" — the executor then runs each
        pattern as one query against the combined store, exactly the
        monolithic code path.
        """
        if not self._segmented or not self._segments:
            return None
        return SegmentView(
            sealed=tuple(self._segments),
            active_first_event_id=self._active_first_event_id,
            active_events=self._active_events)

    def segment_stats(self) -> dict:
        """Layout + per-segment summary (``GET /stats``, ``repro
        segments``).

        Each segment entry carries a ``payload_bytes`` breakdown of its
        on-disk files (``relational`` / ``graph`` / ``columnar``; 0 for
        a missing optional columnar payload).
        """
        stats: dict = {"layout": self.layout,
                       "sealed_segments": len(self._segments),
                       "sealed_events": sum(info.event_count
                                            for info in self._segments),
                       "active_events": self._active_events
                       if self._segmented else None}
        entries = []
        for info in self._segments:
            entry = info.as_manifest_entry()
            entry["payload_bytes"] = {
                "relational": _file_size(info.sqlite_path),
                "graph": _file_size(info.graph_path),
                "columnar": _file_size(info.columnar_path),
            }
            entries.append(entry)
        stats["segments"] = entries
        return stats

    @property
    def pending_appends(self) -> int:
        """Events buffered in open merge runs (not yet queryable)."""
        return self._stream.open_runs if self._stream is not None else 0

    @property
    def max_event_id(self) -> int:
        """Highest event id stored so far (0 on an empty store)."""
        return self.relational.id_state()[2] - 1

    def _ensure_stream(self) -> _BuildBatches:
        if self._stream is None:
            entity_ids, next_entity_id, next_event_id = \
                self.relational.id_state()
            graph_next = self.graph.graph.next_node_id
            if graph_next != next_entity_id:
                raise StorageError(
                    f"backend id spaces diverged: relational expects next "
                    f"entity id {next_entity_id}, graph expects "
                    f"{graph_next}; cannot append")
            self._stream = _BuildBatches(
                self.merge_threshold, entity_ids=entity_ids,
                next_entity_id=next_entity_id, next_event_id=next_event_id)
        return self._stream

    def _store_stream_delta(self, stream: _BuildBatches, input_count: int,
                            seconds: dict[str, float]) -> IngestStats:
        entity_rows, event_columns, nodes, edges, reduced = stream.drain()
        stored_events = len(event_columns)

        relational_start = time.perf_counter()
        statements = 0
        if entity_rows or stored_events:
            statements = self.relational.append_rows(
                entity_rows, event_columns.row_tuples())
        self.relational.adopt_entity_ids(
            stream.entity_ids, stream.next_event_id,
            next_entity_id=stream.next_entity_id)
        relational_seconds = time.perf_counter() - relational_start

        graph_start = time.perf_counter()
        if nodes or edges:
            self.graph.append_prepared(nodes, edges)
        graph_seconds = time.perf_counter() - graph_start

        self._track_active_rows(event_columns)
        if self.retain_events:
            self._events.extend(reduced)
        if entity_rows or stored_events:
            self.data_version += 1
        if self.reduce:
            self.last_reduction = stream.reduction_stats
        seconds = dict(seconds)
        seconds["relational"] = relational_seconds
        seconds["graph"] = graph_seconds
        stats = IngestStats(
            stored_events, input_events=input_count,
            entities=len(entity_rows), relational_batches=statements,
            seconds=seconds, strategy="append").observe()
        self.last_ingest = stats
        return stats

    # ------------------------------------------------------------------
    # batched fast path: fused streaming reduction + single build pass
    # ------------------------------------------------------------------
    def _load_batched(self, events: Iterable[SystemEvent]) -> IngestStats:
        """Sort, run the fused build pass, then bulk-load both backends.

        The fused pass (see :class:`_BuildBatches`) produces the relational
        row batches and graph node/edge batches in one scan; the relational
        side then loads with multi-row inserts under a deferred index
        rebuild and the graph side with ``add_nodes_bulk`` /
        ``add_edges_bulk``.  Stage timings: ``reduce`` is the input ordering
        (sort), ``build`` the fused pass, then ``relational`` and ``graph``
        the bulk inserts.
        """
        reduce_start = time.perf_counter()
        event_list = list(events)
        input_count = len(event_list)
        do_reduce = self.reduce
        if do_reduce:
            event_list.sort(key=attrgetter("start_time", "event_id"))
        reduce_seconds = time.perf_counter() - reduce_start

        # The load allocates hundreds of thousands of long-lived tuples and
        # dictionaries; pausing the cyclic collector avoids repeated full
        # generation scans mid-load (nothing built here contains cycles).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            build_start = time.perf_counter()
            batches = _BuildBatches(self.merge_threshold)
            if do_reduce:
                batches.consume_reducing(event_list)
                batches.flush_runs()
                self.last_reduction = batches.reduction_stats
            else:
                batches.consume(event_list)
            build_seconds = time.perf_counter() - build_start

            relational_start = time.perf_counter()
            statements = self.relational.reload_rows(
                batches.entity_rows, batches.event_columns.row_tuples())
            self.relational.adopt_entity_ids(
                batches.entity_ids, batches.next_event_id,
                next_entity_id=batches.next_entity_id)
            relational_seconds = time.perf_counter() - relational_start

            graph_start = time.perf_counter()
            self.graph.load_prepared(batches.nodes, batches.edges)
            graph_seconds = time.perf_counter() - graph_start
        finally:
            if gc_was_enabled:
                gc.enable()

        self._track_active_rows(batches.event_columns)
        self._events = batches.reduced if self.retain_events else []
        return IngestStats(
            len(batches.reduced), input_events=input_count,
            entities=len(batches.entity_rows),
            relational_batches=statements,
            seconds={"reduce": reduce_seconds, "build": build_seconds,
                     "relational": relational_seconds,
                     "graph": graph_seconds},
            strategy="batched")

    # ------------------------------------------------------------------
    # rowwise reference path (the pre-batching loader)
    # ------------------------------------------------------------------
    def _load_rowwise(self, events: Iterable[SystemEvent]) -> IngestStats:
        reduce_start = time.perf_counter()
        event_list = list(events)
        input_count = len(event_list)
        if self.reduce:
            event_list, stats = reduce_events(event_list,
                                              self.merge_threshold)
            self.last_reduction = stats
        reduce_seconds = time.perf_counter() - reduce_start

        relational_start = time.perf_counter()
        self.relational.clear()
        self.relational.load_events_rowwise(event_list)
        relational_seconds = time.perf_counter() - relational_start

        graph_start = time.perf_counter()
        self.graph.load_events(event_list, itemwise=True)
        graph_seconds = time.perf_counter() - graph_start

        self._track_active_bounds(
            ((event.start_time, event.end_time) for event in event_list),
            len(event_list))
        # Rowwise rows never flow through the columnar builder; sealing
        # this data must fall back to the SQLite-derived payload writer.
        self._active_columns = None
        self._events = event_list if self.retain_events else []
        entities = self.relational.count_entities()
        # One INSERT per entity plus one executemany for the events.
        statements = entities + (1 if event_list else 0)
        return IngestStats(
            len(event_list), input_events=input_count, entities=entities,
            relational_batches=statements,
            seconds={"reduce": reduce_seconds, "build": 0.0,
                     "relational": relational_seconds,
                     "graph": graph_seconds},
            strategy="rowwise")

    def events(self) -> list[SystemEvent]:
        """Return the (reduced) events currently stored.

        Empty when the store was built with ``retain_events=False`` or
        opened from a snapshot (the query backends still hold the data).
        """
        return list(self._events)

    def execute_sql(self, sql: str, params=()) -> list[dict]:
        """Run SQL against the relational backend."""
        return self.relational.execute(sql, params)

    def execute_cypher(self, cypher: str) -> list[dict]:
        """Run mini-Cypher against the graph backend."""
        return self.graph.execute(cypher)

    def entity_by_ids(self, entity_ids) -> dict[int, dict]:
        """Batch-fetch entity rows by id from the relational backend.

        Both backends are loaded from the same (reduced) event stream and
        register entities in identical order, so relational entity ids and
        graph node ids refer to the same entities; callers may use either id
        source.  Callers that also need the issued-statement count use
        :meth:`RelationalStore.entity_by_ids` directly.
        """
        rows_by_id, _statements = self.relational.entity_by_ids(entity_ids)
        return rows_by_id

    # ------------------------------------------------------------------
    # persistence: snapshot save / restore
    # ------------------------------------------------------------------
    @property
    def read_only(self) -> bool:
        """True when the store was opened from a snapshot (queries only)."""
        return self.relational.read_only

    def save(self, path: str | Path) -> dict:
        """Persist both backends into a snapshot directory; returns the
        manifest.

        The directory holds the relational database
        (:data:`SNAPSHOT_RELATIONAL`, SQLite in WAL mode via the backup
        API), the property graph (:data:`SNAPSHOT_GRAPH`, the versioned
        binary format of :meth:`PropertyGraph.save`), and a JSON manifest
        recording the format version and the entity/event counts
        :meth:`open` verifies on restore.

        On a writable store the append stream is sealed first
        (:meth:`flush_appends`), so events buffered in open merge runs are
        part of the snapshot; on a segmented store that seal also closes
        the active write segment, and every sealed segment is copied into
        ``segments/<name>/`` with its entry recorded in the manifest (the
        v2 multi-segment format).  Monolithic stores write the same
        manifest without a ``segments`` list.
        """
        if not self.read_only:
            self.flush_appends()
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        self.relational.save_to(directory / SNAPSHOT_RELATIONAL)
        self.graph.graph.save(directory / SNAPSHOT_GRAPH)
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "created_at": time.time(),
            "layout": self.layout,
            "reduce": self.reduce,
            "merge_threshold": self.merge_threshold,
            "data_version": self.data_version,
            "relational_entities": self.relational.count_entities(),
            "relational_events": self.relational.count_events(),
            "graph_nodes": self.graph.num_nodes(),
            "graph_edges": self.graph.num_edges(),
        }
        if self._segmented:
            manifest["segments"] = self._save_segments(directory)
        (directory / SNAPSHOT_MANIFEST).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return manifest

    def _save_segments(self, directory: Path) -> list[dict]:
        """Copy every sealed segment into the snapshot; returns entries."""
        segments_dir = directory / SNAPSHOT_SEGMENTS_DIR
        segments_dir.mkdir(parents=True, exist_ok=True)
        keep = {info.name for info in self._segments}
        for stale in segments_dir.iterdir():
            # A resave over an existing snapshot must not leave segment
            # directories the new manifest no longer references.
            if stale.is_dir() and stale.name not in keep:
                shutil.rmtree(stale, ignore_errors=True)
        entries = []
        for info in self._segments:
            target = segments_dir / info.name
            target.mkdir(parents=True, exist_ok=True)
            files = [(info.sqlite_path, SEGMENT_RELATIONAL),
                     (info.graph_path, SEGMENT_GRAPH)]
            if info.has_columnar():
                # Optional: segments restored from v2 snapshots have no
                # columnar payload; re-saving them keeps them that way.
                files.append((info.columnar_path, SEGMENT_COLUMNAR))
            for source, filename in files:
                destination = target / filename
                if Path(source).resolve() != destination.resolve():
                    shutil.copyfile(source, destination)
            entry = info.as_manifest_entry()
            (target / SEGMENT_MANIFEST).write_text(
                json.dumps(entry, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
            entries.append(entry)
        return entries

    @classmethod
    def open(cls, path: str | Path, read_only: bool = True,
             relational_path: str | Path | None = None) -> "DualStore":
        """Open a snapshot directory as a dual store.

        With ``read_only=True`` (the default) the relational backend
        attaches to the snapshot's SQLite file with read-only connections
        (one per querying thread); the returned store serves queries only —
        :meth:`load_events` raises :class:`StorageError`.  With
        ``read_only=False`` the relational contents are restored into a
        fresh *writable* store (at ``relational_path``, or in memory) via
        the SQLite backup API and the entity/event id bookkeeping is rebuilt
        from the stored rows, so :meth:`append_events` continues exactly
        where the snapshot left off — the checkpoint-resume path of the
        streaming subsystem.  The snapshot directory itself is never
        mutated by a writable reopen.

        In both modes the graph backend rebuilds from the binary snapshot,
        the stored counts are checked against the manifest, and
        ``data_version`` resumes from the value recorded at save time (1
        for snapshots written before the field existed).  Note
        :meth:`events` is empty because raw events are not part of the
        snapshot (both query backends are).

        Raises:
            StorageError: when the directory is not a snapshot, was written
                by a newer format version, or its contents do not match the
                manifest.
        """
        directory = Path(path)
        manifest_path = directory / SNAPSHOT_MANIFEST
        if not manifest_path.is_file():
            raise StorageError(f"not a dual-store snapshot (no "
                               f"{SNAPSHOT_MANIFEST}): {directory}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"corrupt snapshot manifest: {manifest_path}") from exc
        version = manifest.get("format_version")
        if not isinstance(version, int) or version < 1 or \
                version > SNAPSHOT_FORMAT_VERSION:
            raise StorageError(
                f"unsupported snapshot format version {version!r} "
                f"(this build reads <= {SNAPSHOT_FORMAT_VERSION})")
        store = cls.__new__(cls)
        if read_only:
            store.relational = RelationalStore(
                directory / SNAPSHOT_RELATIONAL, read_only=True)
        else:
            store.relational = RelationalStore.from_snapshot(
                directory / SNAPSHOT_RELATIONAL, relational_path)
        try:
            store.graph = GraphStore()
            store.graph.graph = PropertyGraph.load(
                directory / SNAPSHOT_GRAPH)
            store.reduce = bool(manifest.get("reduce", True))
            store.merge_threshold = float(
                manifest.get("merge_threshold", DEFAULT_MERGE_THRESHOLD))
            store.last_reduction = None
            store.last_ingest = None
            # Raw events are not part of a snapshot; appends to a writable
            # reopen must not start accumulating a partial copy either.
            store.retain_events = False
            store._events = []
            store._stream = None
            data_version = manifest.get("data_version")
            store.data_version = data_version \
                if isinstance(data_version, int) and data_version > 0 else 1
            for recorded, actual in (
                    ("relational_entities",
                     store.relational.count_entities()),
                    ("relational_events", store.relational.count_events()),
                    ("graph_nodes", store.graph.num_nodes()),
                    ("graph_edges", store.graph.num_edges())):
                expected = manifest.get(recorded)
                if expected is not None and expected != actual:
                    raise StorageError(
                        f"snapshot {directory} is corrupt: {recorded} is "
                        f"{actual}, manifest says {expected}")
            store._restore_segments(directory, manifest, read_only)
        except BaseException:
            # Don't leak the already-opened relational connection when the
            # graph half of the snapshot fails to restore.
            store.relational.close()
            raise
        return store

    def _restore_segments(self, directory: Path, manifest: dict,
                          read_only: bool) -> None:
        """Attach a v2 snapshot's segments to this freshly opened store.

        v1 manifests (no ``segments``, no ``layout``) leave the store
        monolithic — the backward-compatible path.  Read-only opens
        reference the snapshot's segment files in place; writable reopens
        copy them into a private temporary home first, so a later
        checkpoint swap (which replaces the snapshot directory) can never
        delete files a live store still scans.
        """
        entries = manifest.get("segments") or []
        segmented = bool(entries) or \
            manifest.get("layout") == "segmented"
        self.layout = "segmented" if segmented else "monolithic"
        self._init_segment_state(segmented=False)
        if not segmented:
            return
        self._segmented = True
        snapshot_segments = directory / SNAPSHOT_SEGMENTS_DIR
        if read_only:
            self._segment_home = snapshot_segments
        else:
            self._segment_home = Path(
                tempfile.mkdtemp(prefix="repro-segments-"))
            self._owns_segment_home = True
        infos: list[SegmentInfo] = []
        for entry in entries:
            name = entry.get("name")
            if not isinstance(name, str) or not name:
                raise StorageError(
                    f"snapshot {directory} has a segment entry without a "
                    f"name")
            source = snapshot_segments / name
            info = SegmentInfo.from_manifest_entry(entry, source)
            info.verify_files()
            if not read_only:
                assert self._segment_home is not None
                target = self._segment_home / name
                shutil.copytree(source, target)
                info = SegmentInfo.from_manifest_entry(entry, target)
            infos.append(info)
            try:
                sequence = int(name.rsplit("-", 1)[-1])
            except ValueError:
                sequence = len(infos)
            self._segment_seq = max(self._segment_seq, sequence + 1)
        self._segments = infos
        covered = sum(info.event_count for info in infos)
        stored = self.relational.count_events()
        if covered != stored:
            raise StorageError(
                f"snapshot {directory} is corrupt: segments cover "
                f"{covered} events, store holds {stored}")
        next_event_id = infos[-1].last_event_id + 1 if infos else 1
        next_entity_id = max(
            [info.last_new_entity_id + 1 for info in infos
             if info.new_entity_count] or [1])
        self._reset_active_tracking(first_event_id=next_event_id,
                                    first_entity_id=next_entity_id)

    def statistics(self) -> dict:
        """Return entity/event counts per backend plus reduction stats."""
        stats = {
            "relational_entities": self.relational.count_entities(),
            "relational_events": self.relational.count_events(),
            "graph_nodes": self.graph.num_nodes(),
            "graph_edges": self.graph.num_edges(),
        }
        if self._segmented:
            stats["sealed_segments"] = len(self._segments)
        if self.last_reduction is not None:
            stats["reduction_ratio"] = self.last_reduction.reduction_ratio
            stats["events_removed"] = self.last_reduction.events_removed
        return stats

    def close(self) -> None:
        self.relational.close()
        if self._owns_segment_home and self._segment_home is not None:
            shutil.rmtree(self._segment_home, ignore_errors=True)
            self._owns_segment_home = False

    def __enter__(self) -> "DualStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["DualStore", "IngestStats", "LOAD_STRATEGIES", "STORE_LAYOUTS",
           "DEFAULT_COMPACT_MIN_EVENTS", "SNAPSHOT_FORMAT_VERSION",
           "SNAPSHOT_MANIFEST", "SNAPSHOT_RELATIONAL", "SNAPSHOT_GRAPH",
           "SNAPSHOT_SEGMENTS_DIR"]
