"""Dual storage facade: replicated relational + graph backends.

Section III-B: data is replicated across PostgreSQL and Neo4j so that event
patterns can run as SQL and variable-length path patterns can run as Cypher.
The :class:`DualStore` mirrors that arrangement — one load call populates both
backends (optionally applying data reduction first) and exposes both query
interfaces.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..audit.entities import SystemEvent
from ..audit.reduction import DEFAULT_MERGE_THRESHOLD, ReductionStats, \
    reduce_events
from .graph import GraphStore
from .relational import RelationalStore


class DualStore:
    """Replicated storage across the relational and graph backends."""

    def __init__(self, relational_path: str | Path | None = None,
                 reduce: bool = True,
                 merge_threshold: float = DEFAULT_MERGE_THRESHOLD) -> None:
        """Create the dual store.

        Args:
            relational_path: optional on-disk path for the relational store.
            reduce: apply the Section III-B data reduction before storing.
            merge_threshold: merge-gap threshold in seconds.
        """
        self.relational = RelationalStore(relational_path)
        self.graph = GraphStore()
        self.reduce = reduce
        self.merge_threshold = merge_threshold
        self.last_reduction: ReductionStats | None = None
        self._events: list[SystemEvent] = []

    def load_events(self, events: Iterable[SystemEvent]) -> int:
        """Load events into both backends; returns stored event count.

        Loading *replaces* the stored data: the graph backend rebuilds from
        scratch on every load, so the relational backend is cleared first to
        keep both id spaces aligned (relational entity id == graph node id,
        the invariant candidate pushdown relies on).  Without the clear, a
        second load would leave the relational store counting entity ids
        past the rebuilt graph's, and pushed-down id allowlists would
        silently select the wrong nodes.
        """
        event_list = list(events)
        if self.reduce:
            event_list, stats = reduce_events(event_list,
                                              self.merge_threshold)
            self.last_reduction = stats
        self._events = event_list
        self.relational.clear()
        self.relational.load_events(event_list)
        self.graph.load_events(event_list)
        return len(event_list)

    def events(self) -> list[SystemEvent]:
        """Return the (reduced) events currently stored."""
        return list(self._events)

    def execute_sql(self, sql: str, params=()) -> list[dict]:
        """Run SQL against the relational backend."""
        return self.relational.execute(sql, params)

    def execute_cypher(self, cypher: str) -> list[dict]:
        """Run mini-Cypher against the graph backend."""
        return self.graph.execute(cypher)

    def entity_by_ids(self, entity_ids) -> dict[int, dict]:
        """Batch-fetch entity rows by id from the relational backend.

        Both backends are loaded from the same (reduced) event stream and
        register entities in identical order, so relational entity ids and
        graph node ids refer to the same entities; callers may use either id
        source.  Callers that also need the issued-statement count use
        :meth:`RelationalStore.entity_by_ids` directly.
        """
        rows_by_id, _statements = self.relational.entity_by_ids(entity_ids)
        return rows_by_id

    def statistics(self) -> dict:
        """Return entity/event counts per backend plus reduction stats."""
        stats = {
            "relational_entities": self.relational.count_entities(),
            "relational_events": self.relational.count_events(),
            "graph_nodes": self.graph.num_nodes(),
            "graph_edges": self.graph.num_edges(),
        }
        if self.last_reduction is not None:
            stats["reduction_ratio"] = self.last_reduction.reduction_ratio
            stats["events_removed"] = self.last_reduction.events_removed
        return stats

    def close(self) -> None:
        self.relational.close()

    def __enter__(self) -> "DualStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["DualStore"]
