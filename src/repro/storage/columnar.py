"""Struct-packed columnar segment payloads (``events.col``).

Segment format v3 stores, alongside each sealed segment's
``relational.sqlite``, a column-major copy of the segment's event rows:
one contiguous machine-typed array per column (int64 ids and numeric
fields, float64 timestamps, uint32 interned-string codes), the entity
rows those events join against, and a shared interned string table.
The file is read back via :mod:`mmap`, so scatter-gather workers share
the OS page cache instead of each materializing Python row tuples from
SQLite, and every column is exposed zero-copy through
:class:`memoryview` casts (or :mod:`numpy` views when numpy is
importable).

Layout::

    magic "RPRCOL01" | u32 header_len | JSON header | pad to 8 |
    section payloads (each padded to 8 bytes)

The JSON header records the counts, the writer's byte order, and a
section table ``name -> [offset, nbytes, typecode]`` whose offsets are
relative to the start of the 8-aligned data area, so readers never
depend on the header's own size.

The fast writer is fed by :class:`EventColumns` — the column-major
output of the fused ingestion pass — so sealing a segment slices
arrays that already exist instead of re-reading exported rows.
:func:`write_columnar_from_sqlite` is the fallback writer for payloads
whose rows exist only in SQLite form (compaction merges, rowwise
loads).
"""

from __future__ import annotations

import json
import mmap
import sqlite3
import struct
import sys
from array import array
from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence

from ..errors import StorageError
from .relational.schema import ENTITY_COLUMNS, EVENT_COLUMNS

#: File magic of an ``events.col`` payload.
COLUMNAR_MAGIC = b"RPRCOL01"
#: Version of the columnar payload layout (independent of the snapshot
#: format version; bump when sections or typecodes change).
COLUMNAR_FORMAT_VERSION = 1
#: Sentinel for NULL in int64 entity columns (pid/srcport/dstport are
#: nullable INTEGER columns in the relational schema).
NULL_INT = -(2 ** 63)

#: Entity string columns, interned as uint32 codes (0 == NULL).
ENTITY_STRING_COLUMNS = ("type", "name", "path", "exename", "user", "grp",
                         "cmdline", "srcip", "dstip", "protocol")
#: Entity nullable-integer columns, stored as int64 with NULL_INT.
ENTITY_INT_COLUMNS = ("pid", "srcport", "dstport")
#: Event string columns (NOT NULL in the schema, still code 0 == NULL).
EVENT_STRING_COLUMNS = ("operation", "category", "host")

_ENTITY_INDEX = {name: index for index, name in enumerate(ENTITY_COLUMNS)}

_TYPECODE_SIZE = {"q": 8, "d": 8, "I": 4, "Q": 8}

_ASCII_LOWER = str.maketrans("ABCDEFGHIJKLMNOPQRSTUVWXYZ",
                             "abcdefghijklmnopqrstuvwxyz")


def ascii_lower(text: str) -> str:
    """ASCII-only lowercasing — SQLite's LIKE case-folding rule.

    ``str.lower`` folds the full Unicode range, which would disagree
    with SQLite (and thus with the row-at-a-time reference scan) on
    non-ASCII strings; only A-Z may fold.
    """
    return text.translate(_ASCII_LOWER)


def _align8(offset: int) -> int:
    return offset + (-offset) % 8


def _prefix_successor(prefix: str) -> Optional[str]:
    """Smallest string greater than every string with ``prefix``.

    Increments the last code point, dropping trailing U+10FFFF first;
    ``None`` means no upper bound exists (empty or all-max prefix).
    """
    while prefix:
        last = ord(prefix[-1])
        if last < 0x10FFFF:
            return prefix[:-1] + chr(last + 1)
        prefix = prefix[:-1]
    return None


class EventColumns:
    """Column-major event rows: the vectorized row builder's output.

    One Python list per relational event column, appended in id order.
    :meth:`row_tuples` zips the columns back into
    ``EVENT_COLUMNS``-ordered tuples for the SQLite insert path; the
    lists feed :func:`write_columnar` as-is when a segment seals, so
    the columnar payload costs one array pack per column instead of a
    second pass over exported rows.
    """

    __slots__ = ("ids", "subject_ids", "object_ids", "operations",
                 "categories", "start_times", "end_times", "durations",
                 "data_amounts", "failure_codes", "hosts")

    def __init__(self) -> None:
        self.ids: list[int] = []
        self.subject_ids: list[int] = []
        self.object_ids: list[int] = []
        self.operations: list[str] = []
        self.categories: list[str] = []
        self.start_times: list[float] = []
        self.end_times: list[float] = []
        self.durations: list[float] = []
        self.data_amounts: list[int] = []
        self.failure_codes: list[int] = []
        self.hosts: list[str] = []

    def append(self, event_id: int, subject_id: int, object_id: int,
               operation: str, category: str, start_time: float,
               end_time: float, duration: float, data_amount: int,
               failure_code: int, host: str) -> None:
        """Append one event row (``EVENT_COLUMNS`` order)."""
        self.ids.append(event_id)
        self.subject_ids.append(subject_id)
        self.object_ids.append(object_id)
        self.operations.append(operation)
        self.categories.append(category)
        self.start_times.append(start_time)
        self.end_times.append(end_time)
        self.durations.append(duration)
        self.data_amounts.append(data_amount)
        self.failure_codes.append(failure_code)
        self.hosts.append(host)

    def extend(self, other: "EventColumns") -> None:
        """Column-wise concatenation (C-speed ``list.extend`` per column)."""
        self.ids.extend(other.ids)
        self.subject_ids.extend(other.subject_ids)
        self.object_ids.extend(other.object_ids)
        self.operations.extend(other.operations)
        self.categories.extend(other.categories)
        self.start_times.extend(other.start_times)
        self.end_times.extend(other.end_times)
        self.durations.extend(other.durations)
        self.data_amounts.extend(other.data_amounts)
        self.failure_codes.extend(other.failure_codes)
        self.hosts.extend(other.hosts)

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def first_id(self) -> Optional[int]:
        """Id of the first buffered event (``None`` when empty)."""
        return self.ids[0] if self.ids else None

    def time_pairs(self) -> Iterable[tuple[float, float]]:
        """``(start_time, end_time)`` pairs, for bounds tracking."""
        return zip(self.start_times, self.end_times)

    def row_tuples(self) -> list[tuple]:
        """Rows as ``EVENT_COLUMNS``-ordered tuples (the insert shape)."""
        return list(zip(self.ids, self.subject_ids, self.object_ids,
                        self.operations, self.categories, self.start_times,
                        self.end_times, self.durations, self.data_amounts,
                        self.failure_codes, self.hosts))


class _StringTable:
    """Interner assigning codes from 1 (0 is reserved for NULL)."""

    def __init__(self) -> None:
        self._codes: dict[str, int] = {}
        self.strings: list[str] = []

    def code(self, value: Optional[str]) -> int:
        if value is None:
            return 0
        code = self._codes.get(value)
        if code is None:
            self.strings.append(value)
            code = self._codes[value] = len(self.strings)
        return code

    @classmethod
    def sorted_from(cls, values: Iterable[Optional[str]]) -> "_StringTable":
        """Table whose codes follow ``(ascii_lower, raw)`` string order.

        A sorted table lets readers binary-search a contiguous code
        range for a case-insensitive prefix instead of testing every
        string.  Code assignment order is private to the payload —
        readers always dereference codes through the table — so
        sorting changes no query-visible behavior.
        """
        table = cls()
        present = {value for value in values if value is not None}
        for value in sorted(present, key=lambda text: (ascii_lower(text),
                                                       text)):
            table.code(value)
        return table


def write_columnar(path: str | Path, events: EventColumns,
                   entity_rows: Sequence[tuple]) -> int:
    """Write an ``events.col`` payload; returns the bytes written.

    ``entity_rows`` are ``ENTITY_COLUMNS``-ordered tuples; they are
    sorted by id before packing (readers binary-search non-dense id
    ranges).  A superset of the entities the events reference is fine —
    events drive the scan, unreferenced entity rows never match.
    """
    rows = sorted(entity_rows, key=lambda row: row[0])
    values: set = set()
    values.update(events.operations)
    values.update(events.categories)
    values.update(events.hosts)
    for name in ENTITY_STRING_COLUMNS:
        index = _ENTITY_INDEX[name]
        values.update(row[index] for row in rows)
    table = _StringTable.sorted_from(values)
    sections: list[tuple[str, str, bytes]] = [
        ("event.id", "q", array("q", events.ids).tobytes()),
        ("event.subject_id", "q", array("q", events.subject_ids).tobytes()),
        ("event.object_id", "q", array("q", events.object_ids).tobytes()),
        ("event.operation", "I",
         array("I", map(table.code, events.operations)).tobytes()),
        ("event.category", "I",
         array("I", map(table.code, events.categories)).tobytes()),
        ("event.start_time", "d", array("d", events.start_times).tobytes()),
        ("event.end_time", "d", array("d", events.end_times).tobytes()),
        ("event.duration", "d", array("d", events.durations).tobytes()),
        ("event.data_amount", "q",
         array("q", events.data_amounts).tobytes()),
        ("event.failure_code", "q",
         array("q", events.failure_codes).tobytes()),
        ("event.host", "I", array("I", map(table.code,
                                           events.hosts)).tobytes()),
    ]
    sections.append(("entity.id", "q",
                     array("q", (row[0] for row in rows)).tobytes()))
    for name in ENTITY_STRING_COLUMNS:
        index = _ENTITY_INDEX[name]
        sections.append((f"entity.{name}", "I",
                         array("I", (table.code(row[index])
                                     for row in rows)).tobytes()))
    for name in ENTITY_INT_COLUMNS:
        index = _ENTITY_INDEX[name]
        sections.append((f"entity.{name}", "q",
                         array("q", (NULL_INT if row[index] is None
                                     else row[index]
                                     for row in rows)).tobytes()))
    blob = bytearray()
    offsets = array("Q", [0])
    for text in table.strings:
        blob += text.encode("utf-8")
        offsets.append(len(blob))
    sections.append(("strings.offsets", "Q", offsets.tobytes()))
    sections.append(("strings.blob", "", bytes(blob)))

    section_table: dict[str, list] = {}
    offset = 0
    for name, typecode, payload in sections:
        section_table[name] = [offset, len(payload), typecode]
        offset = _align8(offset + len(payload))
    header = {
        "version": COLUMNAR_FORMAT_VERSION,
        "byteorder": sys.byteorder,
        "event_count": len(events),
        "entity_count": len(rows),
        "string_count": len(table.strings),
        # Additive key: older readers ignore it, newer readers use it
        # to enable binary-searched prefix ranges (ascii_lower, raw).
        "string_order": "ascii_ci",
        "sections": section_table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    target = Path(path)
    with open(target, "wb") as handle:
        handle.write(COLUMNAR_MAGIC)
        handle.write(struct.pack("<I", len(header_bytes)))
        handle.write(header_bytes)
        position = len(COLUMNAR_MAGIC) + 4 + len(header_bytes)
        handle.write(b"\0" * (_align8(position) - position))
        for _name, _typecode, payload in sections:
            handle.write(payload)
            handle.write(b"\0" * (_align8(len(payload)) - len(payload)))
    return target.stat().st_size


def write_columnar_from_sqlite(sqlite_path: str | Path,
                               col_path: str | Path) -> int:
    """Build an ``events.col`` payload from a segment's SQLite file.

    The fallback writer for rows that exist only in SQLite form —
    compaction merges and rowwise loads, where no column buffer covers
    the segment's id range.  Reads the exported file just written, so
    it is always available wherever the fast path is not.
    """
    uri = Path(sqlite_path).resolve().as_uri() + "?mode=ro"
    try:
        connection = sqlite3.connect(uri, uri=True)
    except sqlite3.Error as exc:
        raise StorageError(f"cannot open segment {sqlite_path} "
                           f"read-only: {exc}") from exc
    try:
        connection.row_factory = sqlite3.Row
        events = EventColumns()
        event_sql = ("SELECT " + ", ".join(EVENT_COLUMNS) +
                     " FROM events ORDER BY id")
        for row in connection.execute(event_sql):
            events.append(*tuple(row))
        entity_rows = [tuple(row[name] for name in ENTITY_COLUMNS)
                       for row in connection.execute(
                           "SELECT * FROM entities ORDER BY id")]
    except sqlite3.Error as exc:
        raise StorageError(f"cannot read segment rows from "
                           f"{sqlite_path}: {exc}") from exc
    finally:
        connection.close()
    return write_columnar(col_path, events, entity_rows)


class ColumnarSegment:
    """Memory-mapped reader over one ``events.col`` payload.

    Columns are materialized lazily as zero-copy :class:`memoryview`
    casts over the mapping (:meth:`column`) or numpy views
    (:meth:`np_column`); the string table is decoded eagerly at open
    (codes are dense and small).  Instances are immutable and safe to
    share across reader threads.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise StorageError(f"cannot open columnar payload "
                               f"{self.path}: {exc}") from exc
        try:
            self._mm = mmap.mmap(self._file.fileno(), 0,
                                 access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            self._file.close()
            raise StorageError(f"cannot map columnar payload "
                               f"{self.path}: {exc}") from exc
        try:
            self._parse_header()
        except BaseException:
            self.close()
            raise

    def _parse_header(self) -> None:
        mm = self._mm
        if bytes(mm[:8]) != COLUMNAR_MAGIC:
            raise StorageError(f"not a columnar payload: {self.path}")
        (header_len,) = struct.unpack_from("<I", mm, 8)
        try:
            header = json.loads(bytes(mm[12:12 + header_len]
                                      ).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise StorageError(
                f"corrupt columnar header: {self.path}") from exc
        version = header.get("version")
        if not isinstance(version, int) or version < 1 or \
                version > COLUMNAR_FORMAT_VERSION:
            raise StorageError(
                f"unsupported columnar payload version {version!r} "
                f"(this build reads <= {COLUMNAR_FORMAT_VERSION})")
        if header.get("byteorder") != sys.byteorder:
            raise StorageError(
                f"columnar payload {self.path} was written on a "
                f"{header.get('byteorder')}-endian host; this host is "
                f"{sys.byteorder}-endian")
        self.event_count = int(header["event_count"])
        self.entity_count = int(header["entity_count"])
        self._sections: dict[str, list] = header["sections"]
        self._data_start = _align8(12 + header_len)
        self._views: dict[Any, Any] = {}
        offsets = self.column("strings.offsets")
        raw = self.column("strings.blob")
        strings: list[Optional[str]] = [None]
        for index in range(len(offsets) - 1):
            strings.append(bytes(raw[offsets[index]:offsets[index + 1]]
                                 ).decode("utf-8"))
        #: Interned strings by code; index 0 is the NULL sentinel.
        self.strings = strings
        self._codes = {text: code for code, text in enumerate(strings)
                       if code}
        #: True when codes follow ``(ascii_lower, raw)`` string order,
        #: enabling binary-searched prefix code ranges.  Payloads from
        #: older writers simply lack the key and scan linearly.
        self.sorted_strings = header.get("string_order") == "ascii_ci"
        self._sort_keys: Optional[list[str]] = None
        ids = self.column("entity.id")
        #: Entity ids are 1..N in builder-written payloads, letting
        #: ``entity_index`` subtract instead of hashing.
        self.dense_entities = self.entity_count == 0 or (
            ids[0] == 1 and ids[-1] == self.entity_count)
        self._entity_map: Optional[dict[int, int]] = None

    def _section(self, name: str) -> tuple[int, int, str]:
        try:
            offset, nbytes, typecode = self._sections[name]
        except KeyError as exc:
            raise StorageError(f"columnar payload {self.path} has no "
                               f"section {name!r}") from exc
        return self._data_start + int(offset), int(nbytes), typecode

    def column(self, name: str) -> Any:
        """Zero-copy view of one section (memoryview, cast per type)."""
        view = self._views.get(name)
        if view is None:
            start, nbytes, typecode = self._section(name)
            raw = memoryview(self._mm)[start:start + nbytes]
            view = raw.cast(typecode) if typecode else raw
            self._views[name] = view
        return view

    def np_column(self, name: str, np: Any) -> Any:
        """Zero-copy numpy view of one section (``np`` = numpy module)."""
        key = ("np", name)
        view = self._views.get(key)
        if view is None:
            start, nbytes, typecode = self._section(name)
            dtype = np.dtype({"q": np.int64, "d": np.float64,
                              "I": np.uint32, "Q": np.uint64}[typecode])
            view = np.frombuffer(self._mm, dtype=dtype,
                                 count=nbytes // dtype.itemsize,
                                 offset=start)
            self._views[key] = view
        return view

    def code_of(self, value: str) -> Optional[int]:
        """Interned code of ``value``, or ``None`` when absent."""
        return self._codes.get(value)

    def prefix_code_range(self, prefix: str) -> Optional[tuple[int, int]]:
        """Half-open code range ``[lo, hi)`` of strings that start with
        ``prefix`` (ASCII-case-insensitively), or ``None`` when the
        payload's table is not sorted.

        Valid because codes follow ``(ascii_lower, raw)`` order: every
        string whose folded form starts with the folded prefix sorts
        inside ``[folded, successor(folded))``, a contiguous key range.
        """
        if not self.sorted_strings:
            return None
        keys = self._sort_keys
        if keys is None:
            keys = self._sort_keys = [ascii_lower(text)
                                      for text in self.strings[1:]]
        target = ascii_lower(prefix)
        lo = bisect_left(keys, target)
        successor = _prefix_successor(target)
        hi = len(keys) if successor is None else bisect_left(keys, successor)
        # +1 re-biases list positions (NULL stripped) back to codes.
        return lo + 1, hi + 1

    def entity_index(self, entity_id: int) -> int:
        """Row index of an entity id (dense fast path, else a map)."""
        if self.dense_entities:
            return entity_id - 1
        mapping = self._entity_map
        if mapping is None:
            ids = self.column("entity.id")
            mapping = self._entity_map = {
                ids[index]: index for index in range(len(ids))}
        try:
            return mapping[entity_id]
        except KeyError as exc:
            raise StorageError(
                f"columnar payload {self.path} has no entity row for "
                f"id {entity_id}") from exc

    def close(self) -> None:
        """Release the mapping (idempotent; GC-safe for live views)."""
        self._views = {}
        try:
            self._mm.close()
        except (BufferError, ValueError):  # pragma: no cover - live views
            pass
        self._file.close()


__all__ = ["COLUMNAR_FORMAT_VERSION", "COLUMNAR_MAGIC", "NULL_INT",
           "ENTITY_STRING_COLUMNS", "ENTITY_INT_COLUMNS",
           "EVENT_STRING_COLUMNS", "EventColumns", "ColumnarSegment",
           "ascii_lower", "write_columnar", "write_columnar_from_sqlite"]
