"""Storage substrate: relational (SQL) and graph (Cypher) backends."""

from .dualstore import STORE_LAYOUTS, DualStore, IngestStats
from .graph import GraphStore, PropertyGraph, graph_from_events, parse_cypher
from .relational import RelationalStore
from .segments import SegmentInfo, SegmentView

__all__ = [
    "DualStore",
    "IngestStats",
    "STORE_LAYOUTS",
    "GraphStore",
    "PropertyGraph",
    "graph_from_events",
    "parse_cypher",
    "RelationalStore",
    "SegmentInfo",
    "SegmentView",
]
