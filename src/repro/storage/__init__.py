"""Storage substrate: relational (SQL) and graph (Cypher) backends."""

from .dualstore import DualStore, IngestStats
from .graph import GraphStore, PropertyGraph, graph_from_events, parse_cypher
from .relational import RelationalStore

__all__ = [
    "DualStore",
    "IngestStats",
    "GraphStore",
    "PropertyGraph",
    "graph_from_events",
    "parse_cypher",
    "RelationalStore",
]
