"""Storage substrate: relational (SQL) and graph (Cypher) backends."""

from .dualstore import DualStore
from .graph import GraphStore, PropertyGraph, graph_from_events, parse_cypher
from .relational import RelationalStore

__all__ = [
    "DualStore",
    "GraphStore",
    "PropertyGraph",
    "graph_from_events",
    "parse_cypher",
    "RelationalStore",
]
