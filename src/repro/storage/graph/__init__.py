"""Graph storage backend (property graph + mini-Cypher, Neo4j stand-in)."""

from .cypher_ast import (BooleanExpr, Comparison, CypherQuery, Literal,
                         NodePattern, NotExpr, PathPattern, PropertyRef,
                         RelationshipPattern, ReturnItem)
from .cypher_eval import CypherEvaluator, evaluate_where
from .cypher_parser import CypherParser, parse_cypher, tokenize
from .graphdb import (GraphEdge, GraphNode, PropertyGraph, graph_from_events)


class GraphStore:
    """Neo4j-style store: a property graph plus a Cypher query interface."""

    def __init__(self) -> None:
        self.graph = PropertyGraph()

    def load_events(self, events) -> int:
        """Load a system event stream into the property graph."""
        self.graph = graph_from_events(events)
        return self.graph.num_edges()

    def execute(self, cypher: str) -> list[dict]:
        """Parse and evaluate a mini-Cypher query, returning result rows."""
        query = parse_cypher(cypher)
        return CypherEvaluator(self.graph).execute(query)

    def num_nodes(self) -> int:
        return self.graph.num_nodes()

    def num_edges(self) -> int:
        return self.graph.num_edges()

    def clear(self) -> None:
        self.graph.clear()


__all__ = [
    "BooleanExpr",
    "Comparison",
    "CypherQuery",
    "Literal",
    "NodePattern",
    "NotExpr",
    "PathPattern",
    "PropertyRef",
    "RelationshipPattern",
    "ReturnItem",
    "CypherEvaluator",
    "evaluate_where",
    "CypherParser",
    "parse_cypher",
    "tokenize",
    "GraphEdge",
    "GraphNode",
    "PropertyGraph",
    "graph_from_events",
    "GraphStore",
]
