"""Graph storage backend (property graph + mini-Cypher, Neo4j stand-in)."""

from .cypher_ast import (BooleanExpr, Comparison, CypherQuery, Literal,
                         NodePattern, NotExpr, PathPattern, PropertyRef,
                         RelationshipPattern, ReturnItem)
from .cypher_eval import CypherEvaluator, evaluate_where
from .cypher_parser import CypherParser, parse_cypher, tokenize
from .graphdb import (GraphEdge, GraphNode, PropertyGraph, graph_from_events,
                      graph_from_events_itemwise)


class GraphStore:
    """Neo4j-style store: a property graph plus a Cypher query interface."""

    def __init__(self) -> None:
        self.graph = PropertyGraph()

    def load_events(self, events, itemwise: bool = False) -> int:
        """Load a system event stream into the property graph.

        ``itemwise=True`` uses the retained one-call-per-item reference
        construction instead of the bulk insert path.
        """
        builder = graph_from_events_itemwise if itemwise else \
            graph_from_events
        self.graph = builder(events)
        return self.graph.num_edges()

    def load_prepared(self, nodes, edges) -> int:
        """Rebuild the graph from pre-flattened node/edge batches.

        ``nodes`` are ``(label, properties)`` pairs and ``edges`` are
        ``(source, target, label, properties)`` tuples whose endpoints refer
        to the 1-based position of the node in ``nodes`` — the contract of
        the dual store's single-pass loader.  Returns the edge count.
        """
        graph = PropertyGraph()
        graph.add_nodes_bulk(nodes)
        graph.add_edges_bulk(edges)
        self.graph = graph
        return graph.num_edges()

    def append_prepared(self, nodes, edges) -> int:
        """Append pre-flattened node/edge batches to the *existing* graph.

        The incremental counterpart of :meth:`load_prepared`: nodes get the
        next free ids (continuing the stored id space) and edge endpoints
        are absolute node ids, so a delta built against the store's current
        id assignment lands without a rebuild.  Returns the appended edge
        count.
        """
        self.graph.add_nodes_bulk(nodes)
        self.graph.add_edges_bulk(edges)
        return len(edges)

    def execute(self, cypher: str) -> list[dict]:
        """Parse and evaluate a mini-Cypher query, returning result rows."""
        query = parse_cypher(cypher)
        return CypherEvaluator(self.graph).execute(query)

    def num_nodes(self) -> int:
        return self.graph.num_nodes()

    def num_edges(self) -> int:
        return self.graph.num_edges()

    def clear(self) -> None:
        self.graph.clear()


__all__ = [
    "BooleanExpr",
    "Comparison",
    "CypherQuery",
    "Literal",
    "NodePattern",
    "NotExpr",
    "PathPattern",
    "PropertyRef",
    "RelationshipPattern",
    "ReturnItem",
    "CypherEvaluator",
    "evaluate_where",
    "CypherParser",
    "parse_cypher",
    "tokenize",
    "GraphEdge",
    "GraphNode",
    "PropertyGraph",
    "graph_from_events",
    "graph_from_events_itemwise",
    "GraphStore",
]
