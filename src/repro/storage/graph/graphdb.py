"""In-memory property graph store (Neo4j stand-in).

System entities become nodes and system events become directed edges, exactly
as in the paper's Neo4j layout (Section III-B).  Nodes and edges carry
property dictionaries; label and property indexes are maintained for the
attributes threat-hunting filters use (file name, process executable name,
source/destination IP, operation type).
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from ...audit.entities import SystemEvent
from ...errors import StorageError

#: Node properties indexed for equality lookups (mirrors the relational
#: indexes created in Section III-B).  ``path`` is indexed because file
#: entity keys are path-first: path lookups would otherwise fall back to a
#: full node scan.
INDEXED_NODE_PROPERTIES = ("type", "name", "path", "exename", "dstip",
                           "srcip")
#: Edge properties indexed for equality lookups.
INDEXED_EDGE_PROPERTIES = ("operation",)

#: Magic prefix identifying a property-graph snapshot file.
GRAPH_SNAPSHOT_MAGIC = b"RPGRAPH\x00"
#: Highest snapshot format version this build reads and writes.  Bump when
#: the container layout or payload schema changes;
#: :meth:`PropertyGraph.load` rejects snapshots newer than what it
#: understands instead of misreading them.
GRAPH_SNAPSHOT_VERSION = 1

_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")

#: Scalar types a snapshotted property value may have.  The payload encoder
#: is type-preserving exactly for this closed set (``bool`` included via
#: ``int``); anything else — tuples, objects, nested containers — is
#: rejected at save time rather than silently altered on round trip.
_SCALAR_TYPES = (str, int, float, type(None))


def _validate_properties(properties: dict, owner: str) -> None:
    for key, value in properties.items():
        if not isinstance(key, str):
            raise StorageError(
                f"unsnapshotable property key {key!r} on {owner}")
        if not isinstance(value, _SCALAR_TYPES):
            raise StorageError(
                f"unsnapshotable property value type "
                f"{type(value).__name__!r} for {key!r} on {owner}")


@dataclass(slots=True)
class GraphNode:
    """A node of the property graph."""

    node_id: int
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        if key == "id":
            return self.node_id
        return self.properties.get(key, default)


@dataclass(slots=True)
class GraphEdge:
    """A directed edge of the property graph."""

    edge_id: int
    source: int
    target: int
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        if key == "id":
            return self.edge_id
        return self.properties.get(key, default)


class PropertyGraph:
    """Directed multigraph with labeled, property-carrying nodes and edges."""

    def __init__(self) -> None:
        self._nodes: dict[int, GraphNode] = {}
        self._edges: dict[int, GraphEdge] = {}
        self._outgoing: dict[int, list[int]] = {}
        self._incoming: dict[int, list[int]] = {}
        self._node_label_index: dict[str, set[int]] = {}
        self._node_property_index: dict[tuple[str, Any], set[int]] = {}
        self._edge_property_index: dict[tuple[str, Any], set[int]] = {}
        self._next_node_id = 1
        self._next_edge_id = 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, label: str, properties: dict[str, Any] | None = None,
                 node_id: int | None = None) -> int:
        """Add a node and return its id."""
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._nodes:
            raise StorageError(f"duplicate node id: {node_id}")
        self._next_node_id = max(self._next_node_id, node_id + 1)
        node = GraphNode(node_id, label, dict(properties or {}))
        self._nodes[node_id] = node
        self._outgoing[node_id] = []
        self._incoming[node_id] = []
        self._node_label_index.setdefault(label, set()).add(node_id)
        for key in INDEXED_NODE_PROPERTIES:
            if key in node.properties:
                self._node_property_index.setdefault(
                    (key, node.properties[key]), set()).add(node_id)
        return node_id

    def add_edge(self, source: int, target: int, label: str,
                 properties: dict[str, Any] | None = None,
                 edge_id: int | None = None) -> int:
        """Add a directed edge and return its id."""
        if source not in self._nodes or target not in self._nodes:
            raise StorageError(
                f"edge endpoints must exist: {source} -> {target}")
        if edge_id is None:
            edge_id = self._next_edge_id
        if edge_id in self._edges:
            raise StorageError(f"duplicate edge id: {edge_id}")
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        edge = GraphEdge(edge_id, source, target, label,
                         dict(properties or {}))
        self._edges[edge_id] = edge
        self._outgoing[source].append(edge_id)
        self._incoming[target].append(edge_id)
        for key in INDEXED_EDGE_PROPERTIES:
            if key in edge.properties:
                self._edge_property_index.setdefault(
                    (key, edge.properties[key]), set()).add(edge_id)
        return edge_id

    def add_nodes_bulk(self, nodes: Iterable[tuple[str, dict[str, Any]]]
                       ) -> list[int]:
        """Add many ``(label, properties)`` nodes; returns their ids.

        The fast path behind bulk loading: ids are assigned sequentially,
        adjacency lists and the label/property indexes are maintained with
        bound locals, and the property dictionaries are adopted as-is (no
        defensive copy) — callers hand over ownership and must not mutate
        them afterwards.
        """
        node_map = self._nodes
        outgoing = self._outgoing
        incoming = self._incoming
        label_index = self._node_label_index
        property_index = self._node_property_index
        indexed = INDEXED_NODE_PROPERTIES
        node_id = self._next_node_id
        ids: list[int] = []
        for label, properties in nodes:
            node_map[node_id] = GraphNode(node_id, label, properties)
            outgoing[node_id] = []
            incoming[node_id] = []
            bucket = label_index.get(label)
            if bucket is None:
                bucket = label_index[label] = set()
            bucket.add(node_id)
            for key in indexed:
                if key in properties:
                    entry = (key, properties[key])
                    values = property_index.get(entry)
                    if values is None:
                        values = property_index[entry] = set()
                    values.add(node_id)
            ids.append(node_id)
            node_id += 1
        self._next_node_id = node_id
        return ids

    def add_edges_bulk(self, edges: Iterable[tuple[int, int, str,
                                                   dict[str, Any]]]
                       ) -> list[int]:
        """Add many ``(source, target, label, properties)`` edges.

        Endpoints must already exist (unknown endpoints raise
        :class:`StorageError` before anything is inserted).  As with
        :meth:`add_nodes_bulk`, property dictionaries are adopted without
        copying and index maintenance is amortized across the batch.
        """
        edge_map = self._edges
        outgoing = self._outgoing
        incoming = self._incoming
        property_index = self._edge_property_index
        indexed = INDEXED_EDGE_PROPERTIES
        edge_id = self._next_edge_id
        ids: list[int] = []
        for source, target, label, properties in edges:
            source_out = outgoing.get(source)
            target_in = incoming.get(target)
            if source_out is None or target_in is None:
                raise StorageError(
                    f"edge endpoints must exist: {source} -> {target}")
            edge_map[edge_id] = GraphEdge(edge_id, source, target, label,
                                          properties)
            source_out.append(edge_id)
            target_in.append(edge_id)
            for key in indexed:
                if key in properties:
                    entry = (key, properties[key])
                    values = property_index.get(entry)
                    if values is None:
                        values = property_index[entry] = set()
                    values.add(edge_id)
            ids.append(edge_id)
            edge_id += 1
        self._next_edge_id = edge_id
        return ids

    def clear(self) -> None:
        """Remove every node and edge.

        Each structure is reset explicitly (not via ``__init__`` on the live
        instance, which would break subclasses that extend the constructor).
        """
        self._nodes.clear()
        self._edges.clear()
        self._outgoing.clear()
        self._incoming.clear()
        self._node_label_index.clear()
        self._node_property_index.clear()
        self._edge_property_index.clear()
        self._next_node_id = 1
        self._next_edge_id = 1

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def next_node_id(self) -> int:
        """Id the next added node will receive (id-space continuation)."""
        return self._next_node_id

    def node(self, node_id: int) -> GraphNode:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise StorageError(f"unknown node id: {node_id}") from exc

    def edge(self, edge_id: int) -> GraphEdge:
        try:
            return self._edges[edge_id]
        except KeyError as exc:
            raise StorageError(f"unknown edge id: {edge_id}") from exc

    def nodes(self, label: str | None = None) -> Iterator[GraphNode]:
        """Iterate nodes, optionally restricted to one label."""
        if label is None:
            yield from self._nodes.values()
            return
        for node_id in self._node_label_index.get(label, ()):
            yield self._nodes[node_id]

    def edges(self) -> Iterator[GraphEdge]:
        yield from self._edges.values()

    def nodes_by_ids(self, node_ids: Iterable[int]) -> list[GraphNode]:
        """Return existing nodes among ``node_ids`` (unknown ids skipped)."""
        return [self._nodes[node_id] for node_id in node_ids
                if node_id in self._nodes]

    def num_nodes(self) -> int:
        return len(self._nodes)

    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node_id: int) -> list[GraphEdge]:
        """Return edges whose source is ``node_id``."""
        return [self._edges[eid] for eid in self._outgoing.get(node_id, ())]

    def in_edges(self, node_id: int) -> list[GraphEdge]:
        """Return edges whose target is ``node_id``."""
        return [self._edges[eid] for eid in self._incoming.get(node_id, ())]

    def degree(self, node_id: int) -> int:
        return (len(self._outgoing.get(node_id, ())) +
                len(self._incoming.get(node_id, ())))

    def average_degree(self) -> float:
        """Average (out) degree, as reported for the TC cases in Section IV."""
        if not self._nodes:
            return 0.0
        return len(self._edges) / len(self._nodes)

    # ------------------------------------------------------------------
    # indexed lookups
    # ------------------------------------------------------------------
    def nodes_with_property(self, key: str, value: Any) -> list[GraphNode]:
        """Return nodes with an exact property value, using the index."""
        if key in INDEXED_NODE_PROPERTIES:
            ids = self._node_property_index.get((key, value), set())
            return [self._nodes[node_id] for node_id in ids]
        return [node for node in self._nodes.values()
                if node.properties.get(key) == value]

    def edges_with_property(self, key: str, value: Any) -> list[GraphEdge]:
        """Return edges with an exact property value, using the index."""
        if key in INDEXED_EDGE_PROPERTIES:
            ids = self._edge_property_index.get((key, value), set())
            return [self._edges[edge_id] for edge_id in ids]
        return [edge for edge in self._edges.values()
                if edge.properties.get(key) == value]

    # ------------------------------------------------------------------
    # binary snapshots
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Write a versioned binary snapshot of the graph; returns the size.

        Container layout: the :data:`GRAPH_SNAPSHOT_MAGIC` prefix, a
        little-endian ``u16`` format version, a ``u64`` payload length, then
        the payload — a UTF-8 JSON document holding the id counters plus
        every node ``[id, label, properties]`` and edge
        ``[id, source, target, label, properties]``.  JSON keeps the hot
        restore path in C (parsing tens of MB of per-value Python decoding
        was slower than re-ingesting) and is type-preserving for the scalar
        property values the stores use; save rejects anything outside that
        set.  The label/property indexes are *not* stored — :meth:`load`
        rebuilds them, so the on-disk layout stays decoupled from the
        in-memory indexing strategy.  The file is written to a temporary
        sibling and atomically renamed into place, so a crashed save never
        leaves a torn snapshot.
        """
        nodes = []
        for node in self._nodes.values():
            _validate_properties(node.properties, f"node {node.node_id}")
            nodes.append((node.node_id, node.label, node.properties))
        edges = []
        for edge in self._edges.values():
            _validate_properties(edge.properties, f"edge {edge.edge_id}")
            edges.append((edge.edge_id, edge.source, edge.target,
                          edge.label, edge.properties))
        payload = json.dumps({
            "next_node_id": self._next_node_id,
            "next_edge_id": self._next_edge_id,
            "nodes": nodes,
            "edges": edges,
        }, ensure_ascii=False, separators=(",", ":")).encode("utf-8")
        out = bytearray()
        out += GRAPH_SNAPSHOT_MAGIC
        out += _U16.pack(GRAPH_SNAPSHOT_VERSION)
        out += _U64.pack(len(payload))
        out += payload
        target = Path(path)
        temporary = target.with_name(target.name + ".tmp")
        temporary.write_bytes(out)
        os.replace(temporary, target)
        return len(out)

    def save_slice(self, path: str | Path, first_edge_id: int,
                   last_edge_id: int, first_node_id: int = 0,
                   last_node_id: int = -1) -> int:
        """Snapshot a self-contained edge-id slice of the graph.

        Writes the same versioned container as :meth:`save`, holding the
        edges with ids in ``[first_edge_id, last_edge_id]`` plus every
        node those edges touch (so the payload always loads standalone),
        plus any extra nodes in ``[first_node_id, last_node_id]`` — the
        segment seal path passes the segment's newly interned entity
        range there.  The id counters are preserved from the live graph
        so a slice restored last keeps the id-space continuation intact.
        Returns the written size in bytes.
        """
        edges = []
        node_ids: set[int] = set(
            node_id for node_id in range(first_node_id, last_node_id + 1)
            if node_id in self._nodes)
        edge_map = self._edges
        for edge_id in range(first_edge_id, last_edge_id + 1):
            edge = edge_map.get(edge_id)
            if edge is None:
                continue
            _validate_properties(edge.properties, f"edge {edge.edge_id}")
            edges.append((edge.edge_id, edge.source, edge.target,
                          edge.label, edge.properties))
            node_ids.add(edge.source)
            node_ids.add(edge.target)
        nodes = []
        for node_id in sorted(node_ids):
            node = self._nodes[node_id]
            _validate_properties(node.properties, f"node {node.node_id}")
            nodes.append((node.node_id, node.label, node.properties))
        payload = json.dumps({
            "next_node_id": self._next_node_id,
            "next_edge_id": self._next_edge_id,
            "nodes": nodes,
            "edges": edges,
        }, ensure_ascii=False, separators=(",", ":")).encode("utf-8")
        out = bytearray()
        out += GRAPH_SNAPSHOT_MAGIC
        out += _U16.pack(GRAPH_SNAPSHOT_VERSION)
        out += _U64.pack(len(payload))
        out += payload
        target = Path(path)
        temporary = target.with_name(target.name + ".tmp")
        temporary.write_bytes(out)
        os.replace(temporary, target)
        return len(out)

    @classmethod
    def load(cls, path: str | Path) -> "PropertyGraph":
        """Rebuild a graph from a binary snapshot written by :meth:`save`.

        Raises:
            StorageError: when the file is missing or unreadable, is not a
                graph snapshot, was written by a newer format version, or
                is truncated/corrupt.
        """
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise StorageError(
                f"cannot read graph snapshot {path}: {exc}") from exc
        magic_size = len(GRAPH_SNAPSHOT_MAGIC)
        if data[:magic_size] != GRAPH_SNAPSHOT_MAGIC:
            raise StorageError(f"not a property-graph snapshot: {path}")
        header_size = magic_size + _U16.size + _U64.size
        if len(data) < header_size:
            raise StorageError(f"truncated graph snapshot: {path}")
        (version,) = _U16.unpack_from(data, magic_size)
        if version < 1 or version > GRAPH_SNAPSHOT_VERSION:
            raise StorageError(
                f"unsupported graph snapshot version {version} "
                f"(this build reads <= {GRAPH_SNAPSHOT_VERSION})")
        (payload_size,) = _U64.unpack_from(data, magic_size + _U16.size)
        payload = data[header_size:header_size + payload_size]
        if len(payload) != payload_size:
            raise StorageError(
                f"truncated graph snapshot: expected {payload_size} payload "
                f"bytes, found {len(payload)}")
        try:
            document = json.loads(payload)
            node_rows = document["nodes"]
            edge_rows = document["edges"]
            next_node_id = int(document["next_node_id"])
            next_edge_id = int(document["next_edge_id"])
        except (ValueError, KeyError, TypeError,
                UnicodeDecodeError) as exc:
            raise StorageError(
                f"corrupt graph snapshot payload: {exc}") from exc
        graph = cls()
        node_map = graph._nodes
        outgoing = graph._outgoing
        incoming = graph._incoming
        label_index = graph._node_label_index
        node_property_index = graph._node_property_index
        indexed_node_keys = INDEXED_NODE_PROPERTIES
        for node_id, label, properties in node_rows:
            if node_id in node_map:
                raise StorageError(
                    f"corrupt graph snapshot: duplicate node id {node_id}")
            node_map[node_id] = GraphNode(node_id, label, properties)
            outgoing[node_id] = []
            incoming[node_id] = []
            bucket = label_index.get(label)
            if bucket is None:
                bucket = label_index[label] = set()
            bucket.add(node_id)
            for key in indexed_node_keys:
                if key in properties:
                    entry = (key, properties[key])
                    values = node_property_index.get(entry)
                    if values is None:
                        values = node_property_index[entry] = set()
                    values.add(node_id)
        edge_map = graph._edges
        edge_property_index = graph._edge_property_index
        indexed_edge_keys = INDEXED_EDGE_PROPERTIES
        for edge_id, source, target, label, properties in edge_rows:
            if edge_id in edge_map:
                raise StorageError(
                    f"corrupt graph snapshot: duplicate edge id {edge_id}")
            source_out = outgoing.get(source)
            target_in = incoming.get(target)
            if source_out is None or target_in is None:
                raise StorageError(
                    f"corrupt graph snapshot: edge {edge_id} references "
                    f"unknown endpoints {source} -> {target}")
            edge_map[edge_id] = GraphEdge(edge_id, source, target, label,
                                          properties)
            source_out.append(edge_id)
            target_in.append(edge_id)
            for key in indexed_edge_keys:
                if key in properties:
                    entry = (key, properties[key])
                    values = edge_property_index.get(entry)
                    if values is None:
                        values = edge_property_index[entry] = set()
                    values.add(edge_id)
        graph._next_node_id = max(next_node_id,
                                  max(node_map, default=0) + 1)
        graph._next_edge_id = max(next_edge_id,
                                  max(edge_map, default=0) + 1)
        return graph


def graph_from_events(events: Iterable[SystemEvent]) -> PropertyGraph:
    """Build the provenance property graph from a system event stream.

    Nodes are deduplicated by the entity unique keys of Section III-A; each
    event becomes one edge labeled ``EVENT`` carrying the event attributes.
    The stream is flattened into node/edge batches first and inserted through
    the bulk paths; :func:`graph_from_events_itemwise` keeps the one-call-per
    item reference construction.
    """
    nodes: list[tuple[str, dict]] = []
    edges: list[tuple[int, int, str, dict]] = []
    node_ids: dict[tuple, int] = {}
    next_node_id = 1
    for event in events:
        endpoints = []
        for entity in (event.subject, event.obj):
            key = entity.unique_key
            node_id = node_ids.get(key)
            if node_id is None:
                node_id = node_ids[key] = next_node_id
                next_node_id += 1
                nodes.append((entity.entity_type.value, entity.attributes()))
            endpoints.append(node_id)
        edges.append((endpoints[0], endpoints[1], "EVENT",
                      event.attributes()))
    graph = PropertyGraph()
    graph.add_nodes_bulk(nodes)
    graph.add_edges_bulk(edges)
    return graph


def graph_from_events_itemwise(events: Iterable[SystemEvent]
                               ) -> PropertyGraph:
    """Reference graph construction: one add_node/add_edge call per item.

    Retained as the baseline for the ingestion benchmark and the
    bulk-vs-itemwise equivalence tests.
    """
    graph = PropertyGraph()
    node_ids: dict[tuple, int] = {}
    for event in events:
        endpoints = []
        for entity in (event.subject, event.obj):
            key = entity.unique_key
            node_id = node_ids.get(key)
            if node_id is None:
                node_id = graph.add_node(entity.entity_type.value,
                                         entity.attributes())
                node_ids[key] = node_id
            endpoints.append(node_id)
        graph.add_edge(endpoints[0], endpoints[1], "EVENT",
                       event.attributes())
    return graph


__all__ = [
    "GraphNode",
    "GraphEdge",
    "PropertyGraph",
    "graph_from_events",
    "graph_from_events_itemwise",
    "INDEXED_NODE_PROPERTIES",
    "INDEXED_EDGE_PROPERTIES",
    "GRAPH_SNAPSHOT_MAGIC",
    "GRAPH_SNAPSHOT_VERSION",
]
