"""In-memory property graph store (Neo4j stand-in).

System entities become nodes and system events become directed edges, exactly
as in the paper's Neo4j layout (Section III-B).  Nodes and edges carry
property dictionaries; label and property indexes are maintained for the
attributes threat-hunting filters use (file name, process executable name,
source/destination IP, operation type).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ...audit.entities import SystemEvent
from ...errors import StorageError

#: Node properties indexed for equality lookups (mirrors the relational
#: indexes created in Section III-B).  ``path`` is indexed because file
#: entity keys are path-first: path lookups would otherwise fall back to a
#: full node scan.
INDEXED_NODE_PROPERTIES = ("type", "name", "path", "exename", "dstip",
                           "srcip")
#: Edge properties indexed for equality lookups.
INDEXED_EDGE_PROPERTIES = ("operation",)


@dataclass(slots=True)
class GraphNode:
    """A node of the property graph."""

    node_id: int
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        if key == "id":
            return self.node_id
        return self.properties.get(key, default)


@dataclass(slots=True)
class GraphEdge:
    """A directed edge of the property graph."""

    edge_id: int
    source: int
    target: int
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        if key == "id":
            return self.edge_id
        return self.properties.get(key, default)


class PropertyGraph:
    """Directed multigraph with labeled, property-carrying nodes and edges."""

    def __init__(self) -> None:
        self._nodes: dict[int, GraphNode] = {}
        self._edges: dict[int, GraphEdge] = {}
        self._outgoing: dict[int, list[int]] = {}
        self._incoming: dict[int, list[int]] = {}
        self._node_label_index: dict[str, set[int]] = {}
        self._node_property_index: dict[tuple[str, Any], set[int]] = {}
        self._edge_property_index: dict[tuple[str, Any], set[int]] = {}
        self._next_node_id = 1
        self._next_edge_id = 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, label: str, properties: dict[str, Any] | None = None,
                 node_id: int | None = None) -> int:
        """Add a node and return its id."""
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._nodes:
            raise StorageError(f"duplicate node id: {node_id}")
        self._next_node_id = max(self._next_node_id, node_id + 1)
        node = GraphNode(node_id, label, dict(properties or {}))
        self._nodes[node_id] = node
        self._outgoing[node_id] = []
        self._incoming[node_id] = []
        self._node_label_index.setdefault(label, set()).add(node_id)
        for key in INDEXED_NODE_PROPERTIES:
            if key in node.properties:
                self._node_property_index.setdefault(
                    (key, node.properties[key]), set()).add(node_id)
        return node_id

    def add_edge(self, source: int, target: int, label: str,
                 properties: dict[str, Any] | None = None,
                 edge_id: int | None = None) -> int:
        """Add a directed edge and return its id."""
        if source not in self._nodes or target not in self._nodes:
            raise StorageError(
                f"edge endpoints must exist: {source} -> {target}")
        if edge_id is None:
            edge_id = self._next_edge_id
        if edge_id in self._edges:
            raise StorageError(f"duplicate edge id: {edge_id}")
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        edge = GraphEdge(edge_id, source, target, label,
                         dict(properties or {}))
        self._edges[edge_id] = edge
        self._outgoing[source].append(edge_id)
        self._incoming[target].append(edge_id)
        for key in INDEXED_EDGE_PROPERTIES:
            if key in edge.properties:
                self._edge_property_index.setdefault(
                    (key, edge.properties[key]), set()).add(edge_id)
        return edge_id

    def add_nodes_bulk(self, nodes: Iterable[tuple[str, dict[str, Any]]]
                       ) -> list[int]:
        """Add many ``(label, properties)`` nodes; returns their ids.

        The fast path behind bulk loading: ids are assigned sequentially,
        adjacency lists and the label/property indexes are maintained with
        bound locals, and the property dictionaries are adopted as-is (no
        defensive copy) — callers hand over ownership and must not mutate
        them afterwards.
        """
        node_map = self._nodes
        outgoing = self._outgoing
        incoming = self._incoming
        label_index = self._node_label_index
        property_index = self._node_property_index
        indexed = INDEXED_NODE_PROPERTIES
        node_id = self._next_node_id
        ids: list[int] = []
        for label, properties in nodes:
            node_map[node_id] = GraphNode(node_id, label, properties)
            outgoing[node_id] = []
            incoming[node_id] = []
            bucket = label_index.get(label)
            if bucket is None:
                bucket = label_index[label] = set()
            bucket.add(node_id)
            for key in indexed:
                if key in properties:
                    entry = (key, properties[key])
                    values = property_index.get(entry)
                    if values is None:
                        values = property_index[entry] = set()
                    values.add(node_id)
            ids.append(node_id)
            node_id += 1
        self._next_node_id = node_id
        return ids

    def add_edges_bulk(self, edges: Iterable[tuple[int, int, str,
                                                   dict[str, Any]]]
                       ) -> list[int]:
        """Add many ``(source, target, label, properties)`` edges.

        Endpoints must already exist (unknown endpoints raise
        :class:`StorageError` before anything is inserted).  As with
        :meth:`add_nodes_bulk`, property dictionaries are adopted without
        copying and index maintenance is amortized across the batch.
        """
        edge_map = self._edges
        outgoing = self._outgoing
        incoming = self._incoming
        property_index = self._edge_property_index
        indexed = INDEXED_EDGE_PROPERTIES
        edge_id = self._next_edge_id
        ids: list[int] = []
        for source, target, label, properties in edges:
            source_out = outgoing.get(source)
            target_in = incoming.get(target)
            if source_out is None or target_in is None:
                raise StorageError(
                    f"edge endpoints must exist: {source} -> {target}")
            edge_map[edge_id] = GraphEdge(edge_id, source, target, label,
                                          properties)
            source_out.append(edge_id)
            target_in.append(edge_id)
            for key in indexed:
                if key in properties:
                    entry = (key, properties[key])
                    values = property_index.get(entry)
                    if values is None:
                        values = property_index[entry] = set()
                    values.add(edge_id)
            ids.append(edge_id)
            edge_id += 1
        self._next_edge_id = edge_id
        return ids

    def clear(self) -> None:
        """Remove every node and edge.

        Each structure is reset explicitly (not via ``__init__`` on the live
        instance, which would break subclasses that extend the constructor).
        """
        self._nodes.clear()
        self._edges.clear()
        self._outgoing.clear()
        self._incoming.clear()
        self._node_label_index.clear()
        self._node_property_index.clear()
        self._edge_property_index.clear()
        self._next_node_id = 1
        self._next_edge_id = 1

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> GraphNode:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise StorageError(f"unknown node id: {node_id}") from exc

    def edge(self, edge_id: int) -> GraphEdge:
        try:
            return self._edges[edge_id]
        except KeyError as exc:
            raise StorageError(f"unknown edge id: {edge_id}") from exc

    def nodes(self, label: str | None = None) -> Iterator[GraphNode]:
        """Iterate nodes, optionally restricted to one label."""
        if label is None:
            yield from self._nodes.values()
            return
        for node_id in self._node_label_index.get(label, ()):
            yield self._nodes[node_id]

    def edges(self) -> Iterator[GraphEdge]:
        yield from self._edges.values()

    def nodes_by_ids(self, node_ids: Iterable[int]) -> list[GraphNode]:
        """Return the existing nodes among ``node_ids`` (unknown ids skipped)."""
        return [self._nodes[node_id] for node_id in node_ids
                if node_id in self._nodes]

    def num_nodes(self) -> int:
        return len(self._nodes)

    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node_id: int) -> list[GraphEdge]:
        """Return edges whose source is ``node_id``."""
        return [self._edges[eid] for eid in self._outgoing.get(node_id, ())]

    def in_edges(self, node_id: int) -> list[GraphEdge]:
        """Return edges whose target is ``node_id``."""
        return [self._edges[eid] for eid in self._incoming.get(node_id, ())]

    def degree(self, node_id: int) -> int:
        return (len(self._outgoing.get(node_id, ())) +
                len(self._incoming.get(node_id, ())))

    def average_degree(self) -> float:
        """Average (out) degree, as reported for the TC cases in Section IV."""
        if not self._nodes:
            return 0.0
        return len(self._edges) / len(self._nodes)

    # ------------------------------------------------------------------
    # indexed lookups
    # ------------------------------------------------------------------
    def nodes_with_property(self, key: str, value: Any) -> list[GraphNode]:
        """Return nodes with an exact property value, using the index."""
        if key in INDEXED_NODE_PROPERTIES:
            ids = self._node_property_index.get((key, value), set())
            return [self._nodes[node_id] for node_id in ids]
        return [node for node in self._nodes.values()
                if node.properties.get(key) == value]

    def edges_with_property(self, key: str, value: Any) -> list[GraphEdge]:
        """Return edges with an exact property value, using the index."""
        if key in INDEXED_EDGE_PROPERTIES:
            ids = self._edge_property_index.get((key, value), set())
            return [self._edges[edge_id] for edge_id in ids]
        return [edge for edge in self._edges.values()
                if edge.properties.get(key) == value]


def graph_from_events(events: Iterable[SystemEvent]) -> PropertyGraph:
    """Build the provenance property graph from a system event stream.

    Nodes are deduplicated by the entity unique keys of Section III-A; each
    event becomes one edge labeled ``EVENT`` carrying the event attributes.
    The stream is flattened into node/edge batches first and inserted through
    the bulk paths; :func:`graph_from_events_itemwise` keeps the one-call-per
    item reference construction.
    """
    nodes: list[tuple[str, dict]] = []
    edges: list[tuple[int, int, str, dict]] = []
    node_ids: dict[tuple, int] = {}
    next_node_id = 1
    for event in events:
        endpoints = []
        for entity in (event.subject, event.obj):
            key = entity.unique_key
            node_id = node_ids.get(key)
            if node_id is None:
                node_id = node_ids[key] = next_node_id
                next_node_id += 1
                nodes.append((entity.entity_type.value, entity.attributes()))
            endpoints.append(node_id)
        edges.append((endpoints[0], endpoints[1], "EVENT",
                      event.attributes()))
    graph = PropertyGraph()
    graph.add_nodes_bulk(nodes)
    graph.add_edges_bulk(edges)
    return graph


def graph_from_events_itemwise(events: Iterable[SystemEvent]
                               ) -> PropertyGraph:
    """Reference graph construction: one add_node/add_edge call per item.

    Retained as the baseline for the ingestion benchmark and the
    bulk-vs-itemwise equivalence tests.
    """
    graph = PropertyGraph()
    node_ids: dict[tuple, int] = {}
    for event in events:
        endpoints = []
        for entity in (event.subject, event.obj):
            key = entity.unique_key
            node_id = node_ids.get(key)
            if node_id is None:
                node_id = graph.add_node(entity.entity_type.value,
                                         entity.attributes())
                node_ids[key] = node_id
            endpoints.append(node_id)
        graph.add_edge(endpoints[0], endpoints[1], "EVENT",
                       event.attributes())
    return graph


__all__ = [
    "GraphNode",
    "GraphEdge",
    "PropertyGraph",
    "graph_from_events",
    "graph_from_events_itemwise",
    "INDEXED_NODE_PROPERTIES",
    "INDEXED_EDGE_PROPERTIES",
]
