"""AST definitions for the mini-Cypher dialect.

The dialect covers the subset of Cypher the TBQL compiler emits and the
hand-written Cypher baseline queries in the evaluation use:

* ``MATCH`` with one or more comma-separated path patterns,
* node patterns ``(var:label {prop: value})``,
* relationship patterns ``-[var:TYPE]->`` and variable length
  ``-[var:TYPE*min..max]->``,
* ``WHERE`` with comparisons, ``CONTAINS`` / ``STARTS WITH`` / ``ENDS WITH``,
  regular-expression matching ``=~``, list membership ``IN [lit, ...]``
  (a top-level ``var.id IN [...]`` conjunct doubles as a candidate allowlist
  that the evaluator enumerates directly by node id), boolean connectives,
  parentheses,
* ``RETURN [DISTINCT] item, ...`` with ``var`` or ``var.prop`` items,
* optional ``LIMIT n``.

Dialect note: a property map on a variable-length relationship constrains the
*final* hop of the path, matching TBQL's event-path semantics (Section III-D);
real Cypher would constrain every hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


@dataclass(frozen=True)
class NodePattern:
    """A node pattern such as ``(p1:proc {type: 'proc'})``."""

    variable: Optional[str]
    label: Optional[str]
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RelationshipPattern:
    """A relationship pattern between two node patterns."""

    variable: Optional[str]
    label: Optional[str]
    properties: dict[str, Any] = field(default_factory=dict)
    min_length: int = 1
    max_length: int = 1

    @property
    def is_variable_length(self) -> bool:
        return not (self.min_length == 1 and self.max_length == 1)


@dataclass(frozen=True)
class PathPattern:
    """An alternating chain node-rel-node-rel-...-node."""

    nodes: tuple[NodePattern, ...]
    relationships: tuple[RelationshipPattern, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.relationships) + 1:
            raise ValueError("path must alternate nodes and relationships")


# --- WHERE expressions -----------------------------------------------------


@dataclass(frozen=True)
class PropertyRef:
    """A reference such as ``p1.exename`` (or bare ``p1``)."""

    variable: str
    key: Optional[str] = None


@dataclass(frozen=True)
class Literal:
    value: Any


Operand = Union[PropertyRef, Literal]


@dataclass(frozen=True)
class Comparison:
    """``left OP right`` where OP is a comparison or string predicate."""

    left: Operand
    operator: str
    right: Operand


@dataclass(frozen=True)
class BooleanExpr:
    """``AND`` / ``OR`` over sub-expressions."""

    operator: str
    operands: tuple["WhereExpr", ...]


@dataclass(frozen=True)
class NotExpr:
    operand: "WhereExpr"


WhereExpr = Union[Comparison, BooleanExpr, NotExpr]


@dataclass(frozen=True)
class ReturnItem:
    """One ``RETURN`` item, optionally aliased."""

    ref: PropertyRef
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.ref.key:
            return f"{self.ref.variable}.{self.ref.key}"
        return self.ref.variable


@dataclass(frozen=True)
class CypherQuery:
    """A parsed mini-Cypher query."""

    patterns: tuple[PathPattern, ...]
    where: Optional[WhereExpr]
    return_items: tuple[ReturnItem, ...]
    distinct: bool = False
    limit: Optional[int] = None

    def variables(self) -> set[str]:
        """Return every variable bound by the MATCH clause."""
        bound: set[str] = set()
        for pattern in self.patterns:
            for node in pattern.nodes:
                if node.variable:
                    bound.add(node.variable)
            for rel in pattern.relationships:
                if rel.variable:
                    bound.add(rel.variable)
        return bound


__all__ = [
    "NodePattern",
    "RelationshipPattern",
    "PathPattern",
    "PropertyRef",
    "Literal",
    "Comparison",
    "BooleanExpr",
    "NotExpr",
    "WhereExpr",
    "ReturnItem",
    "CypherQuery",
]
