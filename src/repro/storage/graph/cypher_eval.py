"""Evaluator for the mini-Cypher dialect over :class:`PropertyGraph`.

The evaluator performs backtracking subgraph matching:

* path patterns are matched left-to-right in the order written (like a graph
  database that trusts the query author's pattern order),
* inline label / property-map filters are applied while enumerating candidate
  nodes and relationships,
* WHERE predicates are applied as soon as every variable they mention is
  bound, so obviously-false partial bindings are pruned early,
* variable-length relationships are expanded with bounded depth-first search;
  the property map on a variable-length relationship constrains the final hop
  (TBQL event-path semantics).

The evaluator does **not** reorder patterns; good ordering is exactly what the
TBQL scheduler contributes in the paper, so keeping the backend naive makes
the RQ4 comparison meaningful.
"""

from __future__ import annotations

import re
from typing import Any, Iterator

from ...errors import CypherError
from .cypher_ast import (BooleanExpr, Comparison, CypherQuery, Literal,
                         NodePattern, NotExpr, PathPattern, PropertyRef,
                         RelationshipPattern, WhereExpr)
from .graphdb import GraphEdge, GraphNode, PropertyGraph

Binding = dict[str, Any]


def _value_of(operand, binding: Binding) -> Any:
    if isinstance(operand, Literal):
        return operand.value
    element = binding.get(operand.variable)
    if element is None:
        raise KeyError(operand.variable)
    if operand.key is None:
        if isinstance(element, (GraphNode,)):
            return element.node_id
        if isinstance(element, GraphEdge):
            return element.edge_id
        if isinstance(element, list):  # variable-length path
            return [edge.edge_id for edge in element]
        return element
    if isinstance(element, list):
        # Property access on a variable-length path refers to the final hop.
        if not element:
            return None
        return element[-1].get(operand.key)
    return element.get(operand.key)


def _compare(left: Any, operator: str, right: Any) -> bool:
    if operator == "=":
        return left == right
    if operator == "<>":
        return left != right
    if operator == "CONTAINS":
        return left is not None and right is not None and \
            str(right) in str(left)
    if operator == "STARTS WITH":
        return left is not None and str(left).startswith(str(right))
    if operator == "ENDS WITH":
        return left is not None and str(left).endswith(str(right))
    if operator == "=~":
        return left is not None and \
            re.search(str(right), str(left)) is not None
    if operator == "IN":
        return isinstance(right, (list, tuple)) and left in right
    if left is None or right is None:
        return False
    try:
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError:
        return False
    raise CypherError(f"unsupported operator: {operator}")


def _expression_variables(expr: WhereExpr) -> set[str]:
    if isinstance(expr, Comparison):
        names = set()
        for operand in (expr.left, expr.right):
            if isinstance(operand, PropertyRef):
                names.add(operand.variable)
        return names
    if isinstance(expr, NotExpr):
        return _expression_variables(expr.operand)
    if isinstance(expr, BooleanExpr):
        names = set()
        for operand in expr.operands:
            names |= _expression_variables(operand)
        return names
    raise CypherError(f"unknown expression node: {expr!r}")


def evaluate_where(expr: WhereExpr, binding: Binding) -> bool:
    """Evaluate a WHERE expression against a (complete) binding."""
    if isinstance(expr, Comparison):
        try:
            left = _value_of(expr.left, binding)
            right = _value_of(expr.right, binding)
        except KeyError:
            return False
        return _compare(left, expr.operator, right)
    if isinstance(expr, NotExpr):
        return not evaluate_where(expr.operand, binding)
    if isinstance(expr, BooleanExpr):
        if expr.operator == "AND":
            return all(evaluate_where(op, binding) for op in expr.operands)
        return any(evaluate_where(op, binding) for op in expr.operands)
    raise CypherError(f"unknown expression node: {expr!r}")


def _split_conjuncts(expr: WhereExpr | None) -> list[WhereExpr]:
    """Flatten top-level AND so conjuncts can be applied independently."""
    if expr is None:
        return []
    if isinstance(expr, BooleanExpr) and expr.operator == "AND":
        conjuncts: list[WhereExpr] = []
        for operand in expr.operands:
            conjuncts.extend(_split_conjuncts(operand))
        return conjuncts
    return [expr]


class CypherEvaluator:
    """Evaluates parsed mini-Cypher queries against a property graph."""

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        #: Per-variable node-id allowlists harvested from top-level WHERE
        #: conjuncts of the form ``var.id IN [...]`` / ``var.id = n``; used to
        #: enumerate candidates directly by id instead of scanning a label.
        self._id_restrictions: dict[str, set[int]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: CypherQuery) -> list[dict[str, Any]]:
        """Execute a query and return result rows keyed by output name."""
        conjuncts = _split_conjuncts(query.where)
        conjunct_vars = [(_expression_variables(c), c) for c in conjuncts]
        self._id_restrictions = _harvest_id_restrictions(conjuncts)
        results: list[dict[str, Any]] = []
        seen: set[tuple] = set()
        for binding in self._match_patterns(list(query.patterns), {},
                                            conjunct_vars, set()):
            row = {}
            for item in query.return_items:
                try:
                    row[item.output_name] = _value_of(item.ref, binding)
                except KeyError:
                    row[item.output_name] = None
            if query.distinct:
                key = tuple(sorted((name, _hashable(value))
                                   for name, value in row.items()))
                if key in seen:
                    continue
                seen.add(key)
            results.append(row)
            if query.limit is not None and len(results) >= query.limit:
                break
        return results

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------
    def _match_patterns(self, patterns: list[PathPattern], binding: Binding,
                        conjunct_vars: list[tuple[set[str], WhereExpr]],
                        applied: set[int]) -> Iterator[Binding]:
        if not patterns:
            # Every remaining conjunct must hold on the complete binding.
            for index, (_, conjunct) in enumerate(conjunct_vars):
                if index not in applied and \
                        not evaluate_where(conjunct, binding):
                    return
            yield binding
            return
        head, *tail = patterns
        for extended in self._match_path(head, binding):
            new_applied = set(applied)
            satisfied = True
            for index, (variables, conjunct) in enumerate(conjunct_vars):
                if index in new_applied:
                    continue
                if variables and variables <= set(extended.keys()):
                    if not evaluate_where(conjunct, extended):
                        satisfied = False
                        break
                    new_applied.add(index)
            if not satisfied:
                continue
            yield from self._match_patterns(tail, extended, conjunct_vars,
                                            new_applied)

    def _match_path(self, pattern: PathPattern, binding: Binding
                    ) -> Iterator[Binding]:
        yield from self._match_path_from(pattern, 0, binding)

    def _match_path_from(self, pattern: PathPattern, node_index: int,
                         binding: Binding) -> Iterator[Binding]:
        node_pattern = pattern.nodes[node_index]
        for node, bound in self._candidate_nodes(node_pattern, binding):
            if node_index == len(pattern.relationships):
                yield bound
                continue
            rel_pattern = pattern.relationships[node_index]
            next_node_pattern = pattern.nodes[node_index + 1]
            for path_edges, end_node in self._expand_relationship(
                    node, rel_pattern):
                if not self._node_matches(end_node, next_node_pattern, bound):
                    continue
                extended = dict(bound)
                if rel_pattern.variable:
                    if rel_pattern.is_variable_length:
                        extended[rel_pattern.variable] = path_edges
                    else:
                        extended[rel_pattern.variable] = path_edges[0]
                if next_node_pattern.variable:
                    extended[next_node_pattern.variable] = end_node
                yield from self._continue_path(pattern, node_index + 1,
                                               extended)

    def _continue_path(self, pattern: PathPattern, node_index: int,
                       binding: Binding) -> Iterator[Binding]:
        if node_index == len(pattern.relationships):
            yield binding
            return
        node_pattern = pattern.nodes[node_index]
        node = binding.get(node_pattern.variable) if node_pattern.variable \
            else None
        if node is None:
            yield from self._match_path_from(pattern, node_index, binding)
            return
        rel_pattern = pattern.relationships[node_index]
        next_node_pattern = pattern.nodes[node_index + 1]
        for path_edges, end_node in self._expand_relationship(node,
                                                              rel_pattern):
            if not self._node_matches(end_node, next_node_pattern, binding):
                continue
            extended = dict(binding)
            if rel_pattern.variable:
                if rel_pattern.is_variable_length:
                    extended[rel_pattern.variable] = path_edges
                else:
                    extended[rel_pattern.variable] = path_edges[0]
            if next_node_pattern.variable:
                extended[next_node_pattern.variable] = end_node
            yield from self._continue_path(pattern, node_index + 1, extended)

    # ------------------------------------------------------------------
    # candidate enumeration
    # ------------------------------------------------------------------
    def _candidate_nodes(self, pattern: NodePattern, binding: Binding
                         ) -> Iterator[tuple[GraphNode, Binding]]:
        if pattern.variable and pattern.variable in binding:
            node = binding[pattern.variable]
            if self._node_matches(node, pattern, binding):
                yield node, binding
            return
        candidates = self._indexed_candidates(pattern)
        for node in candidates:
            if self._node_properties_match(node, pattern):
                if pattern.variable:
                    extended = dict(binding)
                    extended[pattern.variable] = node
                    yield node, extended
                else:
                    yield node, binding

    def _indexed_candidates(self, pattern: NodePattern) -> Iterator[GraphNode]:
        # An id allowlist (candidate pushdown from the TBQL scheduler) beats
        # any index scan: enumerate exactly the allowed nodes.
        if pattern.variable:
            allowed_ids = self._id_restrictions.get(pattern.variable)
            if allowed_ids is not None:
                nodes = self.graph.nodes_by_ids(sorted(allowed_ids))
                if pattern.label:
                    nodes = [node for node in nodes
                             if node.label == pattern.label]
                return iter(nodes)
        # Use a property index when an exact (non-wildcard) value is given.
        for key, value in pattern.properties.items():
            if isinstance(value, str) and "%" in value:
                continue
            nodes = self.graph.nodes_with_property(key, value)
            if pattern.label:
                return iter([node for node in nodes
                             if node.label == pattern.label])
            return iter(nodes)
        if pattern.label:
            return self.graph.nodes(pattern.label)
        return self.graph.nodes()

    def _node_matches(self, node: GraphNode | None, pattern: NodePattern,
                      binding: Binding) -> bool:
        if node is None:
            return False
        if pattern.variable and pattern.variable in binding and \
                binding[pattern.variable].node_id != node.node_id:
            return False
        if pattern.label and node.label != pattern.label:
            return False
        return self._node_properties_match(node, pattern)

    @staticmethod
    def _properties_match(element, properties: dict[str, Any]) -> bool:
        for key, expected in properties.items():
            actual = element.get(key)
            if isinstance(expected, str) and "%" in expected:
                regex = "^" + re.escape(expected).replace("%", ".*") + "$"
                if actual is None or re.match(regex, str(actual)) is None:
                    return False
            elif actual != expected:
                return False
        return True

    def _node_properties_match(self, node: GraphNode, pattern: NodePattern
                               ) -> bool:
        if pattern.label and node.label != pattern.label:
            return False
        return self._properties_match(node, pattern.properties)

    def _expand_relationship(self, start: GraphNode,
                             pattern: RelationshipPattern
                             ) -> Iterator[tuple[list[GraphEdge], GraphNode]]:
        """Yield (edge path, end node) pairs satisfying the rel pattern."""
        if not pattern.is_variable_length:
            for edge in self.graph.out_edges(start.node_id):
                if pattern.label and edge.label != pattern.label:
                    continue
                if not self._properties_match(edge, pattern.properties):
                    continue
                yield [edge], self.graph.node(edge.target)
            return
        # Variable-length: bounded DFS; the property map constrains the final
        # hop only (TBQL event-path semantics).
        stack: list[tuple[int, list[GraphEdge]]] = [(start.node_id, [])]
        while stack:
            node_id, path = stack.pop()
            if len(path) >= pattern.max_length:
                continue
            for edge in self.graph.out_edges(node_id):
                if pattern.label and edge.label != pattern.label:
                    continue
                if any(existing.edge_id == edge.edge_id for existing in path):
                    continue
                new_path = path + [edge]
                if len(new_path) >= pattern.min_length and \
                        self._properties_match(edge, pattern.properties):
                    yield new_path, self.graph.node(edge.target)
                stack.append((edge.target, new_path))


def _harvest_id_restrictions(conjuncts: list[WhereExpr]
                             ) -> dict[str, set[int]]:
    """Collect per-variable node-id allowlists from top-level conjuncts.

    Only ``var.id IN [literals]`` and ``var.id = literal`` forms restrict
    enumeration; anything else is left to normal WHERE evaluation.  Multiple
    restrictions on one variable intersect.
    """
    restrictions: dict[str, set[int]] = {}
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison):
            continue
        ref, literal = conjunct.left, conjunct.right
        if not isinstance(ref, PropertyRef) or ref.key != "id" or \
                not isinstance(literal, Literal):
            continue
        if conjunct.operator == "IN" and \
                isinstance(literal.value, (list, tuple)):
            ids = {value for value in literal.value if isinstance(value, int)}
        elif conjunct.operator == "=" and isinstance(literal.value, int):
            ids = {literal.value}
        else:
            continue
        existing = restrictions.get(ref.variable)
        restrictions[ref.variable] = ids if existing is None \
            else existing & ids
    return restrictions


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(value)
    return value


__all__ = ["CypherEvaluator", "evaluate_where", "Binding"]
