"""Lexer and recursive-descent parser for the mini-Cypher dialect."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional

from ...errors import CypherError
from .cypher_ast import (BooleanExpr, Comparison, CypherQuery, Literal,
                         NodePattern, NotExpr, PathPattern, PropertyRef,
                         RelationshipPattern, ReturnItem, WhereExpr)

_KEYWORDS = {
    "MATCH", "WHERE", "RETURN", "DISTINCT", "LIMIT", "AND", "OR", "NOT",
    "CONTAINS", "STARTS", "ENDS", "WITH", "AS", "TRUE", "FALSE", "NULL",
    "IN",
}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<symbol><=|>=|<>|!=|=~|\.\.|->|<-|[-()\[\]{}:,.*<>=])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str          # 'keyword', 'name', 'number', 'string', 'symbol', 'eof'
    text: str
    position: int


def tokenize(query: str) -> list[Token]:
    """Tokenize a mini-Cypher query string."""
    tokens: list[Token] = []
    index = 0
    while index < len(query):
        match = _TOKEN_RE.match(query, index)
        if match is None:
            raise CypherError(f"unexpected character {query[index]!r}", index)
        index = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "name":
            upper = text.upper()
            kind = "keyword" if upper in _KEYWORDS else "name"
            tokens.append(Token(kind, upper if kind == "keyword" else text,
                                match.start()))
        elif match.lastgroup == "number":
            tokens.append(Token("number", text, match.start()))
        elif match.lastgroup == "string":
            tokens.append(Token("string", text, match.start()))
        else:
            tokens.append(Token("symbol", text, match.start()))
    tokens.append(Token("eof", "", len(query)))
    return tokens


def _unescape(raw: str) -> str:
    body = raw[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


class CypherParser:
    """Recursive-descent parser producing a :class:`CypherQuery`."""

    def __init__(self, query: str) -> None:
        self._query = query
        self._tokens = tokenize(query)
        self._index = 0

    # ------------------------------------------------------------------
    # token utilities
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind: str, text: str | None = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            expected = text or kind
            raise CypherError(
                f"expected {expected!r} but found {actual.text!r}",
                actual.position)
        return token

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse(self) -> CypherQuery:
        self._expect("keyword", "MATCH")
        patterns = [self._path_pattern()]
        while self._accept("symbol", ","):
            patterns.append(self._path_pattern())
        where = None
        if self._accept("keyword", "WHERE"):
            where = self._expression()
        self._expect("keyword", "RETURN")
        distinct = self._accept("keyword", "DISTINCT") is not None
        items = [self._return_item()]
        while self._accept("symbol", ","):
            items.append(self._return_item())
        limit = None
        if self._accept("keyword", "LIMIT"):
            limit_token = self._expect("number")
            limit = int(float(limit_token.text))
        self._expect("eof")
        return CypherQuery(patterns=tuple(patterns), where=where,
                           return_items=tuple(items), distinct=distinct,
                           limit=limit)

    # -- patterns -------------------------------------------------------
    def _path_pattern(self) -> PathPattern:
        nodes = [self._node_pattern()]
        relationships: list[RelationshipPattern] = []
        while self._check("symbol", "-") or self._check("symbol", "<-"):
            relationships.append(self._relationship_pattern())
            nodes.append(self._node_pattern())
        return PathPattern(nodes=tuple(nodes),
                           relationships=tuple(relationships))

    def _node_pattern(self) -> NodePattern:
        self._expect("symbol", "(")
        variable = None
        label = None
        properties: dict[str, Any] = {}
        if self._check("name"):
            variable = self._advance().text
        if self._accept("symbol", ":"):
            label = self._expect("name").text
        if self._check("symbol", "{"):
            properties = self._property_map()
        self._expect("symbol", ")")
        return NodePattern(variable=variable, label=label,
                           properties=properties)

    def _relationship_pattern(self) -> RelationshipPattern:
        # Only left-to-right relationships are supported by the dialect.
        self._expect("symbol", "-")
        self._expect("symbol", "[")
        variable = None
        label = None
        properties: dict[str, Any] = {}
        min_length, max_length = 1, 1
        if self._check("name"):
            variable = self._advance().text
        if self._accept("symbol", ":"):
            label = self._expect("name").text
        if self._accept("symbol", "*"):
            min_length, max_length = self._length_range()
        if self._check("symbol", "{"):
            properties = self._property_map()
        self._expect("symbol", "]")
        self._expect("symbol", "->")
        return RelationshipPattern(variable=variable, label=label,
                                   properties=properties,
                                   min_length=min_length,
                                   max_length=max_length)

    #: Upper bound used when a variable-length pattern omits the maximum.
    UNBOUNDED_MAX = 8

    def _length_range(self) -> tuple[int, int]:
        minimum = 1
        maximum = self.UNBOUNDED_MAX
        if self._check("number"):
            minimum = int(float(self._advance().text))
            maximum = minimum
        if self._accept("symbol", ".."):
            if self._check("number"):
                maximum = int(float(self._advance().text))
            else:
                maximum = self.UNBOUNDED_MAX
        if minimum < 1 or maximum < minimum:
            raise CypherError(
                f"invalid variable-length range: {minimum}..{maximum}")
        return minimum, maximum

    def _property_map(self) -> dict[str, Any]:
        self._expect("symbol", "{")
        properties: dict[str, Any] = {}
        if not self._check("symbol", "}"):
            while True:
                key = self._expect("name").text
                self._expect("symbol", ":")
                properties[key] = self._literal_value()
                if not self._accept("symbol", ","):
                    break
        self._expect("symbol", "}")
        return properties

    def _literal_value(self) -> Any:
        token = self._peek()
        if token.kind == "symbol" and token.text == "[":
            return self._list_literal()
        if token.kind == "string":
            self._advance()
            return _unescape(token.text)
        if token.kind == "number":
            self._advance()
            value = float(token.text)
            return int(value) if value.is_integer() else value
        if token.kind == "keyword" and token.text in ("TRUE", "FALSE"):
            self._advance()
            return token.text == "TRUE"
        if token.kind == "keyword" and token.text == "NULL":
            self._advance()
            return None
        raise CypherError(f"expected a literal, found {token.text!r}",
                          token.position)

    def _list_literal(self) -> tuple:
        """Parse a ``[lit, lit, ...]`` list literal (used with ``IN``)."""
        self._expect("symbol", "[")
        values: list[Any] = []
        if not self._check("symbol", "]"):
            while True:
                values.append(self._literal_value())
                if not self._accept("symbol", ","):
                    break
        self._expect("symbol", "]")
        return tuple(values)

    # -- WHERE expressions ---------------------------------------------
    def _expression(self) -> WhereExpr:
        return self._or_expression()

    def _or_expression(self) -> WhereExpr:
        operands = [self._and_expression()]
        while self._accept("keyword", "OR"):
            operands.append(self._and_expression())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr("OR", tuple(operands))

    def _and_expression(self) -> WhereExpr:
        operands = [self._not_expression()]
        while self._accept("keyword", "AND"):
            operands.append(self._not_expression())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr("AND", tuple(operands))

    def _not_expression(self) -> WhereExpr:
        if self._accept("keyword", "NOT"):
            return NotExpr(self._not_expression())
        return self._comparison()

    def _comparison(self) -> WhereExpr:
        if self._accept("symbol", "("):
            inner = self._expression()
            self._expect("symbol", ")")
            return inner
        left = self._operand()
        token = self._peek()
        operator = None
        if token.kind == "symbol" and token.text in (
                "=", "<>", "!=", "<", "<=", ">", ">=", "=~"):
            operator = "<>" if token.text == "!=" else token.text
            self._advance()
        elif self._accept("keyword", "IN"):
            operator = "IN"
        elif self._accept("keyword", "CONTAINS"):
            operator = "CONTAINS"
        elif self._accept("keyword", "STARTS"):
            self._expect("keyword", "WITH")
            operator = "STARTS WITH"
        elif self._accept("keyword", "ENDS"):
            self._expect("keyword", "WITH")
            operator = "ENDS WITH"
        if operator is None:
            raise CypherError(
                f"expected a comparison operator, found {token.text!r}",
                token.position)
        right = self._operand()
        return Comparison(left=left, operator=operator, right=right)

    def _operand(self):
        token = self._peek()
        if token.kind == "name":
            self._advance()
            if self._accept("symbol", "."):
                key = self._expect("name").text
                return PropertyRef(token.text, key)
            return PropertyRef(token.text, None)
        return Literal(self._literal_value())

    # -- RETURN ----------------------------------------------------------
    def _return_item(self) -> ReturnItem:
        token = self._expect("name")
        key = None
        if self._accept("symbol", "."):
            key = self._expect("name").text
        alias = None
        if self._accept("keyword", "AS"):
            alias = self._expect("name").text
        return ReturnItem(ref=PropertyRef(token.text, key), alias=alias)


def parse_cypher(query: str) -> CypherQuery:
    """Parse a mini-Cypher query string into a :class:`CypherQuery`."""
    return CypherParser(query).parse()


__all__ = ["Token", "tokenize", "CypherParser", "parse_cypher"]
