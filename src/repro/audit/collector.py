"""Synthetic system auditing collector.

The paper deploys monitoring agents (Sysdig / Linux Audit / ETW) on live
hosts.  This module provides the synthetic equivalent: an
:class:`AuditCollector` that behaves like a kernel auditing agent.  Scripted
activities (attack steps or benign workload actions) are recorded through the
collector, which:

* maintains a monotonically advancing virtual clock,
* assigns PIDs to processes and tracks live process identity,
* splits large read/write activities into *bursts* of syscall-level events,
  mimicking how the OS distributes one logical file transfer over many
  ``read``/``write`` calls (the behaviour that motivates the data reduction
  of Section III-B),
* serializes everything into auditd-style log text via
  :mod:`repro.audit.logfmt`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .entities import (FileEntity, NetworkEntity, Operation,
                       ProcessEntity, SystemEntity, SystemEvent)
from .logfmt import format_log


@dataclass
class CollectorConfig:
    """Tunables for the synthetic collector."""

    host: str = "host-0"
    start_time: float = 1_523_400_000.0
    #: Default number of syscall-level records one logical read/write becomes.
    default_burst: int = 3
    #: Gap between consecutive syscalls within a burst, in seconds.
    burst_gap: float = 0.05
    #: Duration of a single syscall-level record, in seconds.
    syscall_duration: float = 0.002
    #: Bytes moved per syscall-level record.
    bytes_per_call: int = 4096
    seed: int = 7


class AuditCollector:
    """Records scripted system activities as kernel-style audit events."""

    def __init__(self, config: CollectorConfig | None = None) -> None:
        self.config = config or CollectorConfig()
        self._clock = self.config.start_time
        self._rng = random.Random(self.config.seed)
        self._next_pid = 1000 + self._rng.randrange(0, 500)
        self._events: list[SystemEvent] = []
        self._processes: dict[tuple[str, int], ProcessEntity] = {}

    # ------------------------------------------------------------------
    # clock management
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time of the collector."""
        return self._clock

    def advance(self, seconds: float) -> float:
        """Advance the virtual clock and return the new time."""
        if seconds < 0:
            raise ValueError("cannot move the collector clock backwards")
        self._clock += seconds
        return self._clock

    # ------------------------------------------------------------------
    # entity factories
    # ------------------------------------------------------------------
    def spawn_process(self, exename: str, user: str = "root",
                      cmdline: str = "", pid: int | None = None
                      ) -> ProcessEntity:
        """Create (or reuse) a process entity with a fresh PID."""
        if pid is None:
            self._next_pid += self._rng.randrange(1, 7)
            pid = self._next_pid
        key = (exename, pid)
        if key not in self._processes:
            self._processes[key] = ProcessEntity(
                exename=exename, pid=pid, user=user,
                cmdline=cmdline or exename)
        return self._processes[key]

    def file(self, path: str, user: str = "root") -> FileEntity:
        """Create a file entity for an absolute path.

        The ``name`` attribute is the full path: TBQL's default file filter
        attribute is ``name`` and OSCTI reports reference files by path, so
        keeping the path there lets ``%/etc/passwd%`` style filters match.
        """
        return FileEntity(path=path, name=path, user=user)

    def connection(self, dstip: str, dstport: int = 443,
                   srcip: str = "10.0.0.5", srcport: int | None = None,
                   protocol: str = "tcp") -> NetworkEntity:
        """Create a network connection entity (5-tuple identity)."""
        if srcport is None:
            srcport = self._rng.randrange(30000, 60000)
        return NetworkEntity(srcip=srcip, srcport=srcport, dstip=dstip,
                             dstport=dstport, protocol=protocol)

    # ------------------------------------------------------------------
    # event recording
    # ------------------------------------------------------------------
    def record(self, subject: ProcessEntity, operation: Operation,
               obj: SystemEntity, burst: int | None = None,
               data_amount: int | None = None, gap_after: float = 0.2
               ) -> list[SystemEvent]:
        """Record one logical activity as one or more syscall-level events.

        Read/write style operations are split into ``burst`` syscall-level
        records separated by ``burst_gap`` seconds; control operations
        (start, end, execute, connect, ...) always produce a single record.
        Returns the list of recorded events, in time order.
        """
        config = self.config
        splittable = operation in (Operation.READ, Operation.WRITE,
                                   Operation.SEND, Operation.RECEIVE)
        if burst is None:
            burst = config.default_burst if splittable else 1
        if not splittable:
            burst = 1
        if burst < 1:
            raise ValueError("burst must be at least 1")
        per_call_bytes = config.bytes_per_call
        if data_amount is not None:
            per_call_bytes = max(1, data_amount // burst)
        recorded: list[SystemEvent] = []
        for _ in range(burst):
            start = self._clock
            end = start + config.syscall_duration
            event = SystemEvent(
                subject=subject, operation=operation, obj=obj,
                start_time=start, end_time=end,
                data_amount=per_call_bytes if splittable else 0,
                host=config.host)
            self._events.append(event)
            recorded.append(event)
            self._clock = end + config.burst_gap
        self._clock += gap_after
        return recorded

    # Convenience wrappers used heavily by the benchmark attack scripts.
    def read_file(self, subject: ProcessEntity, path: str, **kwargs
                  ) -> list[SystemEvent]:
        return self.record(subject, Operation.READ, self.file(path), **kwargs)

    def write_file(self, subject: ProcessEntity, path: str, **kwargs
                   ) -> list[SystemEvent]:
        return self.record(subject, Operation.WRITE, self.file(path), **kwargs)

    def execute_file(self, subject: ProcessEntity, path: str, **kwargs
                     ) -> list[SystemEvent]:
        return self.record(subject, Operation.EXECUTE, self.file(path),
                           **kwargs)

    def start_process(self, subject: ProcessEntity, exename: str,
                      **kwargs) -> tuple[ProcessEntity, list[SystemEvent]]:
        child = self.spawn_process(exename)
        events = self.record(subject, Operation.START, child, **kwargs)
        return child, events

    def connect_ip(self, subject: ProcessEntity, dstip: str,
                   dstport: int = 443, **kwargs) -> list[SystemEvent]:
        return self.record(subject, Operation.CONNECT,
                           self.connection(dstip, dstport), **kwargs)

    def send_to(self, subject: ProcessEntity, dstip: str, dstport: int = 443,
                **kwargs) -> list[SystemEvent]:
        return self.record(subject, Operation.SEND,
                           self.connection(dstip, dstport), **kwargs)

    def receive_from(self, subject: ProcessEntity, dstip: str,
                     dstport: int = 443, **kwargs) -> list[SystemEvent]:
        return self.record(subject, Operation.RECEIVE,
                           self.connection(dstip, dstport), **kwargs)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def events(self) -> list[SystemEvent]:
        """Return all recorded events sorted by start time."""
        return sorted(self._events,
                      key=lambda event: (event.start_time, event.event_id))

    def to_log(self) -> str:
        """Serialize the recorded events into auditd-style log text."""
        return format_log(self.events())

    def clear(self) -> None:
        """Drop all recorded events while keeping the clock and PID state."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


__all__ = ["CollectorConfig", "AuditCollector"]
