"""Auditd-style textual log format.

The physical testbed in the paper runs Sysdig / Linux Audit and stores raw
kernel audit records.  This module defines the textual record format used by
our synthetic collector, which intentionally follows the ``key=value`` style
of auditd so the parser exercises a realistic parsing path (quoting, escaped
values, per-object-type attribute sets, malformed record handling).

A record looks like::

    type=SYSCALL ts=1523451123.201 te=1523451123.204 host=host-0 \
        syscall=read pid=4021 exe="/bin/tar" user=root group=root \
        cmdline="tar cf /tmp/upload.tar /etc/passwd" obj=file \
        path="/etc/passwd" name="passwd" bytes=4096 exit=0
"""

from __future__ import annotations

import re
import shlex

from ..errors import AuditError
from .entities import (EntityType, FileEntity, NetworkEntity, ProcessEntity,
                       SystemEntity, SystemEvent)
from .syscalls import lookup_syscall, syscall_for

_KV_RE = re.compile(r'(\w+)=("(?:[^"\\]|\\.)*"|\S+)')


def _quote(value: object) -> str:
    text = str(value)
    if text == "" or re.search(r"\s", text) or '"' in text:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


def _unquote(value: str) -> str:
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        inner = value[1:-1]
        return inner.replace('\\"', '"').replace("\\\\", "\\")
    return value


def format_record(event: SystemEvent) -> str:
    """Serialize one :class:`SystemEvent` into an auditd-style record line."""
    subject = event.subject
    fields: list[tuple[str, object]] = [
        ("type", "SYSCALL"),
        ("ts", f"{event.start_time:.6f}"),
        ("te", f"{event.end_time:.6f}"),
        ("host", event.host),
        ("syscall", syscall_for(event.operation, event.obj.entity_type)),
        ("pid", subject.pid),
        ("exe", subject.exename),
        ("user", subject.user),
        ("group", subject.group),
        ("cmdline", subject.cmdline or subject.exename),
        ("obj", event.obj.entity_type.value),
    ]
    obj = event.obj
    if isinstance(obj, FileEntity):
        fields += [("path", obj.path), ("name", obj.name),
                   ("obj_user", obj.user), ("obj_group", obj.group)]
    elif isinstance(obj, ProcessEntity):
        fields += [("obj_exe", obj.exename), ("obj_pid", obj.pid),
                   ("obj_user", obj.user), ("obj_group", obj.group),
                   ("obj_cmdline", obj.cmdline or obj.exename)]
    elif isinstance(obj, NetworkEntity):
        fields += [("srcip", obj.srcip), ("srcport", obj.srcport),
                   ("dstip", obj.dstip), ("dstport", obj.dstport),
                   ("proto", obj.protocol)]
    fields += [("bytes", event.data_amount), ("exit", event.failure_code)]
    return " ".join(f"{key}={_quote(value)}" for key, value in fields)


def parse_fields(line: str) -> dict[str, str]:
    """Parse one record line into a raw ``{key: value}`` dictionary."""
    line = line.strip()
    if not line:
        raise AuditError("empty audit record")
    fields: dict[str, str] = {}
    for key, value in _KV_RE.findall(line):
        fields[key] = _unquote(value)
    if not fields:
        raise AuditError(f"unparseable audit record: {line!r}")
    return fields


def parse_record(line: str) -> SystemEvent:
    """Parse one auditd-style record line into a :class:`SystemEvent`.

    Raises:
        AuditError: when the record is malformed, references an unmonitored
            syscall, or is missing required attributes.
    """
    fields = parse_fields(line)
    if fields.get("type", "SYSCALL") != "SYSCALL":
        raise AuditError(f"unsupported record type: {fields.get('type')!r}")
    try:
        syscall = fields["syscall"]
        spec = lookup_syscall(syscall)
    except KeyError as exc:
        raise AuditError(f"unmonitored or missing syscall in record: {line!r}"
                         ) from exc
    try:
        start_time = float(fields["ts"])
        end_time = float(fields.get("te", fields["ts"]))
        subject = ProcessEntity(
            exename=fields["exe"],
            pid=int(fields["pid"]),
            user=fields.get("user", "root"),
            group=fields.get("group", "root"),
            cmdline=fields.get("cmdline", ""),
        )
        obj = _parse_object(spec.object_type, fields)
        return SystemEvent(
            subject=subject,
            operation=spec.operation,
            obj=obj,
            start_time=start_time,
            end_time=end_time,
            data_amount=int(fields.get("bytes", 0)),
            failure_code=int(fields.get("exit", 0)),
            host=fields.get("host", "host-0"),
        )
    except AuditError:
        raise
    except (KeyError, ValueError) as exc:
        raise AuditError(f"malformed audit record: {line!r}") from exc


def _parse_object(object_type: EntityType, fields: dict[str, str]
                  ) -> SystemEntity:
    if object_type is EntityType.FILE:
        path = fields.get("path")
        if not path:
            raise AuditError("file event record is missing 'path'")
        return FileEntity(path=path, name=fields.get("name", path),
                          user=fields.get("obj_user", "root"),
                          group=fields.get("obj_group", "root"))
    if object_type is EntityType.PROCESS:
        exe = fields.get("obj_exe")
        if not exe:
            raise AuditError("process event record is missing 'obj_exe'")
        return ProcessEntity(exename=exe, pid=int(fields.get("obj_pid", 0)),
                             user=fields.get("obj_user", "root"),
                             group=fields.get("obj_group", "root"),
                             cmdline=fields.get("obj_cmdline", ""))
    dstip = fields.get("dstip")
    if not dstip:
        raise AuditError("network event record is missing 'dstip'")
    return NetworkEntity(srcip=fields.get("srcip", "0.0.0.0"),
                         srcport=int(fields.get("srcport", 0)),
                         dstip=dstip,
                         dstport=int(fields.get("dstport", 0)),
                         protocol=fields.get("proto", "tcp"))


def format_log(events: list[SystemEvent]) -> str:
    """Serialize a list of events into a newline-terminated audit log."""
    return "".join(format_record(event) + "\n" for event in events)


def split_cmdline(cmdline: str) -> list[str]:
    """Split a recorded command line into argv, tolerating odd quoting."""
    try:
        return shlex.split(cmdline)
    except ValueError:
        return cmdline.split()


__all__ = [
    "format_record",
    "format_log",
    "parse_fields",
    "parse_record",
    "split_cmdline",
]
