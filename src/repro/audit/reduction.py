"""Data reduction: merging excessive system events (Section III-B).

The OS finishes one logical read/write by distributing data across many
system calls, so audit logs contain long runs of near-identical events between
the same entity pair.  ThreatRaptor merges two events ``e1`` (earlier) and
``e2`` (later) when:

* same subject entity, same object entity, same operation type, and
* ``0 <= e2.start_time - e1.end_time <= threshold``

The merged event keeps ``e1.start_time``, takes ``e2.end_time``, and sums the
data amounts.  The paper chose a threshold of one second.
"""

from __future__ import annotations

from dataclasses import dataclass

from .entities import SystemEvent

#: Threshold (seconds) chosen by the paper after experimentation.
DEFAULT_MERGE_THRESHOLD = 1.0


@dataclass
class ReductionStats:
    """Statistics about one reduction pass."""

    input_events: int
    output_events: int
    merged_events: int

    @property
    def reduction_ratio(self) -> float:
        """Input/output ratio; 1.0 means nothing was merged."""
        if self.output_events == 0:
            return 1.0
        return self.input_events / self.output_events

    @property
    def events_removed(self) -> int:
        return self.input_events - self.output_events


def mergeable(earlier: SystemEvent, later: SystemEvent,
              threshold: float = DEFAULT_MERGE_THRESHOLD) -> bool:
    """Return whether ``later`` can be merged into ``earlier``.

    The check follows the criteria of Section III-B exactly; in particular a
    negative gap (overlapping or out-of-order events) is not mergeable.
    """
    if earlier.subject.unique_key != later.subject.unique_key:
        return False
    if earlier.obj.unique_key != later.obj.unique_key:
        return False
    if earlier.operation is not later.operation:
        return False
    gap = later.start_time - earlier.end_time
    return 0 <= gap <= threshold


def reduce_events(events: list[SystemEvent],
                  threshold: float = DEFAULT_MERGE_THRESHOLD
                  ) -> tuple[list[SystemEvent], ReductionStats]:
    """Merge excessive events and return (reduced events, statistics).

    Events are processed in start-time order.  Merging is greedy and
    transitive within a run: a run of ``n`` mergeable events collapses into a
    single event spanning the whole run.
    """
    if threshold < 0:
        raise ValueError("merge threshold must be non-negative")
    ordered = sorted(events, key=lambda event: (event.start_time,
                                                event.event_id))
    reduced: list[SystemEvent] = []
    # Track the currently-open merged event per (subject, object, operation)
    # key so that interleaved streams from different entity pairs still merge.
    open_events: dict[tuple, int] = {}
    merged_count = 0
    for event in ordered:
        key = (event.subject.unique_key, event.obj.unique_key,
               event.operation)
        index = open_events.get(key)
        if index is not None and mergeable(reduced[index], event, threshold):
            reduced[index] = reduced[index].merged_with(event)
            merged_count += 1
            continue
        open_events[key] = len(reduced)
        reduced.append(event)
    stats = ReductionStats(input_events=len(ordered),
                           output_events=len(reduced),
                           merged_events=merged_count)
    return reduced, stats


def sweep_thresholds(events: list[SystemEvent],
                     thresholds: list[float]) -> dict[float, ReductionStats]:
    """Run the reduction for several thresholds (ablation of Section III-B)."""
    return {threshold: reduce_events(events, threshold)[1]
            for threshold in thresholds}


__all__ = [
    "DEFAULT_MERGE_THRESHOLD",
    "ReductionStats",
    "mergeable",
    "reduce_events",
    "sweep_thresholds",
]
