"""Data reduction: merging excessive system events (Section III-B).

The OS finishes one logical read/write by distributing data across many
system calls, so audit logs contain long runs of near-identical events between
the same entity pair.  ThreatRaptor merges two events ``e1`` (earlier) and
``e2`` (later) when:

* same subject entity, same object entity, same operation type, and
* ``0 <= e2.start_time - e1.end_time <= threshold``

The merged event keeps ``e1.start_time``, takes ``e2.end_time``, and sums the
data amounts.  The paper chose a threshold of one second.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from .entities import SystemEvent

#: Threshold (seconds) chosen by the paper after experimentation.
DEFAULT_MERGE_THRESHOLD = 1.0


@dataclass
class ReductionStats:
    """Statistics about one reduction pass."""

    input_events: int
    output_events: int
    merged_events: int

    @property
    def reduction_ratio(self) -> float:
        """Input/output ratio; 1.0 means nothing was merged."""
        if self.output_events == 0:
            return 1.0
        return self.input_events / self.output_events

    @property
    def events_removed(self) -> int:
        return self.input_events - self.output_events


def mergeable(earlier: SystemEvent, later: SystemEvent,
              threshold: float = DEFAULT_MERGE_THRESHOLD) -> bool:
    """Return whether ``later`` can be merged into ``earlier``.

    The check follows the criteria of Section III-B exactly; in particular a
    negative gap (overlapping or out-of-order events) is not mergeable.
    """
    if earlier.subject.unique_key != later.subject.unique_key:
        return False
    if earlier.obj.unique_key != later.obj.unique_key:
        return False
    if earlier.operation is not later.operation:
        return False
    gap = later.start_time - earlier.end_time
    return 0 <= gap <= threshold


def reduce_events(events: list[SystemEvent],
                  threshold: float = DEFAULT_MERGE_THRESHOLD
                  ) -> tuple[list[SystemEvent], ReductionStats]:
    """Merge excessive events and return (reduced events, statistics).

    Events are processed in start-time order.  Merging is greedy and
    transitive within a run: a run of ``n`` mergeable events collapses into a
    single event spanning the whole run.
    """
    if threshold < 0:
        raise ValueError("merge threshold must be non-negative")
    ordered = sorted(events, key=lambda event: (event.start_time,
                                                event.event_id))
    reduced: list[SystemEvent] = []
    # Track the currently-open merged event per (subject, object, operation)
    # key so that interleaved streams from different entity pairs still merge.
    open_events: dict[tuple, int] = {}
    merged_count = 0
    for event in ordered:
        key = (event.subject.unique_key, event.obj.unique_key,
               event.operation)
        index = open_events.get(key)
        if index is not None and mergeable(reduced[index], event, threshold):
            reduced[index] = reduced[index].merged_with(event)
            merged_count += 1
            continue
        open_events[key] = len(reduced)
        reduced.append(event)
    stats = ReductionStats(input_events=len(ordered),
                           output_events=len(reduced),
                           merged_events=merged_count)
    return reduced, stats


class StreamingReducer:
    """Incremental data reduction over a time-ordered event stream.

    The batch :func:`reduce_events` keeps one ``open_events`` entry per
    ``(subject, object, operation)`` key for the whole pass, so its working
    set grows with the number of distinct keys ever seen.  The streaming
    reducer instead *evicts* a merge-run as soon as it is closed — either
    because a same-key event arrived that could not be merged, or because
    time advanced past ``end_time + threshold`` so no future event can merge
    into it — which bounds the working set by the number of runs open inside
    one merge window.

    Events must be pushed in ``(start_time, event_id)`` order (the order the
    batch reducer sorts into); :meth:`push` raises :class:`ValueError` on
    out-of-order input.  Closed runs are emitted in first-appearance order,
    so the concatenated output of all ``push`` calls plus :meth:`flush` is
    *identical* to the list :func:`reduce_events` returns for the same
    (sorted) input — a property the equivalence tests assert.
    """

    def __init__(self, threshold: float = DEFAULT_MERGE_THRESHOLD) -> None:
        if threshold < 0:
            raise ValueError("merge threshold must be non-negative")
        self.threshold = threshold
        # Runs in first-appearance order; each cell is
        # [first_event, end_time, data_amount, merge_count, closed] — the
        # run state is accumulated and one merged event is materialized at
        # eviction, instead of building an intermediate merged event per
        # absorbed input.
        self._runs: deque[tuple[tuple, list]] = deque()
        # key -> the currently-open cell for that key.
        self._open: dict[tuple, list] = {}
        self._last_start: float | None = None
        self.input_events = 0
        self.output_events = 0
        self.merged_events = 0

    @property
    def open_runs(self) -> int:
        """Number of runs currently buffered (the streaming working set)."""
        return len(self._runs)

    @property
    def stats(self) -> ReductionStats:
        """Statistics for the events processed so far."""
        return ReductionStats(input_events=self.input_events,
                              output_events=self.output_events +
                              len(self._runs),
                              merged_events=self.merged_events)

    @staticmethod
    def _materialize(cell: list) -> SystemEvent:
        """Build the output event for a run cell."""
        first, end_time, data_amount, merge_count, _closed = cell
        if not merge_count:
            return first
        return first.with_merged_span(end_time, data_amount)

    def push(self, event: SystemEvent) -> Iterator[SystemEvent]:
        """Consume one event; yield any merge-runs it closes.

        This is a generator: the consume/merge side effects happen as the
        returned iterator is drained, so every ``push`` call's result must
        be iterated (as :func:`reduce_events_stream` does) — a bare
        ``reducer.push(event)`` statement does nothing.
        """
        start = event.start_time
        if self._last_start is not None and start < self._last_start:
            raise ValueError(
                "StreamingReducer requires events in start-time order "
                f"(got {start} after {self._last_start})")
        self._last_start = start
        self.input_events += 1
        threshold = self.threshold
        key = (event.subject.unique_key, event.obj.unique_key,
               event.operation)
        cell = self._open.get(key)
        # Same key and a gap in [0, threshold] merges (the mergeable()
        # criteria; subject/object/operation equality is given by the key).
        if cell is not None and not cell[4] and \
                0 <= start - cell[1] <= threshold:
            cell[1] = event.end_time
            cell[2] += event.data_amount
            cell[3] += 1
            self.merged_events += 1
        else:
            if cell is not None:
                cell[4] = True  # replaced: the old run can never grow again
            new_cell = [event, event.end_time, event.data_amount, 0, False]
            self._open[key] = new_cell
            self._runs.append((key, new_cell))
        # Emit every leading run that is closed, preserving first-appearance
        # order (identical to the batch reducer's output order).
        runs = self._runs
        while runs:
            head_key, head_cell = runs[0]
            if not head_cell[4] and head_cell[1] + threshold >= start:
                break
            runs.popleft()
            if self._open.get(head_key) is head_cell:
                del self._open[head_key]
            self.output_events += 1
            yield self._materialize(head_cell)

    def flush(self) -> Iterator[SystemEvent]:
        """Yield the still-open runs (end of stream) and reset the buffers."""
        runs = self._runs
        self._runs = deque()
        self._open.clear()
        for _key, cell in runs:
            self.output_events += 1
            yield self._materialize(cell)


def reduce_events_stream(events: Iterable[SystemEvent],
                         threshold: float = DEFAULT_MERGE_THRESHOLD,
                         reducer: StreamingReducer | None = None
                         ) -> Iterator[SystemEvent]:
    """Generator variant of :func:`reduce_events` for time-ordered streams.

    Unlike the batch function this neither sorts nor materializes the input:
    events are consumed one at a time and merged runs are emitted as soon as
    they close.  Pass a :class:`StreamingReducer` to read
    :attr:`StreamingReducer.stats` after the generator is exhausted; the
    reducer's own threshold governs then, and passing a conflicting
    ``threshold`` alongside it is rejected.
    """
    if reducer is None:
        reducer = StreamingReducer(threshold)
    elif threshold != DEFAULT_MERGE_THRESHOLD and \
            threshold != reducer.threshold:
        raise ValueError(
            f"threshold {threshold} conflicts with the supplied reducer's "
            f"threshold {reducer.threshold}")
    for event in events:
        yield from reducer.push(event)
    yield from reducer.flush()


def sweep_thresholds(events: list[SystemEvent],
                     thresholds: list[float]) -> dict[float, ReductionStats]:
    """Run the reduction for several thresholds (ablation of Section III-B)."""
    return {threshold: reduce_events(events, threshold)[1]
            for threshold in thresholds}


__all__ = [
    "DEFAULT_MERGE_THRESHOLD",
    "ReductionStats",
    "StreamingReducer",
    "mergeable",
    "reduce_events",
    "reduce_events_stream",
    "sweep_thresholds",
]
