"""Audit log parsing: raw records -> ordered system event stream.

The parser consumes auditd-style record lines (see :mod:`repro.audit.logfmt`)
and produces the clean event stream the rest of the system operates on.  It is
deliberately tolerant of noise: blank lines and comment lines are ignored and
malformed records are counted but do not abort parsing, because real kernel
audit logs routinely interleave records the downstream analysis does not use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import AuditError
from .entities import SystemEvent, iter_unique_entities
from .logfmt import parse_record


@dataclass
class ParseReport:
    """Summary statistics produced while parsing an audit log."""

    total_lines: int = 0
    parsed_events: int = 0
    skipped_lines: int = 0
    malformed_lines: int = 0
    errors: list[str] = field(default_factory=list)

    def record_error(self, line_number: int, message: str) -> None:
        self.malformed_lines += 1
        if len(self.errors) < 50:
            self.errors.append(f"line {line_number}: {message}")


class AuditLogParser:
    """Parses auditd-style logs into :class:`SystemEvent` sequences.

    Args:
        strict: when True, any malformed record raises :class:`AuditError`
            instead of being skipped.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.last_report = ParseReport()

    def iter_events(self, lines: Iterable[str]) -> Iterator[SystemEvent]:
        """Yield events parsed from an iterable of record lines."""
        report = ParseReport()
        self.last_report = report
        for line_number, line in enumerate(lines, start=1):
            report.total_lines += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                report.skipped_lines += 1
                continue
            try:
                event = parse_record(stripped)
            except AuditError as exc:
                if self.strict:
                    raise
                report.record_error(line_number, str(exc))
                continue
            report.parsed_events += 1
            yield event

    def parse_lines(self, lines: Iterable[str]) -> list[SystemEvent]:
        """Parse an iterable of record lines, sorted by start time."""
        events = list(self.iter_events(lines))
        events.sort(key=lambda event: (event.start_time, event.event_id))
        return events

    def parse_text(self, text: str) -> list[SystemEvent]:
        """Parse a log provided as a single string."""
        return self.parse_lines(text.splitlines())

    def parse_file(self, path: str | Path) -> list[SystemEvent]:
        """Parse a log file from disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.parse_lines(handle)


def parse_audit_log(text: str, strict: bool = False) -> list[SystemEvent]:
    """Convenience wrapper: parse log text into a sorted event list."""
    return AuditLogParser(strict=strict).parse_text(text)


def summarize_events(events: list[SystemEvent]) -> dict:
    """Return summary statistics of an event stream.

    The summary mirrors the scale numbers reported in Section IV (number of
    system entities and system events) plus per-category breakdowns.
    """
    entities = list(iter_unique_entities(events))
    by_category: dict[str, int] = {}
    for event in events:
        by_category[event.category.value] = (
            by_category.get(event.category.value, 0) + 1)
    return {
        "num_events": len(events),
        "num_entities": len(entities),
        "events_by_category": by_category,
        "time_span": (
            (min(e.start_time for e in events),
             max(e.end_time for e in events)) if events else (0.0, 0.0)),
    }


__all__ = [
    "ParseReport",
    "AuditLogParser",
    "parse_audit_log",
    "summarize_events",
]
