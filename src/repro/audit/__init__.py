"""System auditing substrate.

Provides the system entity/event model (Tables I-III of the paper), the
syscall-to-event mapping, an auditd-style log format with parser, a synthetic
collector that replays scripted activities, a benign background workload
generator, and the data reduction pass from Section III-B.
"""

from .collector import AuditCollector, CollectorConfig
from .entities import (DEFAULT_ATTRIBUTES, EntityType, EventCategory,
                       FileEntity, NetworkEntity, Operation, ProcessEntity,
                       SystemEntity, SystemEvent, default_attribute_for,
                       iter_unique_entities, make_entity)
from .logfmt import format_log, format_record, parse_record
from .parser import AuditLogParser, ParseReport, parse_audit_log, \
    summarize_events
from .reduction import (DEFAULT_MERGE_THRESHOLD, ReductionStats,
                        StreamingReducer, mergeable, reduce_events,
                        reduce_events_stream, sweep_thresholds)
from .syscalls import SYSCALL_TABLE, is_monitored, lookup_syscall, syscall_for
from .workload import (BenignWorkloadGenerator, WorkloadConfig,
                       generate_benign_noise)

__all__ = [
    "AuditCollector",
    "CollectorConfig",
    "DEFAULT_ATTRIBUTES",
    "EntityType",
    "EventCategory",
    "FileEntity",
    "NetworkEntity",
    "Operation",
    "ProcessEntity",
    "SystemEntity",
    "SystemEvent",
    "default_attribute_for",
    "iter_unique_entities",
    "make_entity",
    "format_log",
    "format_record",
    "parse_record",
    "AuditLogParser",
    "ParseReport",
    "parse_audit_log",
    "summarize_events",
    "DEFAULT_MERGE_THRESHOLD",
    "ReductionStats",
    "StreamingReducer",
    "mergeable",
    "reduce_events",
    "reduce_events_stream",
    "sweep_thresholds",
    "SYSCALL_TABLE",
    "is_monitored",
    "lookup_syscall",
    "syscall_for",
    "BenignWorkloadGenerator",
    "WorkloadConfig",
    "generate_benign_noise",
]
